//! # geotopo — the geography of Internet resources
//!
//! A faithful reproduction of Lakhina, Byers, Crovella and Matta,
//! *On the Geographic Location of Internet Resources* (IMC 2002), built
//! entirely in Rust over simulated measurement substrates.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`geo`] — geodesy: coordinates, great-circle distance, the Albers
//!   equal-area projection, convex hulls, patch grids, regions.
//! - [`stats`] — regression, CDFs/CCDFs, correlation, heavy-tail samplers.
//! - [`population`] — synthetic gridded world population (CIESIN substitute).
//! - [`topology`] — the router-level topology model and generators
//!   (ground-truth geographic Internet, Waxman, Erdős–Rényi,
//!   Barabási–Albert, transit-stub, and the geography-aware `geogen`).
//! - [`bgp`] — prefixes, radix-trie longest-prefix matching, simulated
//!   RouteViews tables.
//! - [`geomap`] — simulated IxMapper and EdgeScape geolocation services.
//! - [`measure`] — simulated Skitter and Mercator topology collectors.
//! - [`query`] — the read-side query layer: frozen snapshots answering
//!   per-address location/origin lookups and bulk hitlists.
//! - [`core`] — the paper's analysis pipeline and every table/figure.
//!
//! ## Quickstart
//!
//! ```
//! use geotopo::core::pipeline::{Pipeline, PipelineConfig};
//!
//! // A tiny, fast pipeline run: build a synthetic Internet, measure it
//! // with Skitter, geolocate with IxMapper, and map ASes via BGP.
//! let cfg = PipelineConfig::tiny(42);
//! let out = Pipeline::new(cfg).run().expect("pipeline");
//! let ds = &out.datasets[0];
//! assert!(ds.dataset.num_nodes() > 0);
//! assert!(ds.dataset.num_links() > 0);
//! ```

pub use geotopo_bgp as bgp;
pub use geotopo_core as core;
pub use geotopo_geo as geo;
pub use geotopo_geomap as geomap;
pub use geotopo_measure as measure;
pub use geotopo_population as population;
pub use geotopo_query as query;
pub use geotopo_stats as stats;
pub use geotopo_topology as topology;
