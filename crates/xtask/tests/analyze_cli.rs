//! End-to-end test of `cargo xtask analyze`: the seeded fixture under
//! `tests/fixtures/analyze` must trip all three GT-AN rules with exact
//! `file:line: [RULE]` diagnostics, output must be byte-identical
//! across runs, `--rule` must filter, `--explain` must document, and
//! the real workspace must come back clean.

use std::path::PathBuf;
use std::process::Command;

const ALL_RULES: &[&str] = &["GT-AN-001", "GT-AN-002", "GT-AN-003"];

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/analyze")
}

fn run_analyze(extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("analyze")
        .arg("--root")
        .arg(fixture_root())
        .args(extra)
        .output()
        .expect("spawn xtask");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

#[test]
fn seeded_fixture_trips_every_rule_at_exact_locations() {
    let (code, stdout) = run_analyze(&[]);
    assert_eq!(code, 1, "violations must exit 1; output:\n{stdout}");
    // One anchor per rule, with the exact file:line the seed plants.
    assert!(
        stdout.contains(
            "crates/measure/src/lib.rs:17: [GT-AN-001] `.unwrap()` reachable \
             from supervised root via DemoStage::run -> risky_helper"
        ),
        "panic-reach diagnostic missing or moved:\n{stdout}"
    );
    assert!(
        stdout.contains(
            "crates/measure/src/lib.rs:26: [GT-AN-002] `.collect()` allocates \
             on hot path via lookup -> collect_hits"
        ),
        "hot-alloc diagnostic missing or moved:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/geo/src/lib.rs:4: [GT-AN-003]"),
        "layering diagnostic missing or moved:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/geo/src/lib.rs:10: [GT-AN-003] pub item `orphan_api`"),
        "dead-pub diagnostic missing or moved:\n{stdout}"
    );
    assert!(
        stdout.ends_with("3 crates, 3 files, 3 rules — 6 finding(s)\n"),
        "summary line wrong:\n{stdout}"
    );
}

#[test]
fn findings_are_sorted_by_file_then_line() {
    let (_, stdout) = run_analyze(&[]);
    let locs: Vec<(String, usize)> = stdout
        .lines()
        .filter(|l| l.contains(": [GT-AN-"))
        .map(|l| {
            let mut parts = l.splitn(3, ':');
            let file = parts.next().expect("file").to_string();
            let line = parts.next().expect("line").parse().expect("line number");
            (file, line)
        })
        .collect();
    assert_eq!(locs.len(), 6, "expected 6 findings:\n{stdout}");
    let mut sorted = locs.clone();
    sorted.sort();
    assert_eq!(locs, sorted, "diagnostics not sorted:\n{stdout}");
}

#[test]
fn output_is_byte_identical_across_runs() {
    let (code1, first) = run_analyze(&[]);
    let (code2, second) = run_analyze(&[]);
    assert_eq!(code1, code2);
    assert_eq!(first, second, "analyze output differs between runs");
}

#[test]
fn rule_filter_isolates_one_rule() {
    let (code, stdout) = run_analyze(&["--rule", "GT-AN-002"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("[GT-AN-002]"));
    for rule in ALL_RULES.iter().filter(|r| **r != "GT-AN-002") {
        assert!(
            !stdout.contains(&format!("[{rule}]")),
            "{rule} leaked past the filter:\n{stdout}"
        );
    }
}

#[test]
fn unknown_rule_is_a_usage_error() {
    let (code, _) = run_analyze(&["--rule", "GT-AN-999"]);
    assert_eq!(code, 2);
}

#[test]
fn explain_documents_each_rule_and_exits_zero() {
    for rule in ALL_RULES {
        let (code, stdout) = run_analyze(&["--explain", rule]);
        assert_eq!(code, 0, "--explain {rule} failed:\n{stdout}");
        assert!(
            stdout.contains(rule),
            "--explain {rule} does not name the rule:\n{stdout}"
        );
    }
    let (code, _) = run_analyze(&["--explain", "GT-AN-999"]);
    assert_eq!(code, 2, "unknown --explain id must be a usage error");
}

#[test]
fn list_prints_catalog_and_exits_zero() {
    let (code, stdout) = run_analyze(&["--list"]);
    assert_eq!(code, 0);
    for rule in ALL_RULES {
        assert!(
            stdout.contains(rule),
            "{rule} missing from --list:\n{stdout}"
        );
    }
}

#[test]
fn real_workspace_is_clean() {
    // The repo itself must pass its own analyzer (CI gates on this).
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("analyze")
        .arg("--root")
        .arg(repo_root)
        .output()
        .expect("spawn xtask");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "repo analyzer pass not clean:\n{stdout}"
    );
}
