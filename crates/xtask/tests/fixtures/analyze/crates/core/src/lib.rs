//! Fixture dependency target: referenced from the geo crate so the
//! upward import has a real workspace destination.

pub struct Engine;
