//! Seeded GT-AN-001 and GT-AN-002 violations: a supervised stage whose
//! `run` panics transitively, and a hot-path root that allocates
//! through a helper.

struct DemoStage;

struct StageCtx;

impl Stage for DemoStage {
    fn run(&self, _ctx: &StageCtx) -> usize {
        risky_helper()
    }
}

fn risky_helper() -> usize {
    let v: Option<usize> = None;
    v.unwrap()
}

// analyze: hot-path-root
fn lookup(xs: &[u32]) -> u32 {
    collect_hits(xs)
}

fn collect_hits(xs: &[u32]) -> u32 {
    let all: Vec<u32> = xs.iter().copied().collect();
    all.len() as u32
}

pub fn never_used() {}
