//! Seeded GT-AN-003 violations: an upward source import and pub items
//! nobody references.

use geotopo_core::Engine;

pub fn touch() -> Engine {
    Engine
}

pub fn orphan_api() {}
