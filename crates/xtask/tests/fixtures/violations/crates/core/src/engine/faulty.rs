// Seeded GT-LINT-009 violation: an unjustified `.unwrap()` on a
// supervised execution path (the engine must degrade, never abort).

pub fn resume_checkpoint(artifact: Option<u32>) -> u32 {
    artifact.unwrap()
}
