// Seeded-violation fixture: one deliberate violation per lint rule, each
// on a known line, so the integration test can assert that `xtask check`
// exits non-zero and reports every rule ID with a file:line diagnostic.
// This file is never compiled (it lives under tests/fixtures/).

pub struct NoDebugHere {
    pub x: u32,
}

pub fn entropy() -> u64 {
    let mut r = rand::thread_rng();
    r.random()
}

pub fn clocked() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn aborts(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn exact(x: f64) -> bool {
    x == 0.5
}

pub fn unfinished() {
    todo!("never")
}

pub fn sidecar_worker() {
    std::thread::spawn(|| {});
}

pub fn heapy() -> std::collections::BinaryHeap<u32> {
    std::collections::BinaryHeap::new()
}

pub fn tears(p: &std::path::Path) {
    std::fs::write(p, b"raw, unfenced, invisible to chaos injection").unwrap();
}
