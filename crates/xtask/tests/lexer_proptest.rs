//! Property tests pinning the lexer to `source::mask`: the two share a
//! string/comment state machine, and every analyzer pass assumes they
//! agree about which bytes are code. Fragment soups splice idents,
//! literals (terminated and not), comments, and punctuation in random
//! orders; the properties below must hold for every splice.
//!
//! This suite already earned its keep: it caught both `mask` and the
//! lexer dropping the newline in a `"...\`-newline string continuation,
//! which desynced every later line number.

use proptest::prelude::*;
use xtask::lexer::{lex, TokenKind};
use xtask::source::mask;

/// Splice alphabet: each entry is a legal-or-degenerate piece of Rust
/// surface syntax. Unterminated literals and bare sigils are included
/// on purpose — the lexer must stay total on anything a workspace file
/// could contain mid-edit.
const FRAGMENTS: &[&str] = &[
    "fn",
    "pub",
    "ident_0",
    "RoutingOracle",
    "r#type",
    "'static",
    "'a",
    "42",
    "0x1F",
    "1_000u64",
    "\"str lit\"",
    "\"multi\nline\"",
    "\"unterminated",
    "\"esc \\\" quote\"",
    "\"cont \\\n inued\"",
    "r\"raw\"",
    "r#\"raw # lit\"#",
    "b\"bytes\"",
    "'x'",
    "'\\n'",
    "b'\\0'",
    "// line comment\n",
    "/// doc comment\n",
    "/* block */",
    "/* nested /* block */ */",
    "/* unterminated",
    "::",
    "->",
    "=>",
    "{",
    "}",
    "(",
    ")",
    ";",
    ",",
    ".",
    "#[derive(Debug)]",
    "\\",
    "\"",
    "\u{1F300}",
];

/// Separators spliced between fragments; "" glues fragments so token
/// boundaries need not align with fragment boundaries.
const SEPS: &[&str] = &[" ", "\n", ""];

/// Builds a source soup from (fragment, separator) index pairs.
fn splice(pairs: &[(usize, usize)]) -> String {
    let mut src = String::new();
    for &(f, s) in pairs {
        src.push_str(FRAGMENTS[f % FRAGMENTS.len()]);
        src.push_str(SEPS[s % SEPS.len()]);
    }
    src
}

proptest! {
    #[test]
    fn spans_agree_with_mask(
        pairs in prop::collection::vec((0usize..FRAGMENTS.len(), 0usize..SEPS.len()), 0..80)
    ) {
        let src = splice(&pairs);
        let toks = lex(&src);
        let masked = mask(&src);
        let raw = src.as_bytes();
        let mb = masked.as_bytes();

        // Masking is a bytewise blanking: same length, every byte either
        // kept or turned into a space, newlines preserved exactly.
        prop_assert_eq!(mb.len(), raw.len());
        for i in 0..raw.len() {
            prop_assert!(
                mb[i] == raw[i] || mb[i] == b' ',
                "byte {} invented: raw {:?} masked {:?}", i, raw[i] as char, mb[i] as char
            );
            prop_assert!(
                (raw[i] == b'\n') == (mb[i] == b'\n'),
                "newline structure changed at byte {} in {:?}", i, src
            );
        }

        // Token spans: non-empty, ordered, disjoint, in bounds, on char
        // boundaries, with line numbers matching a recount from scratch.
        let mut prev_end = 0;
        for t in &toks {
            prop_assert!(t.start < t.end && t.end <= raw.len(), "bad span in {:?}", src);
            prop_assert!(t.start >= prev_end, "overlapping tokens in {:?}", src);
            prev_end = t.end;
            prop_assert!(src.get(t.start..t.end).is_some(), "span splits a char in {:?}", src);
            let line = 1 + raw[..t.start].iter().filter(|&&b| b == b'\n').count();
            prop_assert_eq!(t.line, line, "line drift at {}..{} in {:?}", t.start, t.end, src);
        }

        // Agreement, kept direction: a non-literal token is code, so mask
        // must have kept each of its bytes; literals keep their opener.
        for t in &toks {
            match t.kind {
                TokenKind::Str | TokenKind::Char => {
                    prop_assert_eq!(mb[t.start], raw[t.start]);
                }
                _ => prop_assert_eq!(
                    &mb[t.start..t.end], &raw[t.start..t.end],
                    "mask blanked code token {}..{} in {:?}", t.start, t.end, src
                ),
            }
        }

        // Agreement, blanked direction: every byte mask says is code
        // (non-whitespace survivor) lies inside some token span.
        let mut covered = vec![false; raw.len()];
        for t in &toks {
            for c in &mut covered[t.start..t.end] {
                *c = true;
            }
        }
        for (i, &m) in mb.iter().enumerate() {
            if !m.is_ascii_whitespace() {
                prop_assert!(
                    covered[i],
                    "mask kept code byte {} ({:?}) but no token covers it in {:?}",
                    i, m as char, src
                );
            }
        }
    }

    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = lex(&src);
        let mut prev_end = 0;
        for t in &toks {
            prop_assert!(t.start < t.end && t.end <= src.len());
            prop_assert!(t.start >= prev_end);
            prev_end = t.end;
            prop_assert!(src.get(t.start..t.end).is_some(), "span splits a char in {:?}", src);
        }
        prop_assert_eq!(mask(&src).len(), src.len());
    }

    #[test]
    fn block_comment_wrapping_erases_all_tokens(
        pairs in prop::collection::vec((0usize..FRAGMENTS.len(), 0usize..SEPS.len()), 0..40)
    ) {
        let inner = splice(&pairs);
        // Comment nesting ignores string state, so only soups without
        // their own comment delimiters stay fully wrapped.
        prop_assume!(!inner.contains("/*") && !inner.contains("*/"));
        let src = format!("/* {inner} */ after");
        let toks = lex(&src);
        prop_assert_eq!(toks.len(), 1, "leak out of block comment in {:?}", src);
        prop_assert_eq!(toks[0].text(&src), "after");
    }
}
