//! Model-level invariants of the analyzer: every `impl Stage` in the
//! real workspace — enumerated from the *item tree*, not the rule's own
//! root list — must be a registered GT-AN-001 root, and the analyzer's
//! findings must not depend on file-discovery order.

use std::path::PathBuf;
use xtask::analyze::{all_analyzers, panic_reach::supervised_roots};
use xtask::graph::Model;
use xtask::items::Item;
use xtask::workspace::WorkspaceSrc;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn every_stage_impl_is_a_supervised_root() {
    let ws = WorkspaceSrc::load(&repo_root()).expect("load workspace");
    let model = Model::build(&ws);
    let roots = supervised_roots(&model);

    // Independent enumeration straight from the item trees: each bodied,
    // non-test `fn run` inside an `impl Stage for ...`.
    let mut stage_runs: Vec<(String, usize)> = Vec::new();
    for c in &ws.crates {
        for sf in &c.files {
            sf.tree.walk(&mut |item: &Item| {
                if item.name == "run"
                    && item.trait_name.as_deref() == Some("Stage")
                    && item.body.is_some()
                    && !sf.is_test_line(item.line)
                {
                    stage_runs.push((sf.path.display().to_string(), item.line));
                }
            });
        }
    }
    assert!(
        stage_runs.len() >= 3,
        "workspace should define several Stage impls, found {}",
        stage_runs.len()
    );

    for (path, line) in &stage_runs {
        let covered = roots.iter().any(|&r| {
            let f = &model.fns[r as usize];
            f.line == *line && {
                let (ci, fi) = model.files[f.file];
                ws.crates[ci].files[fi].path.display().to_string() == *path
            }
        });
        assert!(
            covered,
            "Stage::run at {path}:{line} is not a registered GT-AN-001 root"
        );
    }
}

#[test]
fn findings_are_independent_of_file_discovery_order() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/analyze");
    let forward = WorkspaceSrc::load(&fixture).expect("load fixture");
    let mut reversed = WorkspaceSrc::load(&fixture).expect("load fixture");
    reversed.crates.reverse();
    for c in &mut reversed.crates {
        c.files.reverse();
        c.ref_files.reverse();
    }

    let analyzers = all_analyzers();
    let render = |ws: &WorkspaceSrc| -> Vec<String> {
        xtask::analyze::run(&analyzers, ws)
            .iter()
            .map(|f| f.to_string())
            .collect()
    };
    let first = render(&forward);
    let second = render(&reversed);
    assert!(!first.is_empty(), "fixture should produce findings");
    assert_eq!(first, second, "findings depend on discovery order");
}
