//! End-to-end test of the `cargo xtask check` binary: the seeded
//! violation fixture under `tests/fixtures/violations` must produce a
//! non-zero exit, a `file:line: [RULE]` diagnostic for every rule in the
//! catalog, and `--rule` filtering must isolate a single rule.

use std::path::PathBuf;
use std::process::Command;

const ALL_RULES: &[&str] = &[
    "GT-LINT-001",
    "GT-LINT-002",
    "GT-LINT-003",
    "GT-LINT-004",
    "GT-LINT-005",
    "GT-LINT-006",
    "GT-LINT-007",
    "GT-LINT-008",
    "GT-LINT-009",
    "GT-LINT-010",
    "GT-LINT-011",
    "GT-LINT-012",
];

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations")
}

fn run_check(extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("check")
        .arg("--root")
        .arg(fixture_root())
        .args(extra)
        .output()
        .expect("spawn xtask");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

#[test]
fn seeded_fixture_trips_every_rule_with_file_line_diagnostics() {
    let (code, stdout) = run_check(&[]);
    assert_eq!(code, 1, "violations must exit 1; output:\n{stdout}");
    for rule in ALL_RULES {
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "missing {rule} in output:\n{stdout}"
        );
    }
    // Diagnostics carry a real file:line location.
    assert!(
        stdout.contains("crates/bad-geo/src/lib.rs:11: [GT-LINT-001]"),
        "thread_rng site not located:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/bad-geo/Cargo.toml:10: [GT-LINT-006]"),
        "layering edge not located at its manifest line:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/core/src/engine/faulty.rs:5: [GT-LINT-009]"),
        "supervised-path unwrap not located:\n{stdout}"
    );
}

#[test]
fn rule_filter_isolates_one_rule() {
    let (code, stdout) = run_check(&["--rule", "GT-LINT-004"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("[GT-LINT-004]"));
    for rule in ALL_RULES.iter().filter(|r| **r != "GT-LINT-004") {
        assert!(
            !stdout.contains(&format!("[{rule}]")),
            "{rule} leaked past the filter:\n{stdout}"
        );
    }
}

#[test]
fn unknown_rule_is_a_usage_error() {
    let (code, _) = run_check(&["--rule", "GT-LINT-999"]);
    assert_eq!(code, 2);
}

#[test]
fn list_prints_catalog_and_exits_zero() {
    let (code, stdout) = run_check(&["--list"]);
    assert_eq!(code, 0);
    for rule in ALL_RULES {
        assert!(
            stdout.contains(rule),
            "{rule} missing from --list:\n{stdout}"
        );
    }
}

#[test]
fn real_workspace_is_clean() {
    // The repo itself must pass its own lint pass (CI gates on this).
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("check")
        .arg("--root")
        .arg(repo_root)
        .output()
        .expect("spawn xtask");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "repo lint pass not clean:\n{stdout}"
    );
}
