//! A dependency-free Rust lexer producing spanned tokens.
//!
//! This is the token layer under the analyzer's item trees and graphs
//! ([`crate::items`], [`crate::graph`]). It shares its string/comment
//! state machine with [`crate::source::mask`] — the proptest suite in
//! `tests/lexer_proptest.rs` asserts the two agree byte-for-byte about
//! what is code — but where `mask` blanks non-code, the lexer emits
//! tokens with byte spans and line numbers so later passes can reason
//! about structure, not lines.
//!
//! The token alphabet is deliberately small: identifiers (keywords are
//! identifiers — the item parser decides), lifetimes, numbers, string
//! and char literals (one token each, raw strings included), and
//! single-byte punctuation. Multi-byte operators (`::`, `->`, `=>`,
//! `>>`) arrive as adjacent single-punct tokens; consumers check span
//! adjacency when it matters.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `RoutingOracle`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`) — the quote plus the name.
    Lifetime,
    /// Numeric literal, including suffixes (`42`, `0x1F`, `1u64`).
    Number,
    /// String literal: `"..."`, `r#"..."#`, `b"..."` — one token.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// A single punctuation byte.
    Punct(u8),
}

/// One token with its byte span and 1-based line number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Whether this token is the given punctuation byte.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokenKind::Punct(b)
    }
}

/// Whether two tokens are byte-adjacent (no whitespace or comment in
/// between) — how `::`, `->` and friends are recognised.
pub fn adjacent(a: &Token, b: &Token) -> bool {
    a.end == b.start
}

/// Lexes Rust source into tokens, skipping whitespace and comments.
///
/// The lexer never fails: unexpected bytes become punct tokens and an
/// unterminated literal runs to end of input. That makes it safe to run
/// over anything the workspace walker hands it.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(src.len() / 4);
    let mut i = 0;
    let mut line = 1usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (len, nl) = plain_string_len(&bytes[i..]);
                out.push(Token {
                    kind: TokenKind::Str,
                    start: i,
                    end: i + len,
                    line,
                });
                line += nl;
                i += len;
            }
            b'r' | b'b' => {
                if let Some(open) = raw_string_open(&bytes[i..]) {
                    let hashes = open - if b == b'b' { 3 } else { 2 };
                    let (len, nl) = raw_string_len(&bytes[i..], open, hashes);
                    out.push(Token {
                        kind: TokenKind::Str,
                        start: i,
                        end: i + len,
                        line,
                    });
                    line += nl;
                    i += len;
                } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                    let (len, nl) = plain_string_len(&bytes[i + 1..]);
                    out.push(Token {
                        kind: TokenKind::Str,
                        start: i,
                        end: i + 1 + len,
                        line,
                    });
                    line += nl;
                    i += 1 + len;
                } else if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                    match char_literal_len(&bytes[i + 1..]) {
                        Some(len) => {
                            out.push(Token {
                                kind: TokenKind::Char,
                                start: i,
                                end: i + 1 + len,
                                line,
                            });
                            i += 1 + len;
                        }
                        None => {
                            // `b'` not closing as a literal: treat `b` as
                            // an ident start and re-scan the quote.
                            let end = ident_end(bytes, i);
                            out.push(Token {
                                kind: TokenKind::Ident,
                                start: i,
                                end,
                                line,
                            });
                            i = end;
                        }
                    }
                } else {
                    let end = ident_end(bytes, i);
                    out.push(Token {
                        kind: TokenKind::Ident,
                        start: i,
                        end,
                        line,
                    });
                    i = end;
                }
            }
            b'\'' => match char_literal_len(&bytes[i..]) {
                Some(len) => {
                    out.push(Token {
                        kind: TokenKind::Char,
                        start: i,
                        end: i + len,
                        line,
                    });
                    i += len;
                }
                None => {
                    // Lifetime: quote plus the identifier after it.
                    let end = ident_end(bytes, i + 1);
                    out.push(Token {
                        kind: TokenKind::Lifetime,
                        start: i,
                        end: end.max(i + 1),
                        line,
                    });
                    i = end.max(i + 1);
                }
            },
            b'0'..=b'9' => {
                let mut end = i + 1;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                out.push(Token {
                    kind: TokenKind::Number,
                    start: i,
                    end,
                    line,
                });
                i = end;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => {
                let end = ident_end(bytes, i);
                out.push(Token {
                    kind: TokenKind::Ident,
                    start: i,
                    end,
                    line,
                });
                i = end;
            }
            _ => {
                out.push(Token {
                    kind: TokenKind::Punct(b),
                    start: i,
                    end: i + 1,
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// End offset of an identifier starting at `i` (at least `i` itself if
/// the byte there cannot start one).
fn ident_end(bytes: &[u8], i: usize) -> usize {
    let mut end = i;
    // Raw identifiers: `r#type`.
    if bytes.get(end) == Some(&b'r') && bytes.get(end + 1) == Some(&b'#') {
        end += 2;
    }
    while end < bytes.len()
        && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_' || bytes[end] >= 0x80)
    {
        end += 1;
    }
    end.max(i)
}

/// Length of a plain `"..."` literal starting at the opening quote, plus
/// the number of newlines inside. Unterminated literals run to EOF.
fn plain_string_len(bytes: &[u8]) -> (usize, usize) {
    let mut i = 1;
    let mut nl = 0;
    while i < bytes.len() {
        match bytes[i] {
            // An escaped newline (line continuation) still ends a source
            // line — count it or every later token's line drifts.
            b'\\' => {
                if bytes.get(i + 1) == Some(&b'\n') {
                    nl += 1;
                }
                i += 2;
            }
            b'\n' => {
                nl += 1;
                i += 1;
            }
            b'"' => return (i + 1, nl),
            _ => i += 1,
        }
    }
    (bytes.len(), nl)
}

/// Length of a raw-string opener (`r"`, `r#"`, `br##"`, ...) at the
/// start of `bytes`, or None. Mirrors `source::raw_string_open`.
fn raw_string_open(bytes: &[u8]) -> Option<usize> {
    let mut i = 0;
    if bytes.first() == Some(&b'b') {
        i += 1;
    }
    if bytes.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    if bytes.get(i) == Some(&b'"') {
        Some(i + 1)
    } else {
        None
    }
}

/// Total length of a raw string whose opener has length `open` and
/// `hashes` hash marks, plus newline count. Unterminated runs to EOF.
fn raw_string_len(bytes: &[u8], open: usize, hashes: usize) -> (usize, usize) {
    let mut i = open;
    let mut nl = 0;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            nl += 1;
            i += 1;
        } else if bytes[i] == b'"'
            && bytes.len() > i + hashes
            && bytes[i + 1..=i + hashes].iter().all(|&b| b == b'#')
        {
            return (i + 1 + hashes, nl);
        } else {
            i += 1;
        }
    }
    (bytes.len(), nl)
}

/// Length of a char/byte-char literal at the start of `bytes` (starting
/// at `'`), or None if this is a lifetime. Mirrors
/// `source::char_literal_len`.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    match bytes.get(1)? {
        b'\\' => {
            let mut i = 2;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'\'' => return Some(i + 1),
                    b'\n' => return None,
                    _ => i += 1,
                }
            }
            None
        }
        b'\'' => None,
        _ => {
            let mut i = 2;
            while i < bytes.len() && i <= 5 {
                if bytes[i] == b'\'' {
                    return Some(i + 1);
                }
                if bytes[i] & 0x80 == 0 {
                    break;
                }
                i += 1;
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<&str> {
        lex(src).iter().map(|t| t.text(src)).collect()
    }

    #[test]
    fn lexes_a_function_header() {
        assert_eq!(
            texts("pub fn f(x: u32) -> bool {}"),
            vec!["pub", "fn", "f", "(", "x", ":", "u32", ")", "-", ">", "bool", "{", "}"]
        );
    }

    #[test]
    fn comments_are_skipped_but_lines_advance() {
        let src = "a // one\n/* two\nthree */ b";
        let toks = lex(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn strings_are_single_tokens() {
        let toks = lex(r##"f("a(b)c", r#"x"y"#, b"z")"##);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(c: char) { let x = 'x'; let n = '\\n'; }";
        let toks = lex(src);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            1
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
    }

    #[test]
    fn double_colon_is_adjacent_puncts() {
        let toks = lex("a::b");
        assert!(toks[1].is_punct(b':') && toks[2].is_punct(b':'));
        assert!(adjacent(&toks[1], &toks[2]));
        let spaced = lex("a : :b");
        assert!(!adjacent(&spaced[1], &spaced[2]));
    }

    #[test]
    fn numbers_take_suffixes() {
        assert_eq!(texts("1u64 + 0x1F"), vec!["1u64", "+", "0x1F"]);
    }

    #[test]
    fn raw_idents_lex_whole() {
        assert_eq!(texts("r#type x"), vec!["r#type", "x"]);
    }

    #[test]
    fn unterminated_string_runs_to_eof() {
        let toks = lex("let s = \"open");
        assert_eq!(toks.last().map(|t| t.kind), Some(TokenKind::Str));
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("\"a\nb\"\nx");
        assert_eq!(toks[1].line, 3);
    }
}
