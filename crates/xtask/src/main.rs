//! `cargo xtask` — project automation entry point.
//!
//! ```text
//! cargo xtask check [--root PATH] [--rule GT-LINT-00x] [--list]
//! cargo xtask bench [--check] [--update] [--threads LIST] [--json PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O error —
//! so CI can gate on the exit status directly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::rules::{all_rules, run};
use xtask::workspace::WorkspaceSrc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown task `{other}`");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask check [--root PATH] [--rule ID] [--list]");
    eprintln!("       cargo xtask bench [--check] [--update] [--threads LIST] [--json PATH]");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  check    run the geotopo lint pass over the workspace sources");
    eprintln!("  bench    run the pipeline_stages measurement-stage bench");
    eprintln!();
    eprintln!("check options:");
    eprintln!("  --root PATH   workspace root to scan (default: cwd, else the repo root)");
    eprintln!("  --rule ID     run a single rule (repeatable), e.g. --rule GT-LINT-003");
    eprintln!("  --list        list the rule catalog and exit");
    eprintln!();
    eprintln!("bench options:");
    eprintln!("  --check         gate against the committed BENCH_measure.json baseline");
    eprintln!("  --update        rewrite BENCH_measure.json from this run");
    eprintln!("  --threads LIST  worker counts to measure (default 1,4)");
    eprintln!("  --json PATH     also write results to PATH (default target/pipeline_stages.json)");
}

/// Baseline file committed at the repo root; `bench --check` gates the
/// fresh run against it and `bench --update` rewrites it.
const BENCH_BASELINE: &str = "BENCH_measure.json";

/// `cargo xtask bench` — thin orchestrator around the `pipeline_stages`
/// bench binary, which owns the JSON handling (this crate is
/// deliberately dependency-free, see Cargo.toml). Exit status is the
/// bench's own, so CI gates on it directly.
fn bench(args: &[String]) -> ExitCode {
    let mut do_check = false;
    let mut do_update = false;
    let mut threads = String::from("1,4");
    let mut json: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => do_check = true,
            "--update" => do_update = true,
            "--threads" => match it.next() {
                Some(list) => threads = list.clone(),
                None => {
                    eprintln!("error: --threads needs a list, e.g. 1,4");
                    return ExitCode::from(2);
                }
            },
            "--json" => match it.next() {
                Some(p) => json = Some(p.clone()),
                None => {
                    eprintln!("error: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = default_root();
    // Cargo runs bench binaries with the *package* directory as cwd,
    // so every path handed over must be absolute against the root.
    let abs = |p: &str| {
        let p = Path::new(p);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            root.join(p)
        }
    };
    let baseline = abs(BENCH_BASELINE);
    // The bench writes its JSON wherever it is told: pointing it at
    // the baseline makes the run the new reference.
    let json = if do_update {
        baseline.clone()
    } else {
        abs(&json.unwrap_or_else(|| "target/pipeline_stages.json".into()))
    };
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.current_dir(&root)
        .args(["bench", "-p", "geotopo-bench", "--bench", "pipeline_stages"])
        .args(["--", "--threads", &threads])
        .arg("--json")
        .arg(&json);
    if do_check {
        cmd.arg("--check").arg(&baseline);
    }
    match cmd.status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(status) => ExitCode::from(status.code().unwrap_or(1).clamp(0, 255) as u8),
        Err(e) => {
            eprintln!("error: failed to run cargo bench: {e}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--rule" => match it.next() {
                Some(id) => only.push(id.clone()),
                None => {
                    eprintln!("error: --rule needs a rule ID");
                    return ExitCode::from(2);
                }
            },
            "--list" => list = true,
            other => {
                eprintln!("error: unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let mut rules = all_rules();
    if list {
        for r in &rules {
            println!("{}  {}", r.id(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    if !only.is_empty() {
        for id in &only {
            if !rules.iter().any(|r| r.id() == id) {
                eprintln!("error: unknown rule `{id}` (see --list)");
                return ExitCode::from(2);
            }
        }
        rules.retain(|r| only.iter().any(|id| id == r.id()));
    }

    let root = root.unwrap_or_else(default_root);
    let ws = match WorkspaceSrc::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: failed to load workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if ws.crates.is_empty() {
        eprintln!("error: no crates found under {}", root.display());
        return ExitCode::from(2);
    }

    let findings = run(&rules, &ws);
    for f in &findings {
        println!("{f}");
    }
    let nfiles = ws.num_files();
    let ncrates = ws.crates.len();
    let nrules = rules.len();
    if findings.is_empty() {
        println!("xtask check: {ncrates} crates, {nfiles} files, {nrules} rules — clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask check: {ncrates} crates, {nfiles} files, {nrules} rules — {} finding(s)",
            findings.len()
        );
        ExitCode::from(1)
    }
}

/// Workspace root when `--root` is absent: the current directory if it
/// holds a `Cargo.toml`, else walk up from this crate's manifest dir
/// (crates/xtask -> crates -> workspace root) so the alias also works
/// from subdirectories.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("Cargo.toml").exists() {
        return cwd;
    }
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest_dir
        .parent()
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or(cwd)
}
