//! `cargo xtask` — project automation entry point.
//!
//! ```text
//! cargo xtask check [--root PATH] [--rule GT-LINT-00x] [--list] [--all]
//! cargo xtask analyze [--root PATH] [--rule GT-AN-00x] [--list] [--explain ID]
//! cargo xtask bench [--bench NAME] [--check] [--update] [--scale NAME] [--threads LIST] [--json PATH]
//! ```
//!
//! `check` runs the line-level lint catalog; `analyze` runs the
//! semantic analyzer (call-graph panic reachability, hot-path
//! allocation, cross-crate hygiene); `check --all` runs both over a
//! single workspace parse, interleaving the findings in one sorted
//! stream.
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O error —
//! so CI can gate on the exit status directly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::analyze::{all_analyzers, AnalyzeRule};
use xtask::rules::{all_rules, run, Finding};
use xtask::workspace::WorkspaceSrc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown task `{other}`");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask check [--root PATH] [--rule ID] [--list] [--all]");
    eprintln!("       cargo xtask analyze [--root PATH] [--rule ID] [--list] [--explain ID]");
    eprintln!(
        "       cargo xtask bench [--bench NAME] [--check] [--update] [--scale NAME] \
         [--threads LIST] [--json PATH]"
    );
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  check    run the geotopo lint pass over the workspace sources");
    eprintln!("  analyze  run the call-graph analyzer (GT-AN rules) over the workspace");
    eprintln!("  bench    run a plain-harness bench (pipeline_stages or query)");
    eprintln!();
    eprintln!("check options:");
    eprintln!("  --root PATH   workspace root to scan (default: cwd, else the repo root)");
    eprintln!("  --rule ID     run a single rule (repeatable), e.g. --rule GT-LINT-003");
    eprintln!("  --list        list the rule catalog and exit");
    eprintln!("  --all         also run the GT-AN analyzer rules on the same parse");
    eprintln!();
    eprintln!("analyze options:");
    eprintln!("  --root PATH   workspace root to scan (default: cwd, else the repo root)");
    eprintln!("  --rule ID     run a single rule (repeatable), e.g. --rule GT-AN-001");
    eprintln!("  --list        list the analyzer catalog and exit");
    eprintln!("  --explain ID  print the long-form documentation for one rule");
    eprintln!();
    eprintln!("bench options:");
    eprintln!("  --bench NAME    which bench: pipeline_stages (default) or query");
    eprintln!("  --check         gate against the bench's committed baseline");
    eprintln!("                  (BENCH_measure.json / BENCH_query.json)");
    eprintln!("  --update        merge this run's entry into the committed baseline");
    eprintln!("  --scale NAME    world size: tiny|small|default|large|paper (default small)");
    eprintln!("  --threads LIST  worker counts to measure (default 1,4)");
    eprintln!("  --json PATH     also write results to PATH (default target/<bench>.json)");
}

/// Baseline file committed at the repo root for the `pipeline_stages`
/// bench; `bench --check` gates the fresh run against it and
/// `bench --update` rewrites it.
const BENCH_BASELINE: &str = "BENCH_measure.json";

/// Committed baseline for the `query` serving bench.
const BENCH_QUERY_BASELINE: &str = "BENCH_query.json";

/// `cargo xtask bench` — thin orchestrator around the plain-harness
/// bench binaries (`pipeline_stages` by default, `query` via `--bench`),
/// which own the JSON handling (this crate is deliberately
/// dependency-free, see Cargo.toml). Exit status is the bench's own, so
/// CI gates on it directly.
fn bench(args: &[String]) -> ExitCode {
    let mut do_check = false;
    let mut do_update = false;
    let mut which = String::from("pipeline_stages");
    let mut scale = String::from("small");
    let mut threads = String::from("1,4");
    let mut json: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => do_check = true,
            "--update" => do_update = true,
            "--bench" => match it.next() {
                Some(name) => which = name.clone(),
                None => {
                    eprintln!("error: --bench needs a name (pipeline_stages|query)");
                    return ExitCode::from(2);
                }
            },
            "--scale" => match it.next() {
                Some(s) => scale = s.clone(),
                None => {
                    eprintln!("error: --scale needs a name (tiny|small|default|large|paper)");
                    return ExitCode::from(2);
                }
            },
            "--threads" => match it.next() {
                Some(list) => threads = list.clone(),
                None => {
                    eprintln!("error: --threads needs a list, e.g. 1,4");
                    return ExitCode::from(2);
                }
            },
            "--json" => match it.next() {
                Some(p) => json = Some(p.clone()),
                None => {
                    eprintln!("error: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let (baseline_name, default_json) = match which.as_str() {
        "pipeline_stages" => (BENCH_BASELINE, "target/pipeline_stages.json"),
        "query" => (BENCH_QUERY_BASELINE, "target/query.json"),
        other => {
            eprintln!("error: unknown bench `{other}` (pipeline_stages|query)");
            return ExitCode::from(2);
        }
    };
    let root = default_root();
    // Cargo runs bench binaries with the *package* directory as cwd,
    // so every path handed over must be absolute against the root.
    let abs = |p: &str| {
        let p = Path::new(p);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            root.join(p)
        }
    };
    let baseline = abs(baseline_name);
    // The bench writes its JSON wherever it is told: pointing it at
    // the baseline makes the run the new reference.
    let json = if do_update {
        baseline.clone()
    } else {
        abs(&json.unwrap_or_else(|| default_json.into()))
    };
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.current_dir(&root)
        .args(["bench", "-p", "geotopo-bench", "--bench", &which])
        .args(["--", "--scale", &scale, "--threads", &threads])
        .arg("--json")
        .arg(&json);
    if do_check {
        cmd.arg("--check").arg(&baseline);
    }
    match cmd.status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(status) => ExitCode::from(status.code().unwrap_or(1).clamp(0, 255) as u8),
        Err(e) => {
            eprintln!("error: failed to run cargo bench: {e}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut list = false;
    let mut all = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--rule" => match it.next() {
                Some(id) => only.push(id.clone()),
                None => {
                    eprintln!("error: --rule needs a rule ID");
                    return ExitCode::from(2);
                }
            },
            "--list" => list = true,
            "--all" => all = true,
            other => {
                eprintln!("error: unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let mut rules = all_rules();
    let analyzers = if all { all_analyzers() } else { Vec::new() };
    if list {
        for r in &rules {
            println!("{}  {}", r.id(), r.describe());
        }
        for r in &analyzers {
            println!("{}   {}", r.id(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    if !only.is_empty() {
        for id in &only {
            if !rules.iter().any(|r| r.id() == id) {
                eprintln!("error: unknown rule `{id}` (see --list)");
                return ExitCode::from(2);
            }
        }
        rules.retain(|r| only.iter().any(|id| id == r.id()));
    }

    let root = root.unwrap_or_else(default_root);
    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(code) => return code,
    };

    // One workspace parse serves both catalogs: `SourceFile` carries the
    // masked view for the lint rules and the token/item trees for the
    // analyzer, so `--all` costs one extra model build, not a re-read.
    let mut findings = run(&rules, &ws);
    if !analyzers.is_empty() {
        findings.extend(xtask::analyze::run(&analyzers, &ws));
        findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }
    report("check", &ws, rules.len() + analyzers.len(), &findings)
}

fn analyze(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut list = false;
    let mut explain: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--rule" => match it.next() {
                Some(id) => only.push(id.clone()),
                None => {
                    eprintln!("error: --rule needs a rule ID");
                    return ExitCode::from(2);
                }
            },
            "--list" => list = true,
            "--explain" => match it.next() {
                Some(id) => explain = Some(id.clone()),
                None => {
                    eprintln!("error: --explain needs a rule ID");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let mut analyzers: Vec<Box<dyn AnalyzeRule>> = all_analyzers();
    if let Some(id) = explain {
        return match analyzers.iter().find(|r| r.id() == id) {
            Some(r) => {
                println!("{}", r.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: unknown rule `{id}` (see --list)");
                ExitCode::from(2)
            }
        };
    }
    if list {
        for r in &analyzers {
            println!("{}  {}", r.id(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    if !only.is_empty() {
        for id in &only {
            if !analyzers.iter().any(|r| r.id() == id) {
                eprintln!("error: unknown rule `{id}` (see --list)");
                return ExitCode::from(2);
            }
        }
        analyzers.retain(|r| only.iter().any(|id| id == r.id()));
    }

    let root = root.unwrap_or_else(default_root);
    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(code) => return code,
    };
    let findings = xtask::analyze::run(&analyzers, &ws);
    report("analyze", &ws, analyzers.len(), &findings)
}

/// Loads the workspace or reports the usage/IO error (exit 2).
fn load_workspace(root: &Path) -> Result<WorkspaceSrc, ExitCode> {
    let ws = match WorkspaceSrc::load(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: failed to load workspace at {}: {e}", root.display());
            return Err(ExitCode::from(2));
        }
    };
    if ws.crates.is_empty() {
        eprintln!("error: no crates found under {}", root.display());
        return Err(ExitCode::from(2));
    }
    Ok(ws)
}

/// Prints findings plus the one-line summary; exit 0 clean, 1 findings.
fn report(task: &str, ws: &WorkspaceSrc, nrules: usize, findings: &[Finding]) -> ExitCode {
    for f in findings {
        println!("{f}");
    }
    let nfiles = ws.num_files();
    let ncrates = ws.crates.len();
    if findings.is_empty() {
        println!("xtask {task}: {ncrates} crates, {nfiles} files, {nrules} rules — clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask {task}: {ncrates} crates, {nfiles} files, {nrules} rules — {} finding(s)",
            findings.len()
        );
        ExitCode::from(1)
    }
}

/// Workspace root when `--root` is absent: the current directory if it
/// holds a `Cargo.toml`, else walk up from this crate's manifest dir
/// (crates/xtask -> crates -> workspace root) so the alias also works
/// from subdirectories.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("Cargo.toml").exists() {
        return cwd;
    }
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest_dir
        .parent()
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or(cwd)
}
