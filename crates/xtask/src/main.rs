//! `cargo xtask` — project automation entry point.
//!
//! ```text
//! cargo xtask check [--root PATH] [--rule GT-LINT-00x] [--list]
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O error —
//! so CI can gate on the exit status directly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::rules::{all_rules, run};
use xtask::workspace::WorkspaceSrc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown task `{other}`");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask check [--root PATH] [--rule ID] [--list]");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  check    run the geotopo lint pass over the workspace sources");
    eprintln!();
    eprintln!("check options:");
    eprintln!("  --root PATH   workspace root to scan (default: cwd, else the repo root)");
    eprintln!("  --rule ID     run a single rule (repeatable), e.g. --rule GT-LINT-003");
    eprintln!("  --list        list the rule catalog and exit");
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--rule" => match it.next() {
                Some(id) => only.push(id.clone()),
                None => {
                    eprintln!("error: --rule needs a rule ID");
                    return ExitCode::from(2);
                }
            },
            "--list" => list = true,
            other => {
                eprintln!("error: unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let mut rules = all_rules();
    if list {
        for r in &rules {
            println!("{}  {}", r.id(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    if !only.is_empty() {
        for id in &only {
            if !rules.iter().any(|r| r.id() == id) {
                eprintln!("error: unknown rule `{id}` (see --list)");
                return ExitCode::from(2);
            }
        }
        rules.retain(|r| only.iter().any(|id| id == r.id()));
    }

    let root = root.unwrap_or_else(default_root);
    let ws = match WorkspaceSrc::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: failed to load workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if ws.crates.is_empty() {
        eprintln!("error: no crates found under {}", root.display());
        return ExitCode::from(2);
    }

    let findings = run(&rules, &ws);
    for f in &findings {
        println!("{f}");
    }
    let nfiles = ws.num_files();
    let ncrates = ws.crates.len();
    let nrules = rules.len();
    if findings.is_empty() {
        println!("xtask check: {ncrates} crates, {nfiles} files, {nrules} rules — clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask check: {ncrates} crates, {nfiles} files, {nrules} rules — {} finding(s)",
            findings.len()
        );
        ExitCode::from(1)
    }
}

/// Workspace root when `--root` is absent: the current directory if it
/// holds a `Cargo.toml`, else walk up from this crate's manifest dir
/// (crates/xtask -> crates -> workspace root) so the alias also works
/// from subdirectories.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("Cargo.toml").exists() {
        return cwd;
    }
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest_dir
        .parent()
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or(cwd)
}
