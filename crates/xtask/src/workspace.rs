//! Workspace discovery: enumerates the crates under a repository root
//! and loads their library sources into [`SourceFile`]s.
//!
//! Lint rules see only the `src/` trees ([`CrateSrc::files`]) —
//! integration tests, benches and examples are out of scope for library
//! lint rules. Those extra trees *are* loaded separately
//! ([`CrateSrc::ref_files`]) so the analyzer's dead-`pub` rule
//! (GT-AN-003) can count references from tests and benches before
//! calling a public item unused. The `vendor/` stand-ins for external
//! crates are deliberately not scanned: they mirror third-party APIs,
//! not this project's code.

use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One crate's manifest and library sources.
#[derive(Debug)]
pub struct CrateSrc {
    /// Package name from `Cargo.toml` (`geotopo-geo`, ...).
    pub name: String,
    /// Crate directory relative to the workspace root.
    pub dir: PathBuf,
    /// Raw `Cargo.toml` text.
    pub manifest: String,
    /// Manifest path relative to the workspace root (for diagnostics).
    pub manifest_path: PathBuf,
    /// Parsed `src/**/*.rs` files, paths relative to the workspace root.
    pub files: Vec<SourceFile>,
    /// Parsed `tests/`, `benches/` and `examples/` files — reference
    /// material for the analyzer, never linted.
    pub ref_files: Vec<SourceFile>,
}

/// All crates discovered under a workspace root.
#[derive(Debug)]
pub struct WorkspaceSrc {
    /// Member crates, sorted by name.
    pub crates: Vec<CrateSrc>,
}

impl WorkspaceSrc {
    /// Loads every crate under `root/crates/*` plus the root package.
    ///
    /// # Errors
    ///
    /// Fails if a manifest or source file cannot be read.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut crates = Vec::new();
        if root.join("Cargo.toml").exists() && root.join("src").exists() {
            if let Some(c) = load_crate(root, Path::new(""))? {
                crates.push(c);
            }
        }
        let crates_dir = root.join("crates");
        if crates_dir.exists() {
            let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            dirs.sort();
            for dir in dirs {
                let rel = dir.strip_prefix(root).unwrap_or(&dir).to_path_buf();
                if let Some(c) = load_crate(root, &rel)? {
                    crates.push(c);
                }
            }
        }
        crates.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(WorkspaceSrc { crates })
    }

    /// Total number of scanned source files.
    pub fn num_files(&self) -> usize {
        self.crates.iter().map(|c| c.files.len()).sum()
    }
}

/// Loads one crate rooted at `root/rel` (None if it has no manifest).
fn load_crate(root: &Path, rel: &Path) -> io::Result<Option<CrateSrc>> {
    let dir = root.join(rel);
    let manifest_path = dir.join("Cargo.toml");
    if !manifest_path.exists() {
        return Ok(None);
    }
    let manifest = fs::read_to_string(&manifest_path)?;
    let name = package_name(&manifest).unwrap_or_else(|| "<unnamed>".to_string());
    let load_tree = |sub: &str| -> io::Result<Vec<SourceFile>> {
        let tree = dir.join(sub);
        let mut files = Vec::new();
        if tree.exists() {
            let mut paths = Vec::new();
            collect_rs(&tree, &mut paths)?;
            paths.sort();
            for p in paths {
                let raw = fs::read_to_string(&p)?;
                let rel_path = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
                files.push(SourceFile::parse(rel_path, raw));
            }
        }
        Ok(files)
    };
    let files = load_tree("src")?;
    let mut ref_files = load_tree("tests")?;
    ref_files.extend(load_tree("benches")?);
    ref_files.extend(load_tree("examples")?);
    Ok(Some(CrateSrc {
        name,
        dir: rel.to_path_buf(),
        manifest,
        manifest_path: rel.join("Cargo.toml"),
        files,
        ref_files,
    }))
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts `name = "..."` from a manifest's `[package]` section.
pub fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Lists the `geotopo-*` (and root `geotopo`) dependency names declared
/// in a manifest's `[dependencies]` section, with 1-based line numbers.
/// Dev-dependencies are exempt from layering: tests may reach anywhere.
pub fn geotopo_dependencies(manifest: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (i, line) in manifest.lines().enumerate() {
        let t = line.trim();
        if t.starts_with('[') {
            // Exact `[dependencies]` only: target-specific tables like
            // `[target.'cfg(..)'.dependencies]` don't exist in this
            // workspace, and `[dev-dependencies]` is exempt.
            in_deps = t == "[dependencies]";
            continue;
        }
        if !in_deps || t.is_empty() || t.starts_with('#') {
            continue;
        }
        let key = t.split(['=', '.']).next().unwrap_or("").trim();
        if key == "geotopo" || key.starts_with("geotopo-") {
            out.push((i + 1, key.to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses() {
        let m = "[workspace]\nx = 1\n[package]\nversion = \"0.1\"\nname = \"geotopo-geo\"\n";
        assert_eq!(package_name(m).as_deref(), Some("geotopo-geo"));
        assert_eq!(package_name("[dependencies]\nname = \"no\"\n"), None);
    }

    #[test]
    fn dependencies_found_with_lines() {
        let m = "[package]\nname = \"x\"\n\n[dependencies]\ngeotopo-geo.workspace = true\nserde.workspace = true\ngeotopo-stats = { path = \"../stats\" }\n\n[dev-dependencies]\ngeotopo-core.workspace = true\n";
        let deps = geotopo_dependencies(m);
        assert_eq!(
            deps,
            vec![
                (5, "geotopo-geo".to_string()),
                (7, "geotopo-stats".to_string())
            ]
        );
    }

    #[test]
    fn commented_dependencies_ignored() {
        let m = "[dependencies]\n# geotopo-core.workspace = true\n";
        assert!(geotopo_dependencies(m).is_empty());
    }
}
