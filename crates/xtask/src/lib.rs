//! Project automation for the geotopo workspace.
//!
//! The one task that exists today is `cargo xtask check`: a source-level
//! lint pass enforcing project-specific invariants that `rustc` and
//! `clippy` cannot see — determinism (no OS entropy, no wall clock),
//! panic-freedom in the substrate crates, float-comparison hygiene in the
//! numeric kernels, `Debug` coverage of public API, and the sanctioned
//! crate-layering DAG. Rules are catalogued in [`rules`] with stable
//! `GT-LINT-00x` IDs; the catalog is documented in `DESIGN.md`.
//!
//! The crate is deliberately dependency-free (no geotopo crates, no
//! third-party parsers): it must build and run even when the pipeline
//! itself is broken, and the vendored offline environment has no `syn`.
//! Source scanning is a small hand-rolled lexer in [`source`] that masks
//! comment and string interiors and strips `#[cfg(test)]` regions before
//! rules see the text.

pub mod analyze;
pub mod graph;
pub mod items;
pub mod layers;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;
