//! The sanctioned crate-layering table, shared between the manifest rule
//! (GT-LINT-006 in [`crate::rules::layering`]) and the use-graph rule
//! (GT-AN-003 in [`crate::analyze::hygiene`]).
//!
//! The workspace is a strict DAG of layers; a crate may depend only on
//! geotopo crates in *strictly lower* layers:
//!
//! | layer | crates |
//! |-------|--------|
//! | 0     | `geotopo-geo`, `geotopo-stats`, `geotopo-bgp` |
//! | 1     | `geotopo-population` |
//! | 2     | `geotopo-topology`, `geotopo-geomap` |
//! | 3     | `geotopo-measure`, `geotopo-query` |
//! | 4     | `geotopo-core` |
//! | 5     | `geotopo-bench` |
//! | top   | `geotopo` (root package) |
//!
//! `xtask` sits outside the pipeline entirely and may depend on no
//! geotopo crate. A new edge means this table (and `DESIGN.md`) must be
//! updated deliberately — there is no allow marker for layering.

/// Layer assignment; `u32::MAX` marks the top-level binary package which
/// may depend on everything.
pub const LAYERS: &[(&str, u32)] = &[
    ("geotopo-geo", 0),
    ("geotopo-stats", 0),
    ("geotopo-bgp", 0),
    ("geotopo-population", 1),
    ("geotopo-topology", 2),
    ("geotopo-geomap", 2),
    ("geotopo-measure", 3),
    ("geotopo-query", 3),
    ("geotopo-core", 4),
    ("geotopo-bench", 5),
    ("geotopo", u32::MAX),
];

/// The layer of a crate name, or None if it is not in the table.
pub fn layer_of(name: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|(_, l)| *l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lookup() {
        assert_eq!(layer_of("geotopo-geo"), Some(0));
        assert_eq!(layer_of("geotopo-core"), Some(4));
        assert_eq!(layer_of("geotopo"), Some(u32::MAX));
        assert_eq!(layer_of("serde"), None);
    }

    #[test]
    fn substrate_below_pipeline() {
        for name in ["geotopo-geo", "geotopo-stats", "geotopo-bgp"] {
            assert!(layer_of(name) < layer_of("geotopo-measure"));
        }
        assert!(layer_of("geotopo-measure") < layer_of("geotopo-core"));
    }
}
