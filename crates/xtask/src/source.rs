//! Source-file model for the lint pass.
//!
//! Rules never see raw text: they see a [`SourceFile`] whose `masked`
//! view has comment and string-literal *contents* blanked out (newlines
//! preserved, so byte offsets and line numbers still line up). That kills
//! the classic grep-lint false positives — `.unwrap()` in a doc comment,
//! `"thread_rng"` inside a string — without needing a full parser.
//!
//! The model also records:
//! - **test regions**: brace-matched spans of `#[cfg(test)]` modules and
//!   `#[test]` functions, so rules can skip test-only code;
//! - **allow markers**: `// lint: allow(key)` and `// analyze: allow(key)`
//!   comments, matched per line (same line or the line directly above a
//!   violation) — or, when the marker sits on an item header (`fn`/`mod`
//!   line, or directly above it past attributes and doc comments), the
//!   item's whole span;
//! - **analyzer markers**: `// analyze: hot-path-root` registers the
//!   function it is attached to as a GT-AN-002 allocation-freedom root;
//! - the **item tree** from [`crate::items`], parsed once here and shared
//!   by the lint rules and the analyzer.

use crate::items::{Item, ItemKind, ItemTree};
use std::collections::HashSet;
use std::path::PathBuf;

/// A parsed source file ready for rule checks.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative).
    pub path: PathBuf,
    /// Raw file contents.
    pub raw: String,
    /// Contents with comment/string interiors blanked (same length).
    pub masked: String,
    /// Half-open line ranges (1-based) covered by test-only code.
    pub test_regions: Vec<(usize, usize)>,
    /// `(line, key)` pairs from `// lint: allow(key)` / `// analyze:
    /// allow(key)` markers.
    pub allows: HashSet<(usize, String)>,
    /// Inclusive line ranges covered by item-scoped allow markers: a
    /// marker attached to a `fn`/`mod` header waives `key` for the whole
    /// item span.
    pub allow_regions: Vec<(usize, usize, String)>,
    /// Tokens and item tree, parsed once and shared with the analyzer.
    pub tree: ItemTree,
    /// Header lines of fns registered via `// analyze: hot-path-root`.
    pub hot_path_roots: Vec<usize>,
    /// Header lines of fns flagged `// analyze: strict-indexing`, where
    /// GT-AN-001 also reports `x[i]` indexing as a panic site.
    pub strict_indexing: Vec<usize>,
}

impl SourceFile {
    /// Parses `raw` into the masked/line-indexed model.
    pub fn parse(path: PathBuf, raw: String) -> Self {
        let masked = mask(&raw);
        let test_regions = find_test_regions(&masked);
        let allows = find_allow_markers(&raw);
        let tree = ItemTree::parse(&raw);
        let root_marks = find_marker_lines(&raw, "analyze: hot-path-root");
        let strict_marks = find_marker_lines(&raw, "analyze: strict-indexing");
        let (allow_regions, hot_path_roots, strict_indexing) =
            attach_item_markers(&tree, &masked, &allows, &root_marks, &strict_marks);
        SourceFile {
            path,
            raw,
            masked,
            test_regions,
            allows,
            allow_regions,
            tree,
            hot_path_roots,
            strict_indexing,
        }
    }

    /// Test helper: parse an inline snippet under a synthetic path.
    pub fn from_str(name: &str, raw: &str) -> Self {
        Self::parse(PathBuf::from(name), raw.to_string())
    }

    /// Whether a 1-based line falls inside test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| line >= start && line < end)
    }

    /// Whether a violation on `line` is waived by an allow marker for
    /// `key`: on the same line, the line directly above, or inside an
    /// item whose header carries an item-scoped marker.
    pub fn is_allowed(&self, line: usize, key: &str) -> bool {
        self.allows.contains(&(line, key.to_string()))
            || (line > 1 && self.allows.contains(&(line - 1, key.to_string())))
            || self
                .allow_regions
                .iter()
                .any(|(start, end, k)| k == key && line >= *start && line <= *end)
    }

    /// Iterates `(line_number, masked_line)` over non-test code lines.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.masked
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|&(n, _)| !self.is_test_line(n))
    }
}

/// Lexer state for [`mask`].
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Blanks comment and string-literal interiors, preserving length and
/// newlines. String delimiters themselves are kept so `""` still reads as
/// an (empty) string expression in the masked view.
pub fn mask(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                match b {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        state = State::LineComment;
                        i += 2;
                        continue;
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        state = State::BlockComment(1);
                        i += 2;
                        continue;
                    }
                    b'"' => {
                        out[i] = b'"';
                        state = State::Str;
                        i += 1;
                        continue;
                    }
                    b'r' | b'b' => {
                        // Raw-string openers: r", r#", br", b" ...
                        if let Some(len) = raw_string_open(&bytes[i..]) {
                            let hashes = (len - 2) as u32; // r + hashes + "
                            for (off, slot) in out[i..i + len].iter_mut().enumerate() {
                                *slot = bytes[i + off];
                            }
                            state = State::RawStr(hashes);
                            i += len;
                            continue;
                        }
                        if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                            out[i] = b'b';
                            out[i + 1] = b'"';
                            state = State::Str;
                            i += 2;
                            continue;
                        }
                        out[i] = b;
                        i += 1;
                        continue;
                    }
                    b'\'' => {
                        // Char literal vs lifetime.
                        if let Some(len) = char_literal_len(&bytes[i..]) {
                            out[i] = b'\'';
                            out[i + len - 1] = b'\'';
                            i += len;
                        } else {
                            out[i] = b'\'';
                            i += 1;
                        }
                        continue;
                    }
                    _ => {
                        out[i] = b;
                        i += 1;
                        continue;
                    }
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    out[i] = b'\n';
                    state = State::Code;
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'\n' {
                    out[i] = b'\n';
                }
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\n' {
                    out[i] = b'\n';
                    i += 1;
                } else if b == b'\\' {
                    // Keep an escaped newline: masking must preserve line
                    // structure or every later diagnostic drifts a line.
                    if bytes.get(i + 1) == Some(&b'\n') {
                        out[i + 1] = b'\n';
                    }
                    i += 2;
                } else if b == b'"' {
                    out[i] = b'"';
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'\n' {
                    out[i] = b'\n';
                    i += 1;
                } else if b == b'"' && closes_raw(&bytes[i..], hashes) {
                    let len = 1 + hashes as usize;
                    for (off, slot) in out[i..i + len].iter_mut().enumerate() {
                        *slot = bytes[i + off];
                    }
                    state = State::Code;
                    i += len;
                } else {
                    i += 1;
                }
            }
        }
    }
    // Masking is byte-level but only ever blanks bytes, so the result is
    // valid UTF-8 whenever the input was (multi-byte chars are either
    // copied whole or fully blanked).
    String::from_utf8(out).unwrap_or_default()
}

/// Length of a raw-string opener (`r"`, `r#"`, `br##"`, ...) at the start
/// of `bytes`, or None.
fn raw_string_open(bytes: &[u8]) -> Option<usize> {
    let mut i = 0;
    if bytes.first() == Some(&b'b') {
        i += 1;
    }
    if bytes.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) == Some(&b'"') {
        let _ = hashes;
        Some(i + 1)
    } else {
        None
    }
}

/// Whether the `"` at the start of `bytes` is followed by `hashes` `#`s.
fn closes_raw(bytes: &[u8], hashes: u32) -> bool {
    let h = hashes as usize;
    bytes.len() > h && bytes[1..=h].iter().all(|&b| b == b'#')
}

/// Length of a char/byte literal at the start of `bytes` (starting at
/// `'`), or None if this is a lifetime.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    match bytes.get(1)? {
        b'\\' => {
            // Escape: scan to the closing quote.
            let mut i = 2;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'\'' => return Some(i + 1),
                    b'\n' => return None,
                    _ => i += 1,
                }
            }
            None
        }
        b'\'' => None, // '' is not a literal
        _ => {
            // 'x' is a literal; 'abc or 'a (no close) is a lifetime.
            // Multi-byte UTF-8 chars span several bytes before the quote.
            let mut i = 2;
            while i < bytes.len() && i <= 5 {
                if bytes[i] == b'\'' {
                    return Some(i + 1);
                }
                if bytes[i] & 0x80 == 0 {
                    break;
                }
                i += 1;
            }
            None
        }
    }
}

/// Finds test-only line regions: `#[cfg(test)]`/`#[test]` items, spanning
/// to the matching close brace.
fn find_test_regions(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    // Line number (1-based) at each byte offset, built lazily via count.
    let line_at = |pos: usize| 1 + masked[..pos].bytes().filter(|&b| b == b'\n').count();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'#' || bytes.get(i + 1) != Some(&b'[') {
            i += 1;
            continue;
        }
        let Some(close) = find_bracket_close(bytes, i + 1) else {
            break;
        };
        let inner: String = masked[i + 2..close]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        let is_test_attr = inner == "test"
            || inner.ends_with("::test")
            || (inner.starts_with("cfg(") && is_test_cfg(&inner));
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then find the item's block.
        let mut j = close + 1;
        loop {
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') && bytes.get(j + 1) == Some(&b'[') {
                match find_bracket_close(bytes, j + 1) {
                    Some(c) => j = c + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        // Scan to the item's opening brace; bail at `;` (e.g. `mod x;`).
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        if let Some(open) = open {
            if let Some(end) = find_brace_close(bytes, open) {
                regions.push((line_at(i), line_at(end) + 1));
                i = end + 1;
                continue;
            }
        }
        i = close + 1;
    }
    regions
}

/// Whether a whitespace-stripped `cfg(...)` attribute enables code only
/// under `test` (handles `cfg(test)`, `cfg(all(test, ...))`, ...).
fn is_test_cfg(inner: &str) -> bool {
    inner.contains("(test)")
        || inner.contains("(test,")
        || inner.contains(",test)")
        || inner.contains(",test,")
}

/// Offset of the `]` matching the `[` at `open`.
fn find_bracket_close(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Offset of the `}` matching the `{` at `open`.
fn find_brace_close(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Collects `// lint: allow(key)` and `// analyze: allow(key)` markers
/// from raw text, keyed by line. The two spellings share one namespace:
/// analyzer keys (`panic`, `alloc`, `dead-pub`) don't collide with lint
/// keys, and a single `is_allowed` lookup serves both passes.
fn find_allow_markers(raw: &str) -> HashSet<(usize, String)> {
    let mut out = HashSet::new();
    for (i, line) in raw.lines().enumerate() {
        let Some(content) = comment_text(line) else {
            continue;
        };
        for prefix in ["lint: allow(", "analyze: allow("] {
            let Some(rest) = content.strip_prefix(prefix) else {
                continue;
            };
            if let Some(end) = rest.find(')') {
                out.insert((i + 1, rest[..end].trim().to_string()));
            }
        }
    }
    out
}

/// Lines whose comment content is exactly `marker`
/// (`// analyze: hot-path-root`).
fn find_marker_lines(raw: &str, marker: &str) -> HashSet<usize> {
    raw.lines()
        .enumerate()
        .filter(|(_, l)| comment_text(l).is_some_and(|c| c.trim_end() == marker))
        .map(|(i, _)| i + 1)
        .collect()
}

/// The content of a line comment whose `//` sits at the start of the
/// line or after whitespace, with the `//`/`///`/`//!` sigil and leading
/// spaces stripped. A `//` glued to other text (a marker *mentioned*
/// inside a string literal or doc prose, e.g. `` `// analyze: ...` `` in
/// xtask's own sources) does not count — only real comments carry
/// markers.
fn comment_text(line: &str) -> Option<&str> {
    let mut search = 0;
    while let Some(rel) = line[search..].find("//") {
        let pos = search + rel;
        let before = &line[..pos];
        if before.trim().is_empty() || before.ends_with([' ', '\t']) {
            let content = line[pos..].trim_start_matches(['/', '!']).trim_start();
            return Some(content);
        }
        search = pos + 2;
    }
    None
}

/// Output of [`attach_item_markers`]: widened `(start, end, key)` allow
/// regions, hot-path-root fn header lines, strict-indexing fn header
/// lines.
type ItemMarkers = (Vec<(usize, usize, String)>, Vec<usize>, Vec<usize>);

/// Attaches line markers to items, producing item-scoped allow regions
/// and the hot-path root set.
///
/// A marker *attaches* to an item when it sits on the item's header line
/// or on a line above it separated only by attributes, doc comments, or
/// blank lines (comment interiors are blank in the masked view, so "only
/// attributes or blanks" is a simple per-line test). Attached
/// `allow(key)` markers on `fn`/`mod` headers widen to the item's whole
/// span; attached `hot-path-root` markers register the fn as a GT-AN-002
/// root.
fn attach_item_markers(
    tree: &ItemTree,
    masked: &str,
    allows: &HashSet<(usize, String)>,
    root_marks: &HashSet<usize>,
    strict_marks: &HashSet<usize>,
) -> ItemMarkers {
    let lines: Vec<&str> = masked.lines().collect();
    // Lines eligible to carry an attached marker when walking up from a
    // header: blank (comments mask to blanks) or attribute lines.
    let passable = |line_no: usize| -> bool {
        match lines.get(line_no - 1) {
            Some(l) => {
                let t = l.trim();
                t.is_empty() || t.starts_with("#[") || t.starts_with("#![")
            }
            None => false,
        }
    };
    let allow_keys_at = |line_no: usize| -> Vec<&String> {
        allows
            .iter()
            .filter(|(l, _)| *l == line_no)
            .map(|(_, k)| k)
            .collect()
    };
    let mut regions = Vec::new();
    let mut roots = Vec::new();
    let mut strict = Vec::new();
    let mut visit = |item: &Item| {
        let scoped = matches!(item.kind, ItemKind::Fn | ItemKind::Mod);
        if !scoped {
            return;
        }
        // Candidate marker lines: the header itself, then upward while
        // lines stay attribute-or-blank (capped to keep this linear in
        // practice).
        let mut candidates = vec![item.line];
        let mut l = item.line;
        while l > 1 && item.line - l < 64 && passable(l - 1) {
            l -= 1;
            candidates.push(l);
        }
        for &c in &candidates {
            for key in allow_keys_at(c) {
                regions.push((item.line, item.end_line, key.clone()));
            }
            if item.kind == ItemKind::Fn && root_marks.contains(&c) {
                roots.push(item.line);
            }
            if item.kind == ItemKind::Fn && strict_marks.contains(&c) {
                strict.push(item.line);
            }
        }
    };
    tree.walk(&mut visit);
    regions.sort();
    regions.dedup();
    roots.sort_unstable();
    roots.dedup();
    strict.sort_unstable();
    strict.dedup();
    (regions, roots, strict)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let m = mask("let x = 1; // unwrap()\n/* thread_rng */ let y;");
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("thread_rng"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y;"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = mask("a /* outer /* inner */ still */ b");
        assert!(m.contains('a') && m.contains('b'));
        assert!(!m.contains("inner") && !m.contains("still"));
    }

    #[test]
    fn masks_string_contents_keeps_delimiters() {
        let m = mask(r#"call("has .unwrap() inside", x)"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains(r#"call("#));
        assert!(m.matches('"').count() == 2);
    }

    #[test]
    fn masks_raw_strings() {
        let m = mask(r##"let s = r#"SystemTime::now()"#; done()"##);
        assert!(!m.contains("SystemTime"));
        assert!(m.contains("done()"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let m = mask(r#"f("a\"b.unwrap()"); g()"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("g()"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let m = mask("fn f<'a>(x: &'a str) { let c = '\\n'; let q = '\"'; z() }");
        assert!(m.contains("<'a>"));
        assert!(m.contains("&'a str"));
        assert!(m.contains("z()"));
        // The '"' char literal must not open a string state.
        assert!(!m.contains('\u{0}'));
    }

    #[test]
    fn preserves_line_structure() {
        let src = "a\n// c\nb\n\"s\ntill\"\nc\n";
        assert_eq!(mask(src).lines().count(), src.lines().count());
    }

    #[test]
    fn finds_cfg_test_module_region() {
        let f = SourceFile::from_str(
            "x.rs",
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn post() {}\n",
        );
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn finds_test_fn_region() {
        let f = SourceFile::from_str(
            "x.rs",
            "#[test]\nfn check() {\n    boom();\n}\nfn lib() {}\n",
        );
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let f = SourceFile::from_str(
            "x.rs",
            "#[cfg(all(test, feature = \"slow\"))]\nmod tests {\n    fn t() {}\n}\n",
        );
        assert!(f.is_test_line(3));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = SourceFile::from_str(
            "x.rs",
            "#[cfg(feature = \"x\")]\nmod m {\n    fn f() {}\n}\n",
        );
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn attributes_between_test_and_item_are_skipped() {
        let f = SourceFile::from_str("x.rs", "#[test]\n#[ignore]\nfn slow() {\n    body();\n}\n");
        assert!(f.is_test_line(4));
    }

    #[test]
    fn item_scoped_allow_covers_whole_fn_span() {
        let f = SourceFile::from_str(
            "x.rs",
            "// lint: allow(unwrap)\nfn covered() {\n    a.unwrap();\n    b.unwrap();\n}\nfn bare() {\n    c.unwrap();\n}\n",
        );
        assert!(f.is_allowed(3, "unwrap"));
        assert!(f.is_allowed(4, "unwrap"));
        assert!(!f.is_allowed(7, "unwrap"));
    }

    #[test]
    fn item_scoped_allow_skips_attributes_and_docs() {
        let f = SourceFile::from_str(
            "x.rs",
            "// analyze: allow(panic)\n#[inline]\n/// Docs.\nfn covered() {\n    panic!();\n}\n",
        );
        assert!(f.is_allowed(5, "panic"));
    }

    #[test]
    fn marker_inside_body_stays_per_line() {
        let f = SourceFile::from_str(
            "x.rs",
            "fn f() {\n    let a = x.unwrap(); // lint: allow(unwrap)\n    let b = y.unwrap();\n}\n",
        );
        assert!(f.is_allowed(2, "unwrap"));
        assert!(!f.is_allowed(4, "unwrap"));
    }

    #[test]
    fn mod_scoped_allow_covers_children() {
        let f = SourceFile::from_str(
            "x.rs",
            "// lint: allow(float_eq)\nmod approx {\n    fn close() {\n        if a == 1.0 {}\n    }\n}\n",
        );
        assert!(f.is_allowed(4, "float_eq"));
    }

    #[test]
    fn hot_path_root_marker_registers_fn_header() {
        let f = SourceFile::from_str(
            "x.rs",
            "// analyze: hot-path-root\npub fn lookup(&self) {}\nfn plain() {}\nfn tail(&self) {} // analyze: hot-path-root\n",
        );
        assert_eq!(f.hot_path_roots, vec![2, 4]);
    }

    #[test]
    fn analyze_allow_spelling_is_recognized() {
        let f = SourceFile::from_str("x.rs", "let a = x.unwrap(); // analyze: allow(panic)\n");
        assert!(f.is_allowed(1, "panic"));
        assert!(!f.is_allowed(1, "unwrap"));
    }

    #[test]
    fn allow_markers_match_same_and_previous_line() {
        let f = SourceFile::from_str(
            "x.rs",
            "let a = x.unwrap(); // lint: allow(unwrap)\n// lint: allow(float_eq)\nif a == 1.0 {}\nlet b = y.unwrap();\n",
        );
        assert!(f.is_allowed(1, "unwrap"));
        assert!(f.is_allowed(3, "float_eq"));
        assert!(!f.is_allowed(4, "unwrap"));
        assert!(!f.is_allowed(1, "float_eq"));
    }
}
