//! Workspace-level semantic model: every function in the workspace, a
//! name-resolution-lite call graph between them, and the crate-level
//! `use`-graph.
//!
//! Resolution is deliberately conservative in both directions at once:
//! a call site that cannot be resolved to a workspace function produces
//! *no* edge (std calls, vendored crates), and an ambiguous method name
//! fans out to every workspace method with a `self` receiver and that
//! name. Rules built on the graph (panic reachability, hot-path
//! allocation) therefore over-approximate reachability slightly — the
//! safe direction for an invariant checker — while staying free of
//! false edges into code we don't own.
//!
//! Everything is index-based and sorted at build time: the model is a
//! pure function of file *contents*, not of discovery order, which is
//! what makes `cargo xtask analyze` byte-identical across runs.

use crate::items::{Item, ItemKind, ItemTree, Vis};
use crate::lexer::{adjacent, Token, TokenKind};
use crate::source::SourceFile;
use crate::workspace::WorkspaceSrc;
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;

/// How a call site was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(...)` — plain path call.
    Bare,
    /// `x.method(...)`; `on_self` when the receiver token is `self`.
    Method {
        /// Whether the receiver is literally `self`.
        on_self: bool,
    },
    /// `Type::assoc(...)` or `module::free(...)` — last qualifier kept.
    Qualified(String),
}

/// One extracted call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (`unwrap`, `new`, `trace_into`, ...).
    pub name: String,
    /// Shape of the call.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: usize,
}

/// One macro invocation inside a function body (`vec!`, `panic!`, ...).
#[derive(Debug, Clone)]
pub struct MacroUse {
    /// Macro name without the `!`.
    pub name: String,
    /// 1-based source line.
    pub line: usize,
}

/// One function in the workspace model.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Owning crate name (`geotopo-measure`, ...).
    pub krate: String,
    /// Visibility as written on the fn.
    pub vis: Vis,
    /// Index into [`Model::files`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing impl's self type, if any.
    pub self_ty: Option<String>,
    /// Enclosing impl's trait (or enclosing trait), if any.
    pub trait_name: Option<String>,
    /// Whether the fn takes a `self` receiver.
    pub has_self: bool,
    /// Header line (1-based).
    pub line: usize,
    /// Last line of the item.
    pub end_line: usize,
    /// Whether the fn lives in test-only code.
    pub is_test: bool,
    /// Calls extracted from the body.
    pub calls: Vec<CallSite>,
    /// Macro invocations extracted from the body.
    pub macros: Vec<MacroUse>,
    /// Lines with `x[i]`-style indexing in the body.
    pub index_lines: Vec<usize>,
    /// Token range of the body in the owning file, braces included.
    pub body: Option<(usize, usize)>,
}

impl FnNode {
    /// `Type::name` or plain `name`, for diagnostics.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One crate-to-crate import edge observed in source.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct UseEdge {
    /// Importing crate.
    pub from: String,
    /// Imported geotopo crate.
    pub to: String,
    /// Witness file (index into [`Model::files`]).
    pub file: usize,
    /// Witness line.
    pub line: usize,
}

/// The workspace model: files, functions, call graph, use-graph.
pub struct Model<'ws> {
    /// Flat file list as `(crate index, file index)` into the workspace.
    pub files: Vec<(usize, usize)>,
    /// All functions, sorted by (file, header line).
    pub fns: Vec<FnNode>,
    /// Call-graph adjacency: `edges[f]` are callee indices, sorted.
    pub edges: Vec<Vec<u32>>,
    /// Crate-level use edges, sorted and deduped by (from, to).
    pub use_edges: Vec<UseEdge>,
    ws: &'ws WorkspaceSrc,
}

impl std::fmt::Debug for Model<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("files", &self.files.len())
            .field("fns", &self.fns.len())
            .field("use_edges", &self.use_edges.len())
            .finish_non_exhaustive()
    }
}

impl<'ws> Model<'ws> {
    /// Builds the model from loaded workspace sources.
    pub fn build(ws: &'ws WorkspaceSrc) -> Self {
        // Flat, deterministically ordered file list. Crates are sorted
        // by name at load; files are sorted by path within each crate —
        // but sort again by path so the model never depends on it.
        let mut files: Vec<(usize, usize)> = Vec::new();
        for (ci, c) in ws.crates.iter().enumerate() {
            for fi in 0..c.files.len() {
                files.push((ci, fi));
            }
        }
        files.sort_by(|a, b| {
            let pa = &ws.crates[a.0].files[a.1].path;
            let pb = &ws.crates[b.0].files[b.1].path;
            pa.cmp(pb)
        });

        // Collect every fn (with its impl context) from every file.
        let mut fns: Vec<FnNode> = Vec::new();
        for (idx, &(ci, fi)) in files.iter().enumerate() {
            let c = &ws.crates[ci];
            let sf = &c.files[fi];
            collect_fns(&c.name, idx, sf, &mut fns);
        }
        fns.sort_by_key(|f| (f.file, f.line));

        let use_edges = collect_use_edges(ws, &files);
        let edges = resolve_edges(&fns, &use_edges);

        Model {
            files,
            fns,
            edges,
            use_edges,
            ws,
        }
    }

    /// The workspace the model was built from.
    pub fn workspace(&self) -> &'ws WorkspaceSrc {
        self.ws
    }

    /// The source file behind flat file index `idx`.
    pub fn file(&self, idx: usize) -> &'ws SourceFile {
        let (ci, fi) = self.files[idx];
        &self.ws.crates[ci].files[fi]
    }

    /// Diagnostic path of flat file index `idx`.
    pub fn path(&self, idx: usize) -> &'ws PathBuf {
        &self.file(idx).path
    }

    /// Fn index at an exact (file, header line), if any.
    pub fn fn_at(&self, file: usize, line: usize) -> Option<u32> {
        self.fns
            .iter()
            .position(|f| f.file == file && f.line == line)
            .map(|i| i as u32)
    }

    /// BFS over the call graph from `roots`. Returns a parent array:
    /// `parents[f] == Some(p)` when `f` is reachable (roots point at
    /// themselves). Test-only fns are never traversed: ambiguous method
    /// resolution may fan out into test helpers, and production roots
    /// cannot actually reach them. Deterministic: roots are visited in
    /// sorted order.
    pub fn reachable(&self, roots: &[u32]) -> Vec<Option<u32>> {
        let mut parents: Vec<Option<u32>> = vec![None; self.fns.len()];
        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut sorted: Vec<u32> = roots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &r in &sorted {
            if (r as usize) < parents.len()
                && parents[r as usize].is_none()
                && !self.fns[r as usize].is_test
            {
                parents[r as usize] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &callee in &self.edges[f as usize] {
                if parents[callee as usize].is_none() && !self.fns[callee as usize].is_test {
                    parents[callee as usize] = Some(f);
                    queue.push_back(callee);
                }
            }
        }
        parents
    }

    /// Witness call path `root -> ... -> f` as `A::a -> B::b`, read off
    /// the parent array from [`Model::reachable`].
    pub fn witness_path(&self, parents: &[Option<u32>], f: u32) -> String {
        let mut chain = vec![f];
        let mut cur = f;
        while let Some(p) = parents[cur as usize] {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&i| self.fns[i as usize].qual_name())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Walks a file's item tree collecting fns with bodies (and trait
/// context), extracting call/macro/indexing sites from each body.
fn collect_fns(krate: &str, file_idx: usize, sf: &SourceFile, out: &mut Vec<FnNode>) {
    let tree: &ItemTree = &sf.tree;
    let mut visit = |item: &Item| {
        if item.kind != ItemKind::Fn {
            return;
        }
        let is_test = sf.is_test_line(item.line) || item.attrs.iter().any(|a| a == "test");
        let (calls, macros, index_lines) = match item.body {
            Some((start, end)) => extract_sites(&sf.raw, &tree.tokens[start..end]),
            None => (Vec::new(), Vec::new(), Vec::new()),
        };
        out.push(FnNode {
            krate: krate.to_string(),
            vis: item.vis,
            file: file_idx,
            name: item.name.clone(),
            self_ty: item.self_ty.clone(),
            trait_name: item.trait_name.clone(),
            has_self: item.has_self,
            line: item.line,
            end_line: item.end_line,
            is_test,
            calls,
            macros,
            index_lines,
            body: item.body,
        });
    };
    tree.walk(&mut visit);
}

/// Rust keywords that look like call heads but aren't.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "let"
            | "else"
            | "fn"
            | "move"
            | "in"
            | "as"
            | "ref"
            | "mut"
            | "impl"
            | "where"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "break"
            | "continue"
            | "struct"
            | "enum"
            | "const"
            | "static"
            | "use"
            | "pub"
            | "crate"
            | "super"
            | "mod"
            | "trait"
            | "type"
    )
}

/// Extracts call sites, macro uses, and indexing lines from one body's
/// token slice.
fn extract_sites(src: &str, toks: &[Token]) -> (Vec<CallSite>, Vec<MacroUse>, Vec<usize>) {
    let mut calls = Vec::new();
    let mut macros = Vec::new();
    let mut index_lines = Vec::new();
    let text = |t: &Token| t.text(src);
    let is_colon2 = |a: &Token, b: &Token| a.is_punct(b':') && b.is_punct(b':') && adjacent(a, b);
    for i in 0..toks.len() {
        let t = &toks[i];
        // Indexing: value token directly followed by `[`.
        if let Some(n) = toks.get(i + 1) {
            if n.is_punct(b'[')
                && matches!(
                    t.kind,
                    TokenKind::Ident | TokenKind::Punct(b')') | TokenKind::Punct(b']')
                )
                && !matches!(text(t), s if t.kind == TokenKind::Ident && is_keyword(s))
            {
                index_lines.push(n.line);
            }
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = text(t);
        if is_keyword(name) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        // Macro invocation: `name!` (`panic!(...)`, `vec![...]`).
        if next.is_punct(b'!') && adjacent(t, next) {
            macros.push(MacroUse {
                name: name.to_string(),
                line: t.line,
            });
            continue;
        }
        // Call head: `name(` directly, or `name::<T>(` turbofish.
        let is_call = if next.is_punct(b'(') {
            true
        } else if i + 3 < toks.len() && is_colon2(next, &toks[i + 2]) && toks[i + 3].is_punct(b'<')
        {
            // Walk the turbofish to its `>` and require `(` after.
            let mut depth = 0i32;
            let mut j = i + 3;
            let mut ok = false;
            while j < toks.len() {
                match toks[j].kind {
                    TokenKind::Punct(b'<') => depth += 1,
                    TokenKind::Punct(b'>') => {
                        depth -= 1;
                        if depth == 0 {
                            ok = toks.get(j + 1).is_some_and(|t| t.is_punct(b'('));
                            break;
                        }
                    }
                    TokenKind::Punct(b';') | TokenKind::Punct(b'{') => break,
                    _ => {}
                }
                j += 1;
            }
            ok
        } else {
            false
        };
        if !is_call {
            continue;
        }
        // Shape from the preceding tokens.
        let kind = if i >= 1 && toks[i - 1].is_punct(b'.') {
            let on_self = i >= 2
                && toks[i - 2].kind == TokenKind::Ident
                && text(&toks[i - 2]) == "self"
                && (i < 3 || !toks[i - 3].is_punct(b'.'));
            CallKind::Method { on_self }
        } else if i >= 2 && is_colon2(&toks[i - 2], &toks[i - 1]) {
            // Qualifier before `::` — ident, or `>` closing generics.
            match toks.get(i.wrapping_sub(3)) {
                Some(q) if q.kind == TokenKind::Ident => CallKind::Qualified(text(q).to_string()),
                Some(q) if q.is_punct(b'>') => {
                    // `Vec::<u8>::new` — walk back to the matching `<`,
                    // then take the ident before its `::`.
                    let mut depth = 0i32;
                    let mut j = i - 3;
                    let mut qual = None;
                    loop {
                        match toks[j].kind {
                            TokenKind::Punct(b'>') => depth += 1,
                            TokenKind::Punct(b'<') => {
                                depth -= 1;
                                if depth == 0 {
                                    if j >= 3
                                        && is_colon2(&toks[j - 2], &toks[j - 1])
                                        && toks[j - 3].kind == TokenKind::Ident
                                    {
                                        qual = Some(text(&toks[j - 3]).to_string());
                                    } else if j >= 1 && toks[j - 1].kind == TokenKind::Ident {
                                        qual = Some(text(&toks[j - 1]).to_string());
                                    }
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if j == 0 {
                            break;
                        }
                        j -= 1;
                    }
                    match qual {
                        Some(q) => CallKind::Qualified(q),
                        None => CallKind::Bare,
                    }
                }
                _ => CallKind::Bare,
            }
        } else {
            CallKind::Bare
        };
        calls.push(CallSite {
            name: name.to_string(),
            kind,
            line: t.line,
        });
    }
    (calls, macros, index_lines)
}

/// Resolves every call site to workspace fn indices, building the
/// adjacency lists.
///
/// By-name candidates are filtered by *crate visibility*: a callee is
/// viable only when it lives in the caller's own crate or in a crate
/// the caller's crate actually imports (per the use-graph). Without
/// this, ubiquitous std method names (`.map(..)`, `.get(..)`) would
/// resolve to any same-named workspace method — e.g. an `Option::map`
/// inside `bgp` fanning out to a geomap method `map` that `bgp` cannot
/// even name.
fn resolve_edges(fns: &[FnNode], use_edges: &[UseEdge]) -> Vec<Vec<u32>> {
    let mut imports: HashMap<&str, HashSet<&str>> = HashMap::new();
    for e in use_edges {
        imports.entry(&e.from).or_default().insert(&e.to);
    }
    // Index maps. Values are pushed in fn order, so they are sorted.
    let mut methods_by_name: HashMap<&str, Vec<u32>> = HashMap::new();
    let mut assoc_by_type_fn: HashMap<(&str, &str), Vec<u32>> = HashMap::new();
    let mut free_by_name: HashMap<&str, Vec<u32>> = HashMap::new();
    let mut free_by_crate_name: HashMap<(&str, &str), Vec<u32>> = HashMap::new();
    let mut by_file_name: HashMap<(usize, &str), Vec<u32>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        let i = i as u32;
        if f.has_self {
            methods_by_name.entry(&f.name).or_default().push(i);
        }
        if let Some(ty) = &f.self_ty {
            assoc_by_type_fn
                .entry((ty.as_str(), &f.name))
                .or_default()
                .push(i);
        } else {
            free_by_name.entry(&f.name).or_default().push(i);
            free_by_crate_name
                .entry((f.krate.as_str(), &f.name))
                .or_default()
                .push(i);
        }
        by_file_name.entry((f.file, &f.name)).or_default().push(i);
    }

    let empty: Vec<u32> = Vec::new();
    let mut edges: Vec<Vec<u32>> = Vec::with_capacity(fns.len());
    for f in fns {
        let mut out: Vec<u32> = Vec::new();
        for call in &f.calls {
            let targets: &Vec<u32> = match &call.kind {
                CallKind::Method { on_self: true } => {
                    // `self.m(...)`: methods of the same self type first.
                    match &f.self_ty {
                        Some(ty) => assoc_by_type_fn
                            .get(&(ty.as_str(), call.name.as_str()))
                            .unwrap_or_else(|| {
                                methods_by_name.get(call.name.as_str()).unwrap_or(&empty)
                            }),
                        None => methods_by_name.get(call.name.as_str()).unwrap_or(&empty),
                    }
                }
                CallKind::Method { on_self: false } => {
                    // Any workspace method with this name; if none, the
                    // call targets std/vendored code — no edge.
                    methods_by_name.get(call.name.as_str()).unwrap_or(&empty)
                }
                CallKind::Qualified(q) => {
                    let is_type_like = q.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                    if q == "Self" {
                        match &f.self_ty {
                            Some(ty) => assoc_by_type_fn
                                .get(&(ty.as_str(), call.name.as_str()))
                                .unwrap_or(&empty),
                            None => &empty,
                        }
                    } else if is_type_like {
                        assoc_by_type_fn
                            .get(&(q.as_str(), call.name.as_str()))
                            .unwrap_or(&empty)
                    } else {
                        // `module::free(...)`: free fns with that name
                        // anywhere in the workspace (module names are
                        // not tracked — conservative fan-out).
                        free_by_name.get(call.name.as_str()).unwrap_or(&empty)
                    }
                }
                CallKind::Bare => {
                    // Same file, then same crate, then any free fn.
                    if let Some(v) = by_file_name.get(&(f.file, call.name.as_str())) {
                        v
                    } else if let Some(v) =
                        free_by_crate_name.get(&(f.krate.as_str(), call.name.as_str()))
                    {
                        v
                    } else {
                        free_by_name.get(call.name.as_str()).unwrap_or(&empty)
                    }
                }
            };
            let visible = |&i: &u32| {
                let t = &fns[i as usize];
                t.krate == f.krate
                    || imports
                        .get(f.krate.as_str())
                        .is_some_and(|s| s.contains(t.krate.as_str()))
            };
            out.extend(targets.iter().filter(|i| visible(i)));
        }
        out.sort_unstable();
        out.dedup();
        edges.push(out);
    }
    edges
}

/// Scans every file for `geotopo_*` idents in non-test code, producing
/// the crate-level use-graph with one witness site per edge.
fn collect_use_edges(ws: &WorkspaceSrc, files: &[(usize, usize)]) -> Vec<UseEdge> {
    // Only idents that name an actual workspace crate count as import
    // edges: a fn or variable that happens to start with `geotopo_`
    // (e.g. xtask's own `geotopo_dependencies` helper) is not an edge.
    let crate_names: HashSet<&str> = ws.crates.iter().map(|c| c.name.as_str()).collect();
    let mut seen: HashSet<(String, String)> = HashSet::new();
    let mut out: Vec<UseEdge> = Vec::new();
    for (idx, &(ci, fi)) in files.iter().enumerate() {
        let c = &ws.crates[ci];
        let sf = &c.files[fi];
        for t in &sf.tree.tokens {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let s = t.text(&sf.raw);
            if !s.starts_with("geotopo") {
                continue;
            }
            let target = if s == "geotopo" {
                "geotopo".to_string()
            } else if let Some(rest) = s.strip_prefix("geotopo_") {
                format!("geotopo-{}", rest.replace('_', "-"))
            } else {
                continue;
            };
            if target == c.name || !crate_names.contains(target.as_str()) || sf.is_test_line(t.line)
            {
                continue;
            }
            if seen.insert((c.name.clone(), target.clone())) {
                out.push(UseEdge {
                    from: c.name.clone(),
                    to: target,
                    file: idx,
                    line: t.line,
                });
            }
        }
    }
    out.sort();
    out
}

/// All `pub` items (workspace surface) per file, for the dead-`pub`
/// half of GT-AN-003. Returns `(file index, name, line)` tuples.
pub fn public_items(model: &Model<'_>) -> Vec<(usize, String, usize)> {
    let mut out = Vec::new();
    for (idx, &(ci, fi)) in model.files.iter().enumerate() {
        let sf = &model.workspace().crates[ci].files[fi];
        let mut visit = |item: &Item| {
            if item.vis != Vis::Pub || sf.is_test_line(item.line) {
                return;
            }
            let named = matches!(
                item.kind,
                ItemKind::Fn
                    | ItemKind::Struct
                    | ItemKind::Enum
                    | ItemKind::Trait
                    | ItemKind::Const
                    | ItemKind::Static
                    | ItemKind::TypeAlias
            );
            if named && !item.name.is_empty() {
                out.push((idx, item.name.clone(), item.line));
            }
        };
        sf.tree.walk(&mut visit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::CrateSrc;
    use std::path::PathBuf;

    fn ws(crates: &[(&str, &[(&str, &str)])]) -> WorkspaceSrc {
        WorkspaceSrc {
            crates: crates
                .iter()
                .map(|(name, files)| CrateSrc {
                    name: name.to_string(),
                    dir: PathBuf::from(format!("crates/{name}")),
                    manifest: format!("[package]\nname = \"{name}\"\n"),
                    manifest_path: PathBuf::from(format!("crates/{name}/Cargo.toml")),
                    files: files
                        .iter()
                        .map(|(p, s)| SourceFile::from_str(p, s))
                        .collect(),
                    ref_files: Vec::new(),
                })
                .collect(),
        }
    }

    fn find_fn(m: &Model<'_>, name: &str) -> u32 {
        m.fns.iter().position(|f| f.name == name).unwrap() as u32
    }

    #[test]
    fn bare_calls_resolve_same_file_first() {
        let w = ws(&[(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "fn top() { helper(); }\nfn helper() {}\n",
            )],
        )]);
        let m = Model::build(&w);
        let top = find_fn(&m, "top");
        let helper = find_fn(&m, "helper");
        assert_eq!(m.edges[top as usize], vec![helper]);
    }

    #[test]
    fn self_method_calls_resolve_within_impl() {
        let w = ws(&[(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "struct S;\nimpl S {\n    fn outer(&self) { self.inner(); }\n    fn inner(&self) {}\n}\n",
            )],
        )]);
        let m = Model::build(&w);
        let outer = find_fn(&m, "outer");
        let inner = find_fn(&m, "inner");
        assert_eq!(m.edges[outer as usize], vec![inner]);
    }

    #[test]
    fn qualified_assoc_calls_resolve_by_type() {
        let w = ws(&[(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "struct S;\nimpl S {\n    fn make() -> S { S }\n}\nfn top() { let _ = S::make(); }\n",
            )],
        )]);
        let m = Model::build(&w);
        let top = find_fn(&m, "top");
        let make = find_fn(&m, "make");
        assert_eq!(m.edges[top as usize], vec![make]);
    }

    #[test]
    fn unresolved_std_calls_produce_no_edges() {
        let w = ws(&[(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "fn top() { let v: Vec<u32> = Vec::new(); let _ = v.len(); }\n",
            )],
        )]);
        let m = Model::build(&w);
        let top = find_fn(&m, "top");
        assert!(m.edges[top as usize].is_empty());
    }

    #[test]
    fn reachability_is_transitive_with_witness() {
        let w = ws(&[(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn unrelated() {}\n",
            )],
        )]);
        let m = Model::build(&w);
        let (a, c) = (find_fn(&m, "a"), find_fn(&m, "c"));
        let parents = m.reachable(&[a]);
        assert!(parents[c as usize].is_some());
        assert!(parents[find_fn(&m, "unrelated") as usize].is_none());
        assert_eq!(m.witness_path(&parents, c), "a -> b -> c");
    }

    #[test]
    fn macro_uses_and_indexing_are_recorded() {
        let w = ws(&[(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "fn f(v: &[u32]) -> u32 {\n    let x = vec![1];\n    panic!(\"no\");\n    v[0] + x[0]\n}\n",
            )],
        )]);
        let m = Model::build(&w);
        let f = &m.fns[find_fn(&m, "f") as usize];
        let macro_names: Vec<&str> = f.macros.iter().map(|m| m.name.as_str()).collect();
        assert!(macro_names.contains(&"vec"));
        assert!(macro_names.contains(&"panic"));
        assert_eq!(f.index_lines, vec![4, 4]);
    }

    #[test]
    fn use_edges_map_idents_to_crate_names() {
        let w = ws(&[
            (
                "geotopo-geo",
                &[("crates/geo/src/lib.rs", "pub fn p() {}\n")][..],
            ),
            (
                "geotopo-measure",
                &[(
                    "crates/measure/src/lib.rs",
                    "use geotopo_geo::p;\nfn f() { p(); }\n",
                )][..],
            ),
        ]);
        let m = Model::build(&w);
        assert_eq!(m.use_edges.len(), 1);
        assert_eq!(m.use_edges[0].from, "geotopo-measure");
        assert_eq!(m.use_edges[0].to, "geotopo-geo");
        assert_eq!(m.use_edges[0].line, 1);
    }

    #[test]
    fn test_fns_are_flagged() {
        let w = ws(&[(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n",
            )],
        )]);
        let m = Model::build(&w);
        assert!(!m.fns[find_fn(&m, "lib") as usize].is_test);
        assert!(m.fns[find_fn(&m, "t") as usize].is_test);
    }

    #[test]
    fn public_items_lists_pub_surface_only() {
        let w = ws(&[(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "pub fn api() {}\nfn private() {}\npub(crate) fn scoped() {}\npub struct Thing;\n",
            )],
        )]);
        let m = Model::build(&w);
        let items = public_items(&m);
        let names: Vec<&str> = items.iter().map(|(_, n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["api", "Thing"]);
    }
}
