//! Per-file item trees: modules, functions, impls, traits, and uses
//! parsed from the token stream of [`crate::lexer`].
//!
//! This is "name-resolution lite": enough structure for the analyzer's
//! graphs — who defines what, under which module path, with which self
//! type — without pretending to be rustc. Unknown constructs are
//! skipped gracefully (a balanced-delimiter skip), so the parser never
//! fails on valid Rust; at worst it under-reports items, which every
//! rule treats as "no finding" rather than an error.

use crate::lexer::{adjacent, lex, Token, TokenKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { ... }` or `mod name;`
    Mod,
    /// `fn name(...) { ... }` (free, assoc, or trait-default).
    Fn,
    /// `impl Type { ... }` or `impl Trait for Type { ... }`.
    Impl,
    /// `trait Name { ... }`.
    Trait,
    /// `struct Name ...`
    Struct,
    /// `enum Name { ... }`
    Enum,
    /// `use path::to::thing;`
    Use,
    /// `const NAME: ... = ...;`
    Const,
    /// `static NAME: ... = ...;`
    Static,
    /// `type Name = ...;`
    TypeAlias,
    /// `macro_rules! name { ... }`
    MacroDef,
}

/// Item visibility, as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub`
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)`
    Restricted,
    /// No `pub` at all.
    Private,
}

/// One parsed item with its source span and children.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item class.
    pub kind: ItemKind,
    /// Declared name. Impls get their self type's name; uses get the
    /// full path text.
    pub name: String,
    /// Visibility as written.
    pub vis: Vis,
    /// 1-based line of the item keyword (`fn`, `mod`, ...).
    pub line: usize,
    /// 1-based line of the item's last token (close brace or `;`).
    pub end_line: usize,
    /// Token index range `[start, end)` of the `{ ... }` body in the
    /// file's token stream, braces included. None for `;`-terminated
    /// items and bodiless trait methods.
    pub body: Option<(usize, usize)>,
    /// For fns: whether the first parameter is a `self` receiver.
    pub has_self: bool,
    /// For impls: the trait name if `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// For fns inside an impl: the impl's self type (filled by the
    /// parser when descending); for impls, same as `name`.
    pub self_ty: Option<String>,
    /// Attribute names seen on the item (`test`, `cfg`, `inline`, ...).
    pub attrs: Vec<String>,
    /// Nested items (mod/impl/trait children).
    pub children: Vec<Item>,
}

impl Item {
    /// Depth-first iteration over this item and all descendants.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Item)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

/// A parsed file: its tokens plus the top-level item list.
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    /// All tokens of the file, in order.
    pub tokens: Vec<Token>,
    /// Top-level items.
    pub items: Vec<Item>,
}

impl ItemTree {
    /// Lexes and parses a source file.
    pub fn parse(src: &str) -> Self {
        let tokens = lex(src);
        let items = Parser {
            src,
            toks: &tokens,
            pos: 0,
        }
        .items(usize::MAX);
        ItemTree { tokens, items }
    }

    /// Depth-first iteration over every item in the file.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Item)) {
        for i in &self.items {
            i.walk(f);
        }
    }
}

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn text(&self, t: &Token) -> &'a str {
        t.text(self.src)
    }

    /// Parses items until `end` (token index) or EOF.
    fn items(&mut self, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        while self.pos < self.toks.len() && self.pos < end {
            match self.item() {
                Some(item) => out.push(item),
                None => {
                    // Not an item start: skip one balanced chunk.
                    self.skip_one(end);
                }
            }
        }
        out
    }

    /// Skips one token, or a whole balanced `{...}`/`(...)`/`[...]`.
    fn skip_one(&mut self, end: usize) {
        let Some(t) = self.peek() else {
            return;
        };
        match t.kind {
            TokenKind::Punct(b'{') => self.skip_balanced(b'{', b'}', end),
            TokenKind::Punct(b'(') => self.skip_balanced(b'(', b')', end),
            TokenKind::Punct(b'[') => self.skip_balanced(b'[', b']', end),
            _ => self.pos += 1,
        }
    }

    fn skip_balanced(&mut self, open: u8, close: u8, end: usize) {
        let mut depth = 0usize;
        while self.pos < self.toks.len() && self.pos < end {
            let t = &self.toks[self.pos];
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Collects leading `#[attr]` names, advancing past them.
    fn attrs(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(t) = self.peek() {
            if !t.is_punct(b'#') {
                break;
            }
            // `#[` or `#![` — inner attrs are collected the same way.
            let mut j = self.pos + 1;
            if self.toks.get(j).is_some_and(|t| t.is_punct(b'!')) {
                j += 1;
            }
            if !self.toks.get(j).is_some_and(|t| t.is_punct(b'[')) {
                self.pos += 1;
                continue;
            }
            // First ident inside the brackets names the attribute.
            if let Some(name_tok) = self.toks.get(j + 1) {
                if name_tok.kind == TokenKind::Ident {
                    out.push(self.text(name_tok).to_string());
                }
            }
            self.pos = j;
            self.skip_balanced(b'[', b']', usize::MAX);
        }
        out
    }

    /// Parses `pub` / `pub(...)` if present.
    fn vis(&mut self) -> Vis {
        let Some(t) = self.peek() else {
            return Vis::Private;
        };
        if t.kind != TokenKind::Ident || self.text(t) != "pub" {
            return Vis::Private;
        }
        self.pos += 1;
        if self.peek().is_some_and(|t| t.is_punct(b'(')) {
            self.skip_balanced(b'(', b')', usize::MAX);
            Vis::Restricted
        } else {
            Vis::Pub
        }
    }

    /// Attempts to parse one item at the current position.
    fn item(&mut self) -> Option<Item> {
        let start_pos = self.pos;
        let attrs = self.attrs();
        let vis = self.vis();
        // Qualifiers that may precede an item keyword.
        let mut qual_pos = self.pos;
        while let Some(t) = self.toks.get(qual_pos) {
            let is_qual = t.kind == TokenKind::Ident
                && match self.text(t) {
                    "unsafe" | "async" | "extern" | "default" => true,
                    // `const fn` vs `const NAME`: `const` is a qualifier
                    // only when another qualifier or `fn` follows.
                    "const" => self.toks.get(qual_pos + 1).is_some_and(|n| {
                        n.kind == TokenKind::Ident
                            && matches!(self.text(n), "fn" | "unsafe" | "async" | "extern")
                    }),
                    _ => false,
                };
            if is_qual {
                qual_pos += 1;
                if self
                    .toks
                    .get(qual_pos)
                    .is_some_and(|t| t.kind == TokenKind::Str)
                {
                    qual_pos += 1; // extern "C"
                }
            } else {
                break;
            }
        }
        let kw_tok = self.toks.get(qual_pos)?;
        if kw_tok.kind != TokenKind::Ident {
            self.pos = start_pos;
            return None;
        }
        let kw = self.text(kw_tok);
        let item = match kw {
            "fn" => {
                self.pos = qual_pos + 1;
                self.fn_item(attrs, vis)
            }
            "mod" => {
                self.pos = qual_pos + 1;
                self.mod_item(attrs, vis)
            }
            "impl" => {
                self.pos = qual_pos + 1;
                self.impl_item(attrs, vis)
            }
            "trait" => {
                self.pos = qual_pos + 1;
                self.trait_item(attrs, vis)
            }
            "struct" | "enum" | "union" => {
                let kind = if kw == "enum" {
                    ItemKind::Enum
                } else {
                    ItemKind::Struct
                };
                self.pos = qual_pos + 1;
                self.named_item(kind, attrs, vis)
            }
            "use" => {
                self.pos = qual_pos + 1;
                self.use_item(attrs, vis)
            }
            "const" | "static" if self.pos == qual_pos => {
                // `const NAME: ...` (a `const fn` would have advanced
                // qual_pos past this token).
                let kind = if kw == "const" {
                    ItemKind::Const
                } else {
                    ItemKind::Static
                };
                self.pos = qual_pos + 1;
                self.named_item(kind, attrs, vis)
            }
            "type" => {
                self.pos = qual_pos + 1;
                self.named_item(ItemKind::TypeAlias, attrs, vis)
            }
            "macro_rules" => {
                self.pos = qual_pos + 1;
                // `macro_rules ! name { ... }`
                if self.peek().is_some_and(|t| t.is_punct(b'!')) {
                    self.pos += 1;
                }
                self.named_item(ItemKind::MacroDef, attrs, vis)
            }
            _ => {
                self.pos = start_pos;
                return None;
            }
        };
        match item {
            Some(i) => Some(i),
            None => {
                // Parse failed partway: make progress past the keyword.
                self.pos = self.pos.max(start_pos + 1);
                None
            }
        }
    }

    /// After the `fn` keyword: name, generics, params, body or `;`.
    fn fn_item(&mut self, attrs: Vec<String>, vis: Vis) -> Option<Item> {
        let name_tok = self.peek()?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let name = self.text(name_tok).to_string();
        let line = name_tok.line;
        self.pos += 1;
        if self.peek().is_some_and(|t| t.is_punct(b'<')) {
            self.skip_generics();
        }
        // Parameter list.
        let mut has_self = false;
        if self.peek().is_some_and(|t| t.is_punct(b'(')) {
            let params_start = self.pos;
            self.skip_balanced(b'(', b')', usize::MAX);
            // `self` appearing before the first `,` at depth 1 marks a
            // receiver (`&self`, `&mut self`, `self`, `mut self`,
            // `self: Rc<Self>`).
            let mut depth = 0usize;
            for t in &self.toks[params_start..self.pos] {
                match t.kind {
                    TokenKind::Punct(b'(') => depth += 1,
                    TokenKind::Punct(b')') => depth = depth.saturating_sub(1),
                    TokenKind::Punct(b',') if depth == 1 => break,
                    TokenKind::Ident if depth == 1 && t.text(self.src) == "self" => {
                        has_self = true;
                    }
                    _ => {}
                }
            }
        }
        // Return type / where clause: scan to `{` or `;` at depth 0,
        // counting angle brackets so `-> Option<{..}>` can't confuse us
        // (closures in const generics are out of scope for this code).
        let (body, end_line) = self.item_tail(line)?;
        Some(Item {
            kind: ItemKind::Fn,
            name,
            vis,
            line,
            end_line,
            body,
            has_self,
            trait_name: None,
            self_ty: None,
            attrs,
            children: Vec::new(),
        })
    }

    /// After `mod`: name then `{ items }` or `;`.
    fn mod_item(&mut self, attrs: Vec<String>, vis: Vis) -> Option<Item> {
        let name_tok = self.peek()?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let name = self.text(name_tok).to_string();
        let line = name_tok.line;
        self.pos += 1;
        let t = self.peek()?;
        if t.is_punct(b';') {
            let end_line = t.line;
            self.pos += 1;
            return Some(Item {
                kind: ItemKind::Mod,
                name,
                vis,
                line,
                end_line,
                body: None,
                has_self: false,
                trait_name: None,
                self_ty: None,
                attrs,
                children: Vec::new(),
            });
        }
        if !t.is_punct(b'{') {
            return None;
        }
        let open = self.pos;
        let close = self.matching_brace(open)?;
        self.pos = open + 1;
        let children = self.items(close);
        let end_line = self.toks[close].line;
        self.pos = close + 1;
        Some(Item {
            kind: ItemKind::Mod,
            name,
            vis,
            line,
            end_line,
            body: Some((open, close + 1)),
            has_self: false,
            trait_name: None,
            self_ty: None,
            attrs,
            children,
        })
    }

    /// After `impl`: header (generics, trait-for, type), then children.
    fn impl_item(&mut self, attrs: Vec<String>, _vis: Vis) -> Option<Item> {
        let line = self.peek()?.line;
        if self.peek().is_some_and(|t| t.is_punct(b'<')) {
            self.skip_generics();
        }
        // Header idents up to `{`, split on a depth-0 `for`. The last
        // depth-0 path-head ident on each side names the trait / type.
        let mut trait_side: Vec<String> = Vec::new();
        let mut type_side: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct(b'{') && angle <= 0 {
                break;
            }
            if t.is_punct(b';') {
                // `impl Trait for Type;` doesn't exist, but bail safely.
                self.pos += 1;
                return None;
            }
            match t.kind {
                TokenKind::Punct(b'<') => angle += 1,
                TokenKind::Punct(b'>') => {
                    // `->` in a fn-pointer type: the `>` is part of the
                    // arrow, not an angle close.
                    let prev = self.toks.get(self.pos.wrapping_sub(1));
                    let arrow = prev.is_some_and(|p| p.is_punct(b'-') && adjacent(p, t));
                    if !arrow {
                        angle -= 1;
                    }
                }
                TokenKind::Ident if angle <= 0 => {
                    let s = self.text(t);
                    if s == "for" {
                        saw_for = true;
                    } else if s == "where" {
                        // Type name came before the where clause.
                    } else if saw_for {
                        type_side.push(s.to_string());
                    } else {
                        trait_side.push(s.to_string());
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        let open = self.pos;
        if !self.toks.get(open).is_some_and(|t| t.is_punct(b'{')) {
            return None;
        }
        let close = self.matching_brace(open)?;
        // `impl Type` → type is the trait_side's last ident, no trait.
        let strip = |v: &[String]| -> Option<String> {
            v.iter()
                .rev()
                .find(|s| !matches!(s.as_str(), "dyn" | "mut" | "const" | "where" | "as" | "in"))
                .cloned()
        };
        let (trait_name, self_ty) = if saw_for {
            (strip(&trait_side), strip(&type_side))
        } else {
            (None, strip(&trait_side))
        };
        self.pos = open + 1;
        let mut children = self.items(close);
        for c in &mut children {
            if c.kind == ItemKind::Fn {
                c.self_ty = self_ty.clone();
                c.trait_name = trait_name.clone();
            }
        }
        let end_line = self.toks[close].line;
        self.pos = close + 1;
        Some(Item {
            kind: ItemKind::Impl,
            name: self_ty.clone().unwrap_or_default(),
            vis: Vis::Private,
            line,
            end_line,
            body: Some((open, close + 1)),
            has_self: false,
            trait_name,
            self_ty,
            attrs,
            children,
        })
    }

    /// After `trait`: name, generics, optional bounds, `{ children }`.
    fn trait_item(&mut self, attrs: Vec<String>, vis: Vis) -> Option<Item> {
        let name_tok = self.peek()?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let name = self.text(name_tok).to_string();
        let line = name_tok.line;
        self.pos += 1;
        // Scan to the body brace (bounds/generics/where in between).
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct(b'{') && angle <= 0 {
                break;
            }
            if t.is_punct(b';') {
                self.pos += 1;
                return None;
            }
            match t.kind {
                TokenKind::Punct(b'<') => angle += 1,
                TokenKind::Punct(b'>') => {
                    let prev = self.toks.get(self.pos.wrapping_sub(1));
                    if !prev.is_some_and(|p| p.is_punct(b'-') && adjacent(p, t)) {
                        angle -= 1;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        let open = self.pos;
        if !self.toks.get(open).is_some_and(|t| t.is_punct(b'{')) {
            return None;
        }
        let close = self.matching_brace(open)?;
        self.pos = open + 1;
        let mut children = self.items(close);
        for c in &mut children {
            if c.kind == ItemKind::Fn {
                c.trait_name = Some(name.clone());
            }
        }
        let end_line = self.toks[close].line;
        self.pos = close + 1;
        Some(Item {
            kind: ItemKind::Trait,
            name,
            vis,
            line,
            end_line,
            body: Some((open, close + 1)),
            has_self: false,
            trait_name: None,
            self_ty: None,
            attrs,
            children,
        })
    }

    /// Generic named item (`struct X ...`, `const X: ...`, ...): record
    /// the name, then skip to the end of the item.
    fn named_item(&mut self, kind: ItemKind, attrs: Vec<String>, vis: Vis) -> Option<Item> {
        let name_tok = self.peek()?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let name = self.text(name_tok).to_string();
        let line = name_tok.line;
        self.pos += 1;
        let (body, end_line) = self.item_tail(line)?;
        Some(Item {
            kind,
            name,
            vis,
            line,
            end_line,
            body,
            has_self: false,
            trait_name: None,
            self_ty: None,
            attrs,
            children: Vec::new(),
        })
    }

    /// `use path::to::{a, b};` — name is the whole path text.
    fn use_item(&mut self, attrs: Vec<String>, vis: Vis) -> Option<Item> {
        let line = self.peek()?.line;
        let mut parts = String::new();
        let mut end_line = line;
        while let Some(t) = self.peek() {
            end_line = t.line;
            if t.is_punct(b';') {
                self.pos += 1;
                break;
            }
            if t.is_punct(b'{') {
                self.skip_balanced(b'{', b'}', usize::MAX);
                parts.push('{');
                parts.push('}');
                continue;
            }
            parts.push_str(self.text(t));
            self.pos += 1;
        }
        Some(Item {
            kind: ItemKind::Use,
            name: parts,
            vis,
            line,
            end_line,
            body: None,
            has_self: false,
            trait_name: None,
            self_ty: None,
            attrs,
            children: Vec::new(),
        })
    }

    /// From after an item's name/params: scan to the `{` body or the
    /// terminating `;` at angle-depth 0, honoring `->` arrows. Returns
    /// the body token range (if any) and the item's last line.
    fn item_tail(&mut self, start_line: usize) -> Option<(Option<(usize, usize)>, usize)> {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t.kind {
                TokenKind::Punct(b'{') if angle <= 0 => {
                    let open = self.pos;
                    let close = self.matching_brace(open)?;
                    self.pos = close + 1;
                    // `struct X { .. }` has no trailing `;`, but
                    // `const X: T = S { .. };` does — consume it.
                    if self.peek().is_some_and(|t| t.is_punct(b';')) {
                        self.pos += 1;
                    }
                    return Some((Some((open, close + 1)), self.toks[close].line));
                }
                TokenKind::Punct(b';') if angle <= 0 => {
                    let end_line = t.line;
                    self.pos += 1;
                    return Some((None, end_line));
                }
                TokenKind::Punct(b'<') => {
                    angle += 1;
                    self.pos += 1;
                }
                TokenKind::Punct(b'>') => {
                    let prev = self.toks.get(self.pos.wrapping_sub(1));
                    if !prev.is_some_and(|p| p.is_punct(b'-') && adjacent(p, t)) {
                        angle -= 1;
                    }
                    self.pos += 1;
                }
                TokenKind::Punct(b'(') => self.skip_balanced(b'(', b')', usize::MAX),
                TokenKind::Punct(b'[') => self.skip_balanced(b'[', b']', usize::MAX),
                _ => self.pos += 1,
            }
        }
        // EOF without body or `;` (truncated input): treat as bodiless.
        Some((None, start_line))
    }

    /// Skips a `<...>` generics list (angle counting, `->`-aware).
    fn skip_generics(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t.kind {
                TokenKind::Punct(b'<') => angle += 1,
                TokenKind::Punct(b'>') => {
                    let prev = self.toks.get(self.pos.wrapping_sub(1));
                    if !prev.is_some_and(|p| p.is_punct(b'-') && adjacent(p, t)) {
                        angle -= 1;
                        if angle == 0 {
                            self.pos += 1;
                            return;
                        }
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Token index of the `}` matching the `{` at token index `open`.
    fn matching_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for (i, t) in self.toks.iter().enumerate().skip(open) {
            if t.is_punct(b'{') {
                depth += 1;
            } else if t.is_punct(b'}') {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ItemTree {
        ItemTree::parse(src)
    }

    #[test]
    fn parses_free_fn_with_span() {
        let t = parse("pub fn add(a: u32, b: u32) -> u32 {\n    a + b\n}\n");
        assert_eq!(t.items.len(), 1);
        let f = &t.items[0];
        assert_eq!(f.kind, ItemKind::Fn);
        assert_eq!(f.name, "add");
        assert_eq!(f.vis, Vis::Pub);
        assert_eq!((f.line, f.end_line), (1, 3));
        assert!(f.body.is_some());
        assert!(!f.has_self);
    }

    #[test]
    fn parses_impl_with_methods_and_self_ty() {
        let t = parse(
            "struct S;\nimpl S {\n    pub fn new() -> Self { S }\n    fn go(&mut self) {}\n}\n",
        );
        let imp = &t.items[1];
        assert_eq!(imp.kind, ItemKind::Impl);
        assert_eq!(imp.name, "S");
        assert_eq!(imp.children.len(), 2);
        assert_eq!(imp.children[0].name, "new");
        assert!(!imp.children[0].has_self);
        assert_eq!(imp.children[0].self_ty.as_deref(), Some("S"));
        assert!(imp.children[1].has_self);
    }

    #[test]
    fn trait_impl_records_trait_name() {
        let t = parse("impl Stage for PopGridStage {\n    fn run(&self) {}\n}\n");
        let imp = &t.items[0];
        assert_eq!(imp.trait_name.as_deref(), Some("Stage"));
        assert_eq!(imp.self_ty.as_deref(), Some("PopGridStage"));
        let run = &imp.children[0];
        assert_eq!(run.trait_name.as_deref(), Some("Stage"));
        assert_eq!(run.self_ty.as_deref(), Some("PopGridStage"));
    }

    #[test]
    fn generic_impl_headers_resolve_last_path_head() {
        let t = parse("impl<'a, T: Clone> Iterator for Wrapper<'a, T> {\n    fn next(&mut self) -> Option<T> { None }\n}\n");
        let imp = &t.items[0];
        assert_eq!(imp.trait_name.as_deref(), Some("Iterator"));
        assert_eq!(imp.self_ty.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn nested_mods_nest_items() {
        let t = parse(
            "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn shallow() {}\n}\n",
        );
        let outer = &t.items[0];
        assert_eq!(outer.kind, ItemKind::Mod);
        assert_eq!(outer.children.len(), 2);
        let inner = &outer.children[0];
        assert_eq!(inner.children[0].name, "deep");
        assert_eq!(outer.children[1].name, "shallow");
    }

    #[test]
    fn attrs_are_collected() {
        let t = parse("#[test]\n#[ignore]\nfn check() {}\n");
        assert_eq!(t.items[0].attrs, vec!["test", "ignore"]);
    }

    #[test]
    fn uses_capture_path() {
        let t = parse("use geotopo_geo::point::{GeoPoint, Distance};\npub use crate::x;\n");
        assert_eq!(t.items[0].kind, ItemKind::Use);
        assert!(t.items[0].name.starts_with("geotopo_geo::point::"));
        assert_eq!(t.items[1].vis, Vis::Pub);
    }

    #[test]
    fn trait_default_methods_have_bodies_decls_do_not() {
        let t = parse("trait T {\n    fn must(&self);\n    fn has(&self) -> u32 { 0 }\n}\n");
        let tr = &t.items[0];
        assert_eq!(tr.kind, ItemKind::Trait);
        assert!(tr.children[0].body.is_none());
        assert!(tr.children[1].body.is_some());
    }

    #[test]
    fn const_fn_is_a_fn_plain_const_is_const() {
        let t = parse("const LIMIT: usize = 4;\npub const fn cap() -> usize { LIMIT }\n");
        assert_eq!(t.items[0].kind, ItemKind::Const);
        assert_eq!(t.items[0].name, "LIMIT");
        assert_eq!(t.items[1].kind, ItemKind::Fn);
        assert_eq!(t.items[1].name, "cap");
    }

    #[test]
    fn fn_returning_fn_pointer_does_not_break_arrows() {
        let t = parse("fn mk() -> fn(u32) -> u32 { double }\nfn double(x: u32) -> u32 { x * 2 }\n");
        assert_eq!(t.items.len(), 2);
        assert_eq!(t.items[0].name, "mk");
        assert_eq!(t.items[1].name, "double");
    }

    #[test]
    fn where_clauses_and_angle_types_do_not_confuse_tail() {
        let t = parse(
            "fn f<T>(x: T) -> Vec<T>\nwhere\n    T: Clone + PartialOrd<T>,\n{\n    vec![x]\n}\n",
        );
        assert_eq!(t.items.len(), 1);
        assert_eq!(t.items[0].name, "f");
        assert!(t.items[0].body.is_some());
    }

    #[test]
    fn statics_types_macros_parse() {
        let t = parse("static N: u32 = 1;\ntype Alias = Vec<u32>;\nmacro_rules! m { () => {}; }\n");
        assert_eq!(t.items[0].kind, ItemKind::Static);
        assert_eq!(t.items[1].kind, ItemKind::TypeAlias);
        assert_eq!(t.items[2].kind, ItemKind::MacroDef);
        assert_eq!(t.items[2].name, "m");
    }

    #[test]
    fn walk_visits_all() {
        let t = parse("mod m {\n    impl S {\n        fn a() {}\n    }\n}\nfn b() {}\n");
        let mut names = Vec::new();
        t.walk(&mut |i| names.push(i.name.clone()));
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"b".to_string()));
    }

    #[test]
    fn garbage_does_not_hang_or_panic() {
        let t = parse("!!! ]]] }}} fn ok() {} ((( {{{");
        assert!(t.items.iter().any(|i| i.name == "ok"));
    }
}
