//! GT-LINT-010: ad-hoc `Instant::now()` only inside `core::telemetry`.
//!
//! GT-LINT-002 bans wall-clock reads outright but can be waived site by
//! site with `// lint: allow(wall_clock)` — which is how scattered
//! hand-rolled timing crept into the scheduler before the telemetry
//! subsystem existed. Timing now has one sanctioned home:
//! `geotopo-core::telemetry::Stopwatch`, whose elapsed values feed
//! reports and span metrics and are masked out of every determinism
//! comparison. This rule closes the waiver loophole: `Instant::now()`
//! outside the telemetry module needs its own `// lint: allow(timing)`
//! marker even if a `wall_clock` waiver is already present, so every
//! bypass of the Stopwatch is a deliberate, visible decision.

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct InstantTiming;

const NEEDLE: &str = "Instant::now(";

/// Harness crates measure their own elapsed time and never feed
/// pipeline output.
const EXEMPT_CRATES: &[&str] = &["geotopo-bench", "xtask"];

impl Rule for InstantTiming {
    fn id(&self) -> &'static str {
        "GT-LINT-010"
    }

    fn describe(&self) -> &'static str {
        "Instant::now() only inside geotopo-core's telemetry module"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            if EXEMPT_CRATES.contains(&krate.name.as_str()) {
                continue;
            }
            for file in &krate.files {
                // The module file itself or anything under a submodule
                // directory of the same name (Path::starts_with matches
                // whole components only, so test the file explicitly).
                if file.path == std::path::Path::new("crates/core/src/telemetry.rs")
                    || file.path.starts_with("crates/core/src/telemetry")
                {
                    continue;
                }
                for (line, text) in file.code_lines() {
                    if text.contains(NEEDLE) && !file.is_allowed(line, "timing") {
                        out.push(Finding {
                            file: file.path.clone(),
                            line,
                            rule: self.id(),
                            message: "ad-hoc `Instant::now`; time through \
                                      `geotopo_core::telemetry::Stopwatch` (or \
                                      `// lint: allow(timing)`)"
                                .to_string(),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_ad_hoc_instant() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/engine/scheduler.rs",
                "fn f() { let t = std::time::Instant::now(); }\n",
            )],
        );
        let f = InstantTiming.check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "GT-LINT-010");
    }

    #[test]
    fn wall_clock_waiver_alone_is_not_enough() {
        // The GT-LINT-002 marker does not satisfy this rule: routing
        // around the Stopwatch needs its own explicit waiver.
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/report.rs",
                "// lint: allow(wall_clock): legacy timing\n\
                 fn f() { let t = std::time::Instant::now(); }\n",
            )],
        );
        assert_eq!(InstantTiming.check(&ws).len(), 1);
    }

    #[test]
    fn telemetry_module_is_exempt() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/telemetry.rs",
                "fn f() { let t = std::time::Instant::now(); }\n",
            )],
        );
        assert!(InstantTiming.check(&ws).is_empty());
    }

    #[test]
    fn bench_crate_is_exempt() {
        let ws = ws_of(
            "geotopo-bench",
            &[(
                "crates/x/src/lib.rs",
                "fn f() { let t = Instant::now(); }\n",
            )],
        );
        assert!(InstantTiming.check(&ws).is_empty());
    }

    #[test]
    fn timing_marker_allows_site() {
        let ws = ws_of(
            "geotopo-geo",
            &[(
                "crates/x/src/lib.rs",
                "// lint: allow(timing): harness-only stopwatch\n\
                 fn f() { let t = std::time::Instant::now(); }\n",
            )],
        );
        assert!(InstantTiming.check(&ws).is_empty());
    }
}
