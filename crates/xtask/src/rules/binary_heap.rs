//! GT-LINT-011: `BinaryHeap` only in the routing reference solver.
//!
//! The measurement hot path replaced its heap-based Dijkstra with a
//! bucket queue (Dial's algorithm — there are only two edge weights),
//! and the engine's ready queues with ordered sets. The one sanctioned
//! `BinaryHeap` left in the workspace is the reference solver
//! (`crates/measure/src/routing/reference.rs`) that the property suite
//! differential-tests the bucket queue against. Any other use is either
//! a perf regression waiting to happen or a second source of settle
//! order — both banned.

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct BinaryHeapUse;

const NEEDLES: &[&str] = &["BinaryHeap"];

/// Harnesses may use whatever structures they like; they never feed
/// pipeline output.
const EXEMPT_CRATES: &[&str] = &["geotopo-bench", "xtask"];

/// The differential-testing baseline keeps the textbook heap solver.
const REFERENCE_PATH: &str = "crates/measure/src/routing/reference.rs";

impl Rule for BinaryHeapUse {
    fn id(&self) -> &'static str {
        "GT-LINT-011"
    }

    fn describe(&self) -> &'static str {
        "no std BinaryHeap outside the routing reference solver"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            if EXEMPT_CRATES.contains(&krate.name.as_str()) {
                continue;
            }
            for file in &krate.files {
                if file.path.ends_with(REFERENCE_PATH) {
                    continue;
                }
                for (line, text) in file.code_lines() {
                    for needle in NEEDLES {
                        if text.contains(needle) && !file.is_allowed(line, "binary_heap") {
                            out.push(Finding {
                                file: file.path.clone(),
                                line,
                                rule: self.id(),
                                message: format!(
                                    "`{needle}` outside the routing reference solver; use \
                                     the bucket queue (hot path) or an ordered set (cold \
                                     path), or `// lint: allow(binary_heap)` with a reason"
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_binary_heap_use() {
        let ws = ws_of(
            "geotopo-measure",
            &[(
                "crates/measure/src/routing/mod.rs",
                "use std::collections::BinaryHeap;\n",
            )],
        );
        let f = BinaryHeapUse.check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "GT-LINT-011");
    }

    #[test]
    fn reference_solver_is_exempt() {
        let ws = ws_of(
            "geotopo-measure",
            &[(
                "crates/measure/src/routing/reference.rs",
                "use std::collections::BinaryHeap;\nfn f() { let _: BinaryHeap<u32> = BinaryHeap::new(); }\n",
            )],
        );
        assert!(BinaryHeapUse.check(&ws).is_empty());
    }

    #[test]
    fn bench_crate_is_exempt() {
        let ws = ws_of(
            "geotopo-bench",
            &[(
                "crates/bench/src/lib.rs",
                "use std::collections::BinaryHeap;\n",
            )],
        );
        assert!(BinaryHeapUse.check(&ws).is_empty());
    }

    #[test]
    fn marker_allows_site() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/engine/scheduler.rs",
                "// lint: allow(binary_heap): migration shim\nuse std::collections::BinaryHeap;\n",
            )],
        );
        assert!(BinaryHeapUse.check(&ws).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_trip() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/engine/scheduler.rs",
                "// the old BinaryHeap is gone\nfn f() {}\n",
            )],
        );
        assert!(BinaryHeapUse.check(&ws).is_empty());
    }
}
