//! GT-LINT-008: thread creation only inside the engine's scheduler.
//!
//! The stage-graph engine (`geotopo-core::engine`) is the single
//! concurrency point of the pipeline: it guarantees byte-identical
//! output at any worker count because stages only communicate through
//! the artifact graph. Ad-hoc `std::thread::spawn`/`thread::scope`
//! elsewhere would reintroduce scheduling-dependent behaviour with none
//! of those guarantees, so raw thread creation outside the engine (and
//! the bench/xtask harnesses) is banned.

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct ThreadSpawn;

const NEEDLES: &[&str] = &["thread::spawn(", "thread::scope(", "thread::Builder::new("];

/// Harnesses may run their own workers; they never feed pipeline output.
const EXEMPT_CRATES: &[&str] = &["geotopo-bench", "xtask"];

impl Rule for ThreadSpawn {
    fn id(&self) -> &'static str {
        "GT-LINT-008"
    }

    fn describe(&self) -> &'static str {
        "no raw thread creation outside geotopo-core's engine"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            if EXEMPT_CRATES.contains(&krate.name.as_str()) {
                continue;
            }
            for file in &krate.files {
                if file.path.starts_with("crates/core/src/engine") {
                    continue;
                }
                for (line, text) in file.code_lines() {
                    for needle in NEEDLES {
                        if text.contains(needle) && !file.is_allowed(line, "thread") {
                            out.push(Finding {
                                file: file.path.clone(),
                                line,
                                rule: self.id(),
                                message: format!(
                                    "`{}` bypasses the stage-graph scheduler; route \
                                     concurrency through geotopo-core's engine (or \
                                     `// lint: allow(thread)`)",
                                    needle.trim_end_matches('(')
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_thread_spawn() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/pipeline.rs",
                "fn f() { std::thread::spawn(|| {}); }\n",
            )],
        );
        let f = ThreadSpawn.check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "GT-LINT-008");
    }

    #[test]
    fn engine_module_is_exempt() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/engine/scheduler.rs",
                "fn f() { std::thread::scope(|s| { let _ = s; }); }\n",
            )],
        );
        assert!(ThreadSpawn.check(&ws).is_empty());
    }

    #[test]
    fn bench_crate_is_exempt() {
        let ws = ws_of(
            "geotopo-bench",
            &[(
                "crates/x/src/lib.rs",
                "fn f() { std::thread::spawn(|| {}); }\n",
            )],
        );
        assert!(ThreadSpawn.check(&ws).is_empty());
    }

    #[test]
    fn marker_allows_site() {
        let ws = ws_of(
            "geotopo-geo",
            &[(
                "crates/x/src/lib.rs",
                "// lint: allow(thread): test harness\nfn f() { std::thread::spawn(|| {}); }\n",
            )],
        );
        assert!(ThreadSpawn.check(&ws).is_empty());
    }
}
