//! GT-LINT-006: crate dependency edges must respect the sanctioned
//! layering.
//!
//! The workspace is a strict DAG of layers; a crate may depend only on
//! geotopo crates in *strictly lower* layers. This keeps the substrate
//! (geo/stats/bgp) reusable and stops experiment plumbing from leaking
//! downward. The table itself lives in [`crate::layers`], shared with
//! GT-AN-003 which recomputes the same constraint from the real
//! `use`-graph in source (this rule checks the *declared* manifest
//! edges; the analyzer checks the *actual* import edges).
//!
//! `xtask` sits outside the pipeline entirely and may depend on no
//! geotopo crate (it must stay buildable even when the pipeline is
//! broken — that is the point of a lint runner). Dev-dependencies are
//! exempt: tests may reach anywhere.
//!
//! Findings point at the offending `Cargo.toml` line. There is no allow
//! marker for this rule — a new edge means the layer table (and
//! `DESIGN.md`) must be updated deliberately.

use super::{Finding, Rule};
use crate::layers::layer_of;
use crate::workspace::{geotopo_dependencies, WorkspaceSrc};

/// See module docs.
#[derive(Debug)]
pub struct Layering;

impl Rule for Layering {
    fn id(&self) -> &'static str {
        "GT-LINT-006"
    }

    fn describe(&self) -> &'static str {
        "crate dependencies must point strictly down the sanctioned layer DAG"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            let deps = geotopo_dependencies(&krate.manifest);
            if krate.name == "xtask" {
                for (line, dep) in deps {
                    out.push(Finding {
                        file: krate.manifest_path.clone(),
                        line,
                        rule: self.id(),
                        message: format!(
                            "xtask depends on `{dep}`; the lint runner must have no geotopo \
                             dependencies so it builds even when the pipeline is broken"
                        ),
                    });
                }
                continue;
            }
            let Some(layer) = layer_of(&krate.name) else {
                // Unknown crate: every geotopo edge is unsanctioned until
                // the crate is added to the layer map.
                for (line, dep) in deps {
                    out.push(Finding {
                        file: krate.manifest_path.clone(),
                        line,
                        rule: self.id(),
                        message: format!(
                            "crate `{}` is not in the sanctioned layer map but depends on \
                             `{dep}`; add it to the map in xtask's layering rule and DESIGN.md",
                            krate.name
                        ),
                    });
                }
                continue;
            };
            for (line, dep) in deps {
                let dep_layer = layer_of(&dep).unwrap_or(u32::MAX);
                if dep_layer >= layer {
                    out.push(Finding {
                        file: krate.manifest_path.clone(),
                        line,
                        rule: self.id(),
                        message: format!(
                            "`{}` (layer {layer}) may not depend on `{dep}` (layer \
                             {dep_layer}); edges must point strictly down the DAG",
                            krate.name
                        ),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::{CrateSrc, WorkspaceSrc};
    use std::path::PathBuf;

    fn crate_with_manifest(name: &str, manifest: &str) -> CrateSrc {
        CrateSrc {
            name: name.to_string(),
            dir: PathBuf::from(format!("crates/{name}")),
            manifest: manifest.to_string(),
            manifest_path: PathBuf::from(format!("crates/{name}/Cargo.toml")),
            files: Vec::<SourceFile>::new(),
            ref_files: Vec::new(),
        }
    }

    #[test]
    fn downward_edges_pass() {
        let m = "[package]\nname = \"geotopo-topology\"\n[dependencies]\ngeotopo-geo.workspace = true\ngeotopo-population.workspace = true\n";
        let ws = WorkspaceSrc {
            crates: vec![crate_with_manifest("geotopo-topology", m)],
        };
        assert!(Layering.check(&ws).is_empty());
    }

    #[test]
    fn upward_edge_flagged_at_manifest_line() {
        let m =
            "[package]\nname = \"geotopo-geo\"\n[dependencies]\ngeotopo-core.workspace = true\n";
        let ws = WorkspaceSrc {
            crates: vec![crate_with_manifest("geotopo-geo", m)],
        };
        let f = Layering.check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "GT-LINT-006");
        assert_eq!(f[0].line, 4);
        assert!(f[0].file.ends_with("Cargo.toml"));
    }

    #[test]
    fn same_layer_edge_flagged() {
        let m = "[package]\nname = \"geotopo-geomap\"\n[dependencies]\ngeotopo-topology.workspace = true\n";
        let ws = WorkspaceSrc {
            crates: vec![crate_with_manifest("geotopo-geomap", m)],
        };
        assert_eq!(Layering.check(&ws).len(), 1);
    }

    #[test]
    fn xtask_must_stay_dependency_free() {
        let m = "[package]\nname = \"xtask\"\n[dependencies]\ngeotopo-geo.workspace = true\n";
        let ws = WorkspaceSrc {
            crates: vec![crate_with_manifest("xtask", m)],
        };
        let f = Layering.check(&ws);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("lint runner"));
    }

    #[test]
    fn dev_dependencies_exempt_and_unknown_crate_flagged() {
        let dev = "[package]\nname = \"geotopo-geo\"\n[dev-dependencies]\ngeotopo-core.workspace = true\n";
        let unknown = "[package]\nname = \"geotopo-newcrate\"\n[dependencies]\ngeotopo-geo.workspace = true\n";
        let ws = WorkspaceSrc {
            crates: vec![
                crate_with_manifest("geotopo-geo", dev),
                crate_with_manifest("geotopo-newcrate", unknown),
            ],
        };
        let f = Layering.check(&ws);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not in the sanctioned layer map"));
    }
}
