//! GT-LINT-002: no wall-clock reads in library code.
//!
//! `SystemTime::now()` / `Instant::now()` make output depend on when the
//! pipeline ran. Reports must be byte-identical across runs of the same
//! seed (the determinism regression test asserts exactly that), so
//! nothing in the library crates may observe time. Benchmarks are the one
//! sanctioned consumer and `geotopo-bench` is exempt.

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct WallClock;

const NEEDLES: &[&str] = &["SystemTime::now(", "Instant::now(", "UNIX_EPOCH"];

/// Benchmarks legitimately measure elapsed time.
const EXEMPT_CRATES: &[&str] = &["geotopo-bench", "xtask"];

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "GT-LINT-002"
    }

    fn describe(&self) -> &'static str {
        "no wall-clock reads (SystemTime/Instant) in library code"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            if EXEMPT_CRATES.contains(&krate.name.as_str()) {
                continue;
            }
            for file in &krate.files {
                for (line, text) in file.code_lines() {
                    for needle in NEEDLES {
                        if text.contains(needle) && !file.is_allowed(line, "wall_clock") {
                            out.push(Finding {
                                file: file.path.clone(),
                                line,
                                rule: self.id(),
                                message: format!(
                                    "`{}` makes output time-dependent; library code must be \
                                     deterministic (or `// lint: allow(wall_clock)`)",
                                    needle.trim_end_matches('(')
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_instant_now() {
        let ws = ws_of(
            "geotopo-measure",
            &[(
                "crates/x/src/lib.rs",
                "fn f() { let t = std::time::Instant::now(); }\n",
            )],
        );
        let f = WallClock.check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "GT-LINT-002");
    }

    #[test]
    fn bench_crate_is_exempt() {
        let ws = ws_of(
            "geotopo-bench",
            &[(
                "crates/x/src/lib.rs",
                "fn f() { let t = Instant::now(); }\n",
            )],
        );
        assert!(WallClock.check(&ws).is_empty());
    }

    #[test]
    fn string_mention_is_not_flagged() {
        let ws = ws_of(
            "geotopo-geo",
            &[(
                "crates/x/src/lib.rs",
                "const MSG: &str = \"Instant::now() banned\";\n",
            )],
        );
        assert!(WallClock.check(&ws).is_empty());
    }
}
