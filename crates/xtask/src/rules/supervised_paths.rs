//! GT-LINT-009: no `unwrap()`/`expect()` on supervised execution paths.
//!
//! The engine's supervision contract is that stage failures become typed
//! `StageError`s, get retried per policy, and degrade gracefully to a
//! monitor quorum — never abort the process. That contract is only as
//! strong as its weakest call site: a panic inside the scheduler, the
//! artifact store, or a collector tears down every in-flight stage and
//! loses the run (and with it the resume checkpoint being written).
//!
//! Code under `crates/core/src/engine` and `crates/measure/src` must
//! therefore return `Result`, use a non-panicking combinator, or carry
//! the same `// lint: allow(unwrap): <why>` marker as GT-LINT-003 (one
//! marker waives both rules at the site). Unlike GT-LINT-003 this rule
//! is *path*-scoped, not crate-scoped: it reaches into `geotopo-core`,
//! which the crate-level rule deliberately leaves free to assert its own
//! experiment plumbing — but the engine submodule is the supervision
//! substrate itself and gets no such latitude.

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct SupervisedPaths;

/// Workspace-relative path prefixes on the supervised execution path.
const SCOPED_PATHS: &[&str] = &["crates/core/src/engine", "crates/measure/src"];

impl Rule for SupervisedPaths {
    fn id(&self) -> &'static str {
        "GT-LINT-009"
    }

    fn describe(&self) -> &'static str {
        "no unwrap()/expect() on supervised execution paths (core engine, measure)"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            for file in &krate.files {
                if !SCOPED_PATHS.iter().any(|p| file.path.starts_with(p)) {
                    continue;
                }
                for (line, text) in file.code_lines() {
                    let hit = if text.contains(".unwrap()") {
                        Some("unwrap()")
                    } else if text.contains(".expect(") {
                        Some("expect(..)")
                    } else {
                        None
                    };
                    if let Some(what) = hit {
                        if !file.is_allowed(line, "unwrap") {
                            out.push(Finding {
                                file: file.path.clone(),
                                line,
                                rule: self.id(),
                                message: format!(
                                    "`.{what}` aborts a supervised stage instead of \
                                     surfacing a StageError; return a Result or justify \
                                     with `// lint: allow(unwrap): <invariant>`"
                                ),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_unwrap_and_expect_under_engine_path() {
        let src = "fn f() {\n    let a = x.unwrap();\n    let b = y.expect(\"set\");\n}\n";
        let ws = ws_of(
            "geotopo-core",
            &[("crates/core/src/engine/scheduler.rs", src)],
        );
        let f = SupervisedPaths.check(&ws);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].line, f[1].line), (2, 3));
        assert!(f.iter().all(|x| x.rule == "GT-LINT-009"));
    }

    #[test]
    fn flags_measure_sources_regardless_of_crate_name() {
        let src = "fn f() { let a = x.unwrap(); }\n";
        let ws = ws_of("geotopo-measure", &[("crates/measure/src/faults.rs", src)]);
        assert_eq!(SupervisedPaths.check(&ws).len(), 1);
    }

    #[test]
    fn core_outside_engine_is_out_of_scope() {
        let src = "fn f() { let a = x.unwrap(); }\n";
        let ws = ws_of("geotopo-core", &[("crates/core/src/pipeline.rs", src)]);
        assert!(SupervisedPaths.check(&ws).is_empty());
    }

    #[test]
    fn allow_marker_with_justification_waives() {
        let src = "fn f() {\n    // lint: allow(unwrap): lock poisoning recovered via into_inner\n    let a = x.unwrap();\n}\n";
        let ws = ws_of("geotopo-core", &[("crates/core/src/engine/store.rs", src)]);
        assert!(SupervisedPaths.check(&ws).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let ws = ws_of("geotopo-core", &[("crates/core/src/engine/store.rs", src)]);
        assert!(SupervisedPaths.check(&ws).is_empty());
    }

    #[test]
    fn non_panicking_combinators_are_fine() {
        let src = "fn f() { let a = x.unwrap_or(0); let b = y.unwrap_or_else(|| 1); }\n";
        let ws = ws_of(
            "geotopo-core",
            &[("crates/core/src/engine/scheduler.rs", src)],
        );
        assert!(SupervisedPaths.check(&ws).is_empty());
    }
}
