//! GT-LINT-005: every public struct/enum in the substrate crates must be
//! debuggable.
//!
//! The invariant validators and experiment assertions all report failures
//! by formatting the offending structure; a `pub` type without `Debug`
//! forces call sites into lossy hand-rolled messages. The rule scans the
//! substrate crates for `pub struct` / `pub enum` items and requires
//! either `#[derive(.. Debug ..)]` on the item or a manual
//! `impl fmt::Debug for Type` anywhere in the same crate.
//!
//! Types that intentionally hide their contents (e.g. a huge grid whose
//! element dump would be unusable) implement a summarising `Debug` by
//! hand — which this rule accepts — or carry
//! `// lint: allow(missing_debug): <why>`.

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct MissingDebug;

/// Substrate crates whose public API the rule covers.
const SCOPED_CRATES: &[&str] = &[
    "geotopo-geo",
    "geotopo-stats",
    "geotopo-bgp",
    "geotopo-population",
    "geotopo-topology",
    "geotopo-geomap",
    "geotopo-measure",
];

impl Rule for MissingDebug {
    fn id(&self) -> &'static str {
        "GT-LINT-005"
    }

    fn describe(&self) -> &'static str {
        "pub structs/enums in substrate crates must implement Debug"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            if !SCOPED_CRATES.contains(&krate.name.as_str()) {
                continue;
            }
            // Pass 1: names with a manual `impl Debug` anywhere in the crate.
            let mut manual: Vec<String> = Vec::new();
            for file in &krate.files {
                for (_, text) in file.code_lines() {
                    if let Some(name) = manual_debug_impl_target(text) {
                        manual.push(name);
                    }
                }
            }
            // Pass 2: pub type declarations lacking both derive and manual impl.
            for file in &krate.files {
                let lines: Vec<&str> = file.masked.lines().collect();
                let derived = debug_derived_decl_lines(&lines);
                for (idx, text) in lines.iter().enumerate() {
                    let line = idx + 1;
                    if file.is_test_line(line) {
                        continue;
                    }
                    let Some((kind, name)) = pub_type_decl(text) else {
                        continue;
                    };
                    if derived.contains(&idx)
                        || manual.iter().any(|m| m == &name)
                        || file.is_allowed(line, "missing_debug")
                    {
                        continue;
                    }
                    out.push(Finding {
                        file: file.path.clone(),
                        line,
                        rule: self.id(),
                        message: format!(
                            "pub {kind} `{name}` has no Debug impl; derive it, write a \
                             summarising impl, or `// lint: allow(missing_debug): <why>`"
                        ),
                    });
                }
            }
        }
        out
    }
}

/// If `text` declares a public struct or enum, returns `(kind, name)`.
/// `pub(crate)` / `pub(super)` types are not external API and are skipped.
fn pub_type_decl(text: &str) -> Option<(&'static str, String)> {
    let t = text.trim_start();
    let (kind, rest) = t
        .strip_prefix("pub struct ")
        .map(|r| ("struct", r))
        .or_else(|| t.strip_prefix("pub enum ").map(|r| ("enum", r)))?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    Some((kind, name))
}

/// Line indices (0-based) of type declarations covered by a
/// `#[derive(.. Debug ..)]` attribute. Forward scan: bracket-match each
/// derive attribute (which may span lines), then skip any further
/// attributes / doc comments / blanks to find the item it decorates.
fn debug_derived_decl_lines(lines: &[&str]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim_start();
        if !t.starts_with("#[derive") {
            i += 1;
            continue;
        }
        let end = attr_end(lines, i);
        let attr_text: String = lines[i..=end].join("\n");
        let has_debug = word_debug(&attr_text);
        // Skip trailing attributes, doc comments and blank lines down to
        // the decorated item.
        let mut k = end + 1;
        while k < lines.len() {
            let s = lines[k].trim_start();
            if s.starts_with("#[") {
                k = attr_end(lines, k) + 1;
            } else if s.starts_with("//") || s.is_empty() {
                k += 1;
            } else {
                break;
            }
        }
        if has_debug && k < lines.len() {
            out.push(k);
        }
        i = end + 1;
    }
    out
}

/// Index of the line on which the attribute starting at `lines[start]`
/// closes (bracket balance of `[`/`]` returns to zero).
fn attr_end(lines: &[&str], start: usize) -> usize {
    let mut depth = 0i32;
    for (off, l) in lines[start..].iter().enumerate() {
        for b in l.bytes() {
            match b {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        return start + off;
                    }
                }
                _ => {}
            }
        }
    }
    lines.len() - 1
}

/// Whether `t` contains `Debug` as a standalone word (not `DebugFoo`).
fn word_debug(t: &str) -> bool {
    let b = t.as_bytes();
    let mut start = 0;
    while let Some(pos) = t[start..].find("Debug") {
        let at = start + pos;
        let before_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let after = at + "Debug".len();
        let after_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// If `text` is a manual Debug impl header, returns the target type name.
/// Matches `impl Debug for X`, `impl fmt::Debug for X`,
/// `impl std::fmt::Debug for X`, with optional generic parameters.
fn manual_debug_impl_target(text: &str) -> Option<String> {
    let t = text.trim_start();
    if !t.starts_with("impl") {
        return None;
    }
    let for_pos = t.find(" for ")?;
    let head = &t[..for_pos];
    if !word_debug(head) {
        return None;
    }
    let after = &t[for_pos + " for ".len()..];
    let name: String = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_pub_struct_without_debug() {
        let src = "pub struct Grid {\n    cells: Vec<f64>,\n}\n";
        let ws = ws_of("geotopo-population", &[("crates/x/src/lib.rs", src)]);
        let f = MissingDebug.check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "GT-LINT-005");
        assert!(f[0].message.contains("`Grid`"));
    }

    #[test]
    fn derive_debug_passes() {
        let src = "#[derive(Debug, Clone)]\npub struct Grid {\n    cells: Vec<f64>,\n}\n";
        let ws = ws_of("geotopo-population", &[("crates/x/src/lib.rs", src)]);
        assert!(MissingDebug.check(&ws).is_empty());
    }

    #[test]
    fn multiline_derive_passes() {
        let src = "#[derive(\n    Clone,\n    Debug,\n)]\npub enum Kind {\n    A,\n}\n";
        let ws = ws_of("geotopo-geo", &[("crates/x/src/lib.rs", src)]);
        assert!(MissingDebug.check(&ws).is_empty());
    }

    #[test]
    fn derive_then_other_attr_passes() {
        let src = "#[derive(Debug)]\n#[repr(C)]\npub struct P(f64);\n";
        let ws = ws_of("geotopo-geo", &[("crates/x/src/lib.rs", src)]);
        assert!(MissingDebug.check(&ws).is_empty());
    }

    #[test]
    fn manual_impl_in_other_file_passes() {
        let decl = "pub struct Huge {\n    data: Vec<u8>,\n}\n";
        let imp = "use std::fmt;\nimpl fmt::Debug for Huge {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n}\n";
        let ws = ws_of(
            "geotopo-topology",
            &[("crates/x/src/a.rs", decl), ("crates/x/src/b.rs", imp)],
        );
        assert!(MissingDebug.check(&ws).is_empty());
    }

    #[test]
    fn private_and_pub_crate_types_ignored() {
        let src = "struct Inner;\npub(crate) struct Half;\n";
        let ws = ws_of("geotopo-geo", &[("crates/x/src/lib.rs", src)]);
        assert!(MissingDebug.check(&ws).is_empty());
    }

    #[test]
    fn allow_marker_waives() {
        let src = "// lint: allow(missing_debug): opaque handle\npub struct Handle(u64);\n";
        let ws = ws_of("geotopo-bgp", &[("crates/x/src/lib.rs", src)]);
        assert!(MissingDebug.check(&ws).is_empty());
    }

    #[test]
    fn derive_without_debug_still_flagged() {
        let src = "#[derive(Clone, PartialEq)]\npub struct P(f64);\n";
        let ws = ws_of("geotopo-geo", &[("crates/x/src/lib.rs", src)]);
        assert_eq!(MissingDebug.check(&ws).len(), 1);
    }

    #[test]
    fn debugfoo_derive_does_not_count() {
        let src = "#[derive(Clone, DebugStub)]\npub struct P(f64);\n";
        let ws = ws_of("geotopo-geo", &[("crates/x/src/lib.rs", src)]);
        assert_eq!(MissingDebug.check(&ws).len(), 1);
    }
}
