//! GT-LINT-012: raw filesystem mutation only inside the Vfs seam.
//!
//! Crash consistency is a property of *one* code path: `io.rs` writes
//! every cache entry through the versioned envelope (temp file → fsync →
//! rename) and `vfs.rs` is the only module allowed to touch `std::fs`
//! mutation primitives, so the chaos harness can interpose deterministic
//! disk faults on every write the pipeline performs. A raw
//! `std::fs::write`, `File::create`, or `fs::rename` anywhere else is a
//! hole in that seam — a write the fault injector never sees and the
//! recovery sweep never cleans up. This rule keeps the seam closed:
//! mutations outside `io.rs`/`vfs.rs` need `// lint: allow(raw_fs)` with
//! the reason the site can bypass the durable path (e.g. gnuplot's
//! terminal, regenerable figure exports).

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct RawFs;

/// Mutation primitives that must stay behind the [`Vfs`] seam. Reads are
/// deliberately not listed: a stray read can't tear pipeline state, and
/// the chaos harness injects read faults at the seam the cache actually
/// uses.
const NEEDLES: &[&str] = &["std::fs::write(", "File::create(", "fs::rename("];

/// Harness crates own their output files and never write pipeline state.
const EXEMPT_CRATES: &[&str] = &["geotopo-bench", "xtask"];

/// The two sanctioned homes: the envelope writer and the seam itself.
const EXEMPT_PATHS: &[&str] = &["crates/core/src/io.rs", "crates/core/src/vfs.rs"];

impl Rule for RawFs {
    fn id(&self) -> &'static str {
        "GT-LINT-012"
    }

    fn describe(&self) -> &'static str {
        "filesystem mutation only through the Vfs seam (io.rs / vfs.rs)"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            if EXEMPT_CRATES.contains(&krate.name.as_str()) {
                continue;
            }
            for file in &krate.files {
                if EXEMPT_PATHS
                    .iter()
                    .any(|p| file.path == std::path::Path::new(p))
                {
                    continue;
                }
                for (line, text) in file.code_lines() {
                    let hit = NEEDLES.iter().find(|n| text.contains(*n));
                    if let Some(needle) = hit {
                        if !file.is_allowed(line, "raw_fs") {
                            out.push(Finding {
                                file: file.path.clone(),
                                line,
                                rule: self.id(),
                                message: format!(
                                    "raw `{}` bypasses the Vfs seam; route the write \
                                     through `vfs.rs`/`io.rs` so chaos injection and \
                                     crash recovery cover it (or `// lint: allow(raw_fs)` \
                                     with the reason)",
                                    needle.trim_end_matches('(')
                                ),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_raw_write_create_rename() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/engine/store.rs",
                "fn a() { std::fs::write(p, b).unwrap(); }\n\
                 fn b() { let f = std::fs::File::create(p); }\n\
                 fn c() { std::fs::rename(a, b).unwrap(); }\n",
            )],
        );
        let f = RawFs.check(&ws);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.rule == "GT-LINT-012"));
    }

    #[test]
    fn io_and_vfs_are_the_sanctioned_homes() {
        let ws = ws_of(
            "geotopo-core",
            &[
                (
                    "crates/core/src/io.rs",
                    "fn w() { std::fs::rename(a, b).unwrap(); }\n",
                ),
                (
                    "crates/core/src/vfs.rs",
                    "fn w() { let f = std::fs::File::create(p); }\n",
                ),
            ],
        );
        assert!(RawFs.check(&ws).is_empty());
    }

    #[test]
    fn allow_marker_waives_site() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/gnuplot.rs",
                "// lint: allow(raw_fs): terminal figure export\n\
                 fn w() { let f = std::fs::File::create(p); }\n",
            )],
        );
        assert!(RawFs.check(&ws).is_empty());
    }

    #[test]
    fn harness_crates_are_exempt() {
        let ws = ws_of(
            "xtask",
            &[(
                "crates/x/src/lib.rs",
                "fn w() { std::fs::write(p, b).unwrap(); }\n",
            )],
        );
        assert!(RawFs.check(&ws).is_empty());
    }

    #[test]
    fn reads_stay_legal() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/report.rs",
                "fn r() { let s = std::fs::read_to_string(p); }\n",
            )],
        );
        assert!(RawFs.check(&ws).is_empty());
    }
}
