//! GT-LINT-004: no bare float equality in numeric kernels.
//!
//! In `geotopo-stats` and `geotopo-geo` — the crates whose arithmetic
//! everything else builds on — `x == y` between floats is almost always a
//! latent bug (rounding turns it into a coin flip). Comparisons should go
//! through an epsilon helper or an explicit total order. The rule flags
//! `==`/`!=` where an operand is visibly a float: a float literal
//! (`1.0`), an `f64::`/`f32::` associated constant, or a `as f64` cast.
//!
//! Deliberate exact comparisons (e.g. checking a value survived a
//! round-trip unchanged, or sentinel equality) carry
//! `// lint: allow(float_eq): <why>`.

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct FloatEq;

const SCOPED_CRATES: &[&str] = &["geotopo-stats", "geotopo-geo"];

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "GT-LINT-004"
    }

    fn describe(&self) -> &'static str {
        "no bare f64/f32 == comparisons in stats/geo library code"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            if !SCOPED_CRATES.contains(&krate.name.as_str()) {
                continue;
            }
            for file in &krate.files {
                for (line, text) in file.code_lines() {
                    if has_float_eq(text) && !file.is_allowed(line, "float_eq") {
                        out.push(Finding {
                            file: file.path.clone(),
                            line,
                            rule: self.id(),
                            message: "bare float equality; compare with an epsilon or justify \
                                      with `// lint: allow(float_eq): <why>`"
                                .to_string(),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Whether a masked code line compares a visibly-float operand with
/// `==`/`!=`.
fn has_float_eq(line: &str) -> bool {
    let bytes = line.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        let op = &bytes[i..i + 2];
        if op != b"==" && op != b"!=" {
            continue;
        }
        // Exclude `<=`, `>=`, `===`-like runs and pattern `=>`.
        if i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!') {
            continue;
        }
        if bytes.get(i + 2) == Some(&b'=') {
            continue;
        }
        let left = &line[..i];
        let right = &line[i + 2..];
        if operand_is_float(left, true) || operand_is_float(right, false) {
            return true;
        }
    }
    false
}

/// Whether the operand text adjacent to the comparison looks like a
/// float: a float literal, an `fXX::` constant, or an `as fXX` cast.
/// `before` selects which side of the operator `text` sits on.
fn operand_is_float(text: &str, before: bool) -> bool {
    let operand = if before {
        // Take the trailing expression fragment.
        let stop = text
            .rfind([';', '{', '(', ',', '&', '|'])
            .map(|p| p + 1)
            .unwrap_or(0);
        &text[stop..]
    } else {
        let stop = text
            .find([';', '{', ')', ',', '&', '|'])
            .unwrap_or(text.len());
        &text[..stop]
    };
    if operand.contains("f64::")
        || operand.contains("f32::")
        || operand.contains("as f64")
        || operand.contains("as f32")
    {
        return true;
    }
    has_float_literal(operand)
}

/// Whether `s` contains a float literal (`1.0`, `2.`, `1e-3`, `3f64`).
fn has_float_literal(s: &str) -> bool {
    let b = s.as_bytes();
    for i in 0..b.len() {
        if !b[i].is_ascii_digit() {
            continue;
        }
        // Start of a number? (previous char must not be ident-ish)
        if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_' || b[i - 1] == b'.') {
            continue;
        }
        let mut j = i;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
        // `1.` or `1.5` (but not `1..` range or method call `1.max(..)`)
        if j < b.len() && b[j] == b'.' {
            let next = b.get(j + 1);
            if next.is_none_or(|&c| c.is_ascii_digit()) {
                return true;
            }
            continue;
        }
        // `1e-3` / `2E5` exponent form.
        if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
            let mut k = j + 1;
            if matches!(b.get(k), Some(&b'+') | Some(&b'-')) {
                k += 1;
            }
            if b.get(k).is_some_and(|c| c.is_ascii_digit()) {
                return true;
            }
        }
        // `3f64` suffix form.
        if s[j..].starts_with("f64") || s[j..].starts_with("f32") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_literal_comparison() {
        let ws = ws_of(
            "geotopo-stats",
            &[("crates/x/src/lib.rs", "fn f(x: f64) -> bool { x == 0.0 }\n")],
        );
        let f = FloatEq.check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "GT-LINT-004");
    }

    #[test]
    fn flags_constant_and_ne() {
        assert!(has_float_eq("if x != f64::INFINITY {"));
        assert!(has_float_eq("let b = y as f64 == z;"));
        assert!(has_float_eq("x == 1e-9"));
        assert!(has_float_eq("x == 3f64"));
    }

    #[test]
    fn integer_and_ordering_comparisons_pass() {
        assert!(!has_float_eq("if n == 0 {"));
        assert!(!has_float_eq("if x <= 1.0 {"));
        assert!(!has_float_eq("if x >= 2.5 {"));
        assert!(!has_float_eq("match x { 1 => 2.0, _ => 3.0 }"));
        assert!(!has_float_eq("for i in 0..1 {}"));
        assert!(!has_float_eq("let y = 1.0_f64.max(x);"));
    }

    #[test]
    fn out_of_scope_crates_ignored() {
        let ws = ws_of(
            "geotopo-core",
            &[("crates/x/src/lib.rs", "fn f(x: f64) -> bool { x == 0.0 }\n")],
        );
        assert!(FloatEq.check(&ws).is_empty());
    }

    #[test]
    fn allow_marker_waives() {
        let src = "fn same(x: f64, y: f64) -> bool {\n    // lint: allow(float_eq): exact round-trip check\n    x == y * 1.0\n}\n";
        let ws = ws_of("geotopo-geo", &[("crates/x/src/lib.rs", src)]);
        assert!(FloatEq.check(&ws).is_empty());
    }
}
