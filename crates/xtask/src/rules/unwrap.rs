//! GT-LINT-003: no `unwrap()`/`expect()` in library paths of the
//! substrate crates.
//!
//! The pipeline is grown toward production scale; a stray `unwrap()` in
//! the geo/BGP/topology/measurement/mapping layers turns a malformed
//! input into a process abort. Library code in those crates must return
//! `Result`, use a non-panicking combinator, or carry an explicit
//! `// lint: allow(unwrap): <why>` marker stating the invariant that
//! makes the panic unreachable.
//!
//! Test code is exempt (panicking is how tests fail), as are the
//! aggregation crates (`core`, `bench`) whose experiment plumbing is
//! allowed to assert its own wiring.

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct NoUnwrap;

/// The substrate crates the rule covers.
const SCOPED_CRATES: &[&str] = &[
    "geotopo-geo",
    "geotopo-bgp",
    "geotopo-topology",
    "geotopo-measure",
    "geotopo-geomap",
];

impl Rule for NoUnwrap {
    fn id(&self) -> &'static str {
        "GT-LINT-003"
    }

    fn describe(&self) -> &'static str {
        "no unwrap()/expect() in library code of geo/bgp/topology/measure/geomap"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            if !SCOPED_CRATES.contains(&krate.name.as_str()) {
                continue;
            }
            for file in &krate.files {
                for (line, text) in file.code_lines() {
                    let hit = if text.contains(".unwrap()") {
                        Some("unwrap()")
                    } else if text.contains(".expect(") {
                        Some("expect(..)")
                    } else {
                        None
                    };
                    if let Some(what) = hit {
                        if !file.is_allowed(line, "unwrap") {
                            out.push(Finding {
                                file: file.path.clone(),
                                line,
                                rule: self.id(),
                                message: format!(
                                    "`.{what}` can abort the pipeline; return a Result or \
                                     justify with `// lint: allow(unwrap): <invariant>`"
                                ),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_unwrap_and_expect_in_scoped_crate() {
        let src = "fn f() {\n    let a = x.unwrap();\n    let b = y.expect(\"set\");\n}\n";
        let ws = ws_of("geotopo-bgp", &[("crates/x/src/lib.rs", src)]);
        let f = NoUnwrap.check(&ws);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].line, f[1].line), (2, 3));
        assert!(f.iter().all(|x| x.rule == "GT-LINT-003"));
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f() { let a = x.unwrap_or(0); let b = y.unwrap_or_else(|| 1); let c = z.unwrap_or_default(); }\n";
        let ws = ws_of("geotopo-geo", &[("crates/x/src/lib.rs", src)]);
        assert!(NoUnwrap.check(&ws).is_empty());
    }

    #[test]
    fn out_of_scope_crate_ignored() {
        let src = "fn f() { let a = x.unwrap(); }\n";
        let ws = ws_of("geotopo-stats", &[("crates/x/src/lib.rs", src)]);
        assert!(NoUnwrap.check(&ws).is_empty());
    }

    #[test]
    fn allow_marker_with_justification_waives() {
        let src = "fn f() {\n    // lint: allow(unwrap): index validated by constructor\n    let a = x.unwrap();\n}\n";
        let ws = ws_of("geotopo-topology", &[("crates/x/src/lib.rs", src)]);
        assert!(NoUnwrap.check(&ws).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let ws = ws_of("geotopo-measure", &[("crates/x/src/lib.rs", src)]);
        assert!(NoUnwrap.check(&ws).is_empty());
    }
}
