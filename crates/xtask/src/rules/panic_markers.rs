//! GT-LINT-007: no leftover panic/debug scaffolding macros.
//!
//! `todo!()` and `unimplemented!()` are placeholders that abort at
//! runtime; `dbg!()` leaks debug output to stderr and its formatting is
//! not covered by the determinism guarantee. None of the three belongs in
//! committed library code anywhere in the workspace. Test code is exempt
//! (the source scanner strips `#[cfg(test)]` regions), and a deliberate
//! permanent stub can carry `// lint: allow(panic): <why>`.

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct PanicMarkers;

const NEEDLES: &[&str] = &["todo!(", "unimplemented!(", "dbg!("];

impl Rule for PanicMarkers {
    fn id(&self) -> &'static str {
        "GT-LINT-007"
    }

    fn describe(&self) -> &'static str {
        "no todo!/unimplemented!/dbg! in committed library code"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            for file in &krate.files {
                for (line, text) in file.code_lines() {
                    for needle in NEEDLES {
                        if contains_macro(text, needle) && !file.is_allowed(line, "panic") {
                            out.push(Finding {
                                file: file.path.clone(),
                                line,
                                rule: self.id(),
                                message: format!(
                                    "`{})` is development scaffolding; finish the code path or \
                                     justify with `// lint: allow(panic): <why>`",
                                    needle
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
        out
    }
}

/// `needle` must start at a non-identifier boundary so `my_todo!(` or
/// `xdbg!(` don't match.
fn contains_macro(text: &str, needle: &str) -> bool {
    let b = text.as_bytes();
    let mut start = 0;
    while let Some(pos) = text[start..].find(needle) {
        let at = start + pos;
        let boundary = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        if boundary {
            return true;
        }
        start = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_todo_and_dbg() {
        let src = "fn f() {\n    todo!(\"later\");\n}\nfn g(x: u32) -> u32 {\n    dbg!(x)\n}\n";
        let ws = ws_of("geotopo-core", &[("crates/x/src/lib.rs", src)]);
        let f = PanicMarkers.check(&ws);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == "GT-LINT-007"));
        assert_eq!((f[0].line, f[1].line), (2, 5));
    }

    #[test]
    fn similarly_named_macros_pass() {
        let src = "fn f() { my_todo!(1); xdbg!(2); }\n";
        let ws = ws_of("geotopo-core", &[("crates/x/src/lib.rs", src)]);
        assert!(PanicMarkers.check(&ws).is_empty());
    }

    #[test]
    fn test_code_and_allow_marker_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { dbg!(1); }\n}\nfn stub() {\n    // lint: allow(panic): feature gated upstream\n    unimplemented!()\n}\n";
        let ws = ws_of("geotopo-measure", &[("crates/x/src/lib.rs", src)]);
        assert!(PanicMarkers.check(&ws).is_empty());
    }
}
