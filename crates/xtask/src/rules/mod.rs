//! The lint rule catalog.
//!
//! Every rule is a standalone module implementing [`Rule`]. Rules see the
//! whole [`WorkspaceSrc`] so crate-scoped and cross-crate rules use the
//! same interface. IDs are stable (`GT-LINT-001`...) and documented in
//! `DESIGN.md`; diagnostics print as `file:line: [ID] message` so editors
//! and CI logs can jump to the site.

pub mod binary_heap;
pub mod float_eq;
pub mod instant_timing;
pub mod layering;
pub mod missing_debug;
pub mod nondeterminism;
pub mod panic_markers;
pub mod raw_fs;
pub mod supervised_paths;
pub mod thread_spawn;
pub mod unwrap;
pub mod wall_clock;

use crate::workspace::WorkspaceSrc;
use std::fmt;
use std::path::PathBuf;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule ID (`GT-LINT-00x`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A source-level lint rule.
pub trait Rule {
    /// Stable rule identifier (`GT-LINT-00x`).
    fn id(&self) -> &'static str;
    /// One-line description for `xtask check --list`.
    fn describe(&self) -> &'static str;
    /// Runs the rule over the workspace.
    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding>;
}

/// All rules, in ID order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nondeterminism::NonDeterminism),
        Box::new(wall_clock::WallClock),
        Box::new(unwrap::NoUnwrap),
        Box::new(float_eq::FloatEq),
        Box::new(missing_debug::MissingDebug),
        Box::new(layering::Layering),
        Box::new(panic_markers::PanicMarkers),
        Box::new(thread_spawn::ThreadSpawn),
        Box::new(supervised_paths::SupervisedPaths),
        Box::new(instant_timing::InstantTiming),
        Box::new(binary_heap::BinaryHeapUse),
        Box::new(raw_fs::RawFs),
    ]
}

/// Runs `rules` over `ws`, returning findings sorted by file/line/rule.
pub fn run(rules: &[Box<dyn Rule>], ws: &WorkspaceSrc) -> Vec<Finding> {
    let mut findings: Vec<Finding> = rules.iter().flat_map(|r| r.check(ws)).collect();
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Test helper: wraps inline snippets into a single-crate workspace.
#[cfg(test)]
pub fn ws_of(crate_name: &str, files: &[(&str, &str)]) -> WorkspaceSrc {
    use crate::source::SourceFile;
    use crate::workspace::CrateSrc;
    WorkspaceSrc {
        crates: vec![CrateSrc {
            name: crate_name.to_string(),
            dir: PathBuf::from("crates/x"),
            manifest: format!("[package]\nname = \"{crate_name}\"\n"),
            manifest_path: PathBuf::from("crates/x/Cargo.toml"),
            files: files
                .iter()
                .map(|(p, s)| SourceFile::from_str(p, s))
                .collect(),
            ref_files: Vec::new(),
        }],
    }
}
