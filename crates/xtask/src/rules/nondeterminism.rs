//! GT-LINT-001: no nondeterministic RNG entropy sources.
//!
//! Every experiment in this repository must be reproducible from a seed:
//! `rand::rng()`, `thread_rng()`, `from_entropy()` and `OsRng` pull
//! entropy from the OS and silently break run-to-run determinism. All
//! generators must be constructed via `SeedableRng::seed_from_u64` (the
//! vendored `rand` stand-in deliberately exposes nothing else).

use super::{Finding, Rule};
use crate::workspace::WorkspaceSrc;

/// See module docs.
#[derive(Debug)]
pub struct NonDeterminism;

const NEEDLES: &[&str] = &["thread_rng(", "from_entropy(", "rand::rng()", "OsRng"];

impl Rule for NonDeterminism {
    fn id(&self) -> &'static str {
        "GT-LINT-001"
    }

    fn describe(&self) -> &'static str {
        "no OS-entropy RNG construction (thread_rng/from_entropy/OsRng) in library code"
    }

    fn check(&self, ws: &WorkspaceSrc) -> Vec<Finding> {
        let mut out = Vec::new();
        for krate in &ws.crates {
            for file in &krate.files {
                for (line, text) in file.code_lines() {
                    for needle in NEEDLES {
                        if text.contains(needle) && !file.is_allowed(line, "nondeterminism") {
                            out.push(Finding {
                                file: file.path.clone(),
                                line,
                                rule: self.id(),
                                message: format!(
                                    "`{}` draws OS entropy; seed explicitly via \
                                     `SeedableRng::seed_from_u64` (or `// lint: allow(nondeterminism)`)",
                                    needle.trim_end_matches('(')
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ws_of;

    #[test]
    fn flags_thread_rng_in_library_code() {
        let ws = ws_of(
            "geotopo-stats",
            &[(
                "crates/x/src/lib.rs",
                "fn f() { let mut r = rand::thread_rng(); }\n",
            )],
        );
        let f = NonDeterminism.check(&ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "GT-LINT-001");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn ignores_test_code_and_comments() {
        let src = "// thread_rng() is banned\nfn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let r = thread_rng(); }\n}\n";
        let ws = ws_of("geotopo-stats", &[("crates/x/src/lib.rs", src)]);
        assert!(NonDeterminism.check(&ws).is_empty());
    }

    #[test]
    fn allow_marker_waives() {
        let src = "fn f() { let r = OsRng; } // lint: allow(nondeterminism)\n";
        let ws = ws_of("geotopo-stats", &[("crates/x/src/lib.rs", src)]);
        assert!(NonDeterminism.check(&ws).is_empty());
    }
}
