//! GT-AN-001: no panic site transitively reachable from a supervised
//! entry point.
//!
//! Roots are every `fn run` inside an `impl Stage for ...` (enumerated
//! from the item model, so new stages are covered automatically) and
//! every public method of `FaultSession` — the two surfaces the
//! supervisor in `geotopo-core` drives during a campaign. A panic
//! anywhere under them aborts the campaign mid-flight, which is exactly
//! what the fault-injection substrate exists to prevent.
//!
//! Panic sites: `.unwrap()` / `.expect()` calls, `panic!` /
//! `unreachable!` / `todo!` / `unimplemented!` macros, and `x[i]`
//! indexing inside fns flagged `// analyze: strict-indexing`. Waive a
//! site with `// analyze: allow(panic)` (or the existing
//! `// lint: allow(unwrap)` for unwrap/expect) plus a comment saying
//! why it cannot fire.

use super::AnalyzeRule;
use crate::graph::{CallKind, Model};
use crate::items::Vis;
use crate::rules::Finding;

/// See module docs.
#[derive(Debug)]
pub struct PanicReach;

/// Macros whose expansion aborts the thread.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Fn indices of every supervised root: `Stage::run` impls and public
/// `FaultSession` methods. Public so the root-coverage test can assert
/// every `impl Stage` in the workspace is in the set.
pub fn supervised_roots(model: &Model<'_>) -> Vec<u32> {
    let mut roots = Vec::new();
    for (i, f) in model.fns.iter().enumerate() {
        if f.is_test || f.body.is_none() {
            continue;
        }
        let stage_run = f.name == "run" && f.trait_name.as_deref() == Some("Stage");
        let fault_entry = f.self_ty.as_deref() == Some("FaultSession") && f.vis == Vis::Pub;
        if stage_run || fault_entry {
            roots.push(i as u32);
        }
    }
    roots
}

impl AnalyzeRule for PanicReach {
    fn id(&self) -> &'static str {
        "GT-AN-001"
    }

    fn describe(&self) -> &'static str {
        "no panic site reachable from Stage::run or FaultSession entry points"
    }

    fn explain(&self) -> &'static str {
        "GT-AN-001 panic reachability\n\
         \n\
         The engine's supervisor assumes stages fail by returning errors, not by\n\
         panicking: a panic unwinds through the scheduler, poisons the campaign,\n\
         and loses every in-flight measurement. This rule walks the workspace\n\
         call graph from every supervised entry point and reports any panic site\n\
         that is transitively reachable.\n\
         \n\
         Roots (enumerated from the item model, not a path list):\n\
           - every `fn run` in an `impl Stage for ...`\n\
           - every `pub fn` on `FaultSession`\n\
         \n\
         Panic sites:\n\
           - `.unwrap()` and `.expect(..)` calls\n\
           - `panic!`, `unreachable!`, `todo!`, `unimplemented!` macros\n\
           - `x[i]` indexing, only inside fns marked `// analyze: strict-indexing`\n\
         \n\
         Each finding carries a witness call path from a root to the offending\n\
         function. Call resolution is name-based and deliberately\n\
         over-approximate: a reported path may not be feasible, but an\n\
         unreported one is guaranteed panic-free modulo resolution gaps\n\
         (calls into std/vendored code produce no edges).\n\
         \n\
         Waiving: add `// analyze: allow(panic)` on the site line, the line\n\
         above, or the enclosing fn header (item-scoped), with a comment saying\n\
         why the panic cannot fire. `// lint: allow(unwrap)` also waives\n\
         unwrap/expect sites so existing GT-LINT-003 markers keep working.\n\
         This rule supersedes GT-LINT-009's path-prefix heuristic."
    }

    fn check(&self, model: &Model<'_>) -> Vec<Finding> {
        let roots = supervised_roots(model);
        let parents = model.reachable(&roots);
        let mut out = Vec::new();
        for (i, f) in model.fns.iter().enumerate() {
            if parents[i].is_none() {
                continue;
            }
            let sf = model.file(f.file);
            let strict = sf.strict_indexing.contains(&f.line);
            let witness = || model.witness_path(&parents, i as u32);
            for call in &f.calls {
                let is_unwrap = matches!(call.kind, CallKind::Method { .. })
                    && (call.name == "unwrap" || call.name == "expect");
                if !is_unwrap {
                    continue;
                }
                if sf.is_allowed(call.line, "panic") || sf.is_allowed(call.line, "unwrap") {
                    continue;
                }
                out.push(Finding {
                    file: sf.path.clone(),
                    line: call.line,
                    rule: self.id(),
                    message: format!(
                        "`.{}()` reachable from supervised root via {}",
                        call.name,
                        witness()
                    ),
                });
            }
            for m in &f.macros {
                if !PANIC_MACROS.contains(&m.name.as_str()) {
                    continue;
                }
                if sf.is_allowed(m.line, "panic") {
                    continue;
                }
                out.push(Finding {
                    file: sf.path.clone(),
                    line: m.line,
                    rule: self.id(),
                    message: format!(
                        "`{}!` reachable from supervised root via {}",
                        m.name,
                        witness()
                    ),
                });
            }
            if strict {
                for &line in &f.index_lines {
                    if sf.is_allowed(line, "panic") {
                        continue;
                    }
                    out.push(Finding {
                        file: sf.path.clone(),
                        line,
                        rule: self.id(),
                        message: format!(
                            "indexing in strict-indexing fn `{}` reachable from supervised \
                             root via {}",
                            f.qual_name(),
                            witness()
                        ),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Model;
    use crate::rules::ws_of;

    #[test]
    fn unwrap_behind_helper_is_reached_from_stage_run() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/lib.rs",
                "struct S;\nimpl Stage for S {\n    fn run(&self) { helper(); }\n}\nfn helper() { x().unwrap(); }\nfn x() -> Option<u32> { None }\n",
            )],
        );
        let model = Model::build(&ws);
        let f = PanicReach.check(&model);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("S::run -> helper"));
    }

    #[test]
    fn unreachable_code_is_not_flagged() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/lib.rs",
                "struct S;\nimpl Stage for S {\n    fn run(&self) {}\n}\nfn lonely() { x.unwrap(); }\n",
            )],
        );
        let model = Model::build(&ws);
        assert!(PanicReach.check(&model).is_empty());
    }

    #[test]
    fn allow_marker_waives_site() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/lib.rs",
                "struct S;\nimpl Stage for S {\n    fn run(&self) {\n        x.unwrap(); // analyze: allow(panic): cannot fail, seeded above\n    }\n}\n",
            )],
        );
        let model = Model::build(&ws);
        assert!(PanicReach.check(&model).is_empty());
    }

    #[test]
    fn panic_macro_reachable_from_fault_session() {
        let ws = ws_of(
            "geotopo-measure",
            &[(
                "crates/measure/src/lib.rs",
                "struct FaultSession;\nimpl FaultSession {\n    pub fn tick(&mut self) { boom(); }\n}\nfn boom() { panic!(\"no\"); }\n",
            )],
        );
        let model = Model::build(&ws);
        let f = PanicReach.check(&model);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`panic!`"));
    }

    #[test]
    fn strict_indexing_flags_only_marked_fns() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/lib.rs",
                "struct S;\nimpl Stage for S {\n    fn run(&self) { a(); b(); }\n}\n// analyze: strict-indexing\nfn a() { let _ = v[0]; }\nfn b() { let _ = v[0]; }\n",
            )],
        );
        let model = Model::build(&ws);
        let f = PanicReach.check(&model);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn roots_cover_every_stage_impl() {
        let ws = ws_of(
            "geotopo-core",
            &[(
                "crates/core/src/lib.rs",
                "struct A;\nstruct B;\nimpl Stage for A {\n    fn run(&self) {}\n}\nimpl Stage for B {\n    fn run(&self) {}\n}\nimpl B {\n    fn run_helper(&self) {}\n}\n",
            )],
        );
        let model = Model::build(&ws);
        let roots = supervised_roots(&model);
        assert_eq!(roots.len(), 2);
        for r in roots {
            assert_eq!(model.fns[r as usize].trait_name.as_deref(), Some("Stage"));
        }
    }
}
