//! The semantic analyzer catalog (`cargo xtask analyze`).
//!
//! Where the `GT-LINT` rules in [`crate::rules`] see one masked line at
//! a time, the `GT-AN` rules here see the workspace [`Model`]: item
//! trees, a call graph, and the crate-level use-graph. That buys
//! *reachability* — "no panic transitively callable from a supervised
//! stage" instead of "no `.unwrap()` under this path prefix" — at the
//! price of name-resolution-lite imprecision, which the model keeps on
//! the conservative side (see [`crate::graph`]).
//!
//! Diagnostics share the [`Finding`] shape and sorting with the lint
//! pass, so `xtask check --all` can interleave both catalogs in one
//! deterministic stream. Every rule carries a long-form `--explain`
//! text documenting its contract and its allow markers.

pub mod hot_alloc;
pub mod hygiene;
pub mod panic_reach;

use crate::graph::Model;
use crate::rules::Finding;
use crate::workspace::WorkspaceSrc;

/// A workspace-model analyzer rule.
pub trait AnalyzeRule {
    /// Stable rule identifier (`GT-AN-00x`).
    fn id(&self) -> &'static str;
    /// One-line description for `xtask analyze --list`.
    fn describe(&self) -> &'static str;
    /// Long-form documentation for `xtask analyze --explain ID`.
    fn explain(&self) -> &'static str;
    /// Runs the rule over the workspace model.
    fn check(&self, model: &Model<'_>) -> Vec<Finding>;
}

/// All analyzer rules, in ID order.
pub fn all_analyzers() -> Vec<Box<dyn AnalyzeRule>> {
    vec![
        Box::new(panic_reach::PanicReach),
        Box::new(hot_alloc::HotAlloc),
        Box::new(hygiene::CrossCrateHygiene),
    ]
}

/// Builds the model once and runs `analyzers` over it, returning
/// findings sorted by file/line/rule (same order as the lint pass).
pub fn run(analyzers: &[Box<dyn AnalyzeRule>], ws: &WorkspaceSrc) -> Vec<Finding> {
    let model = Model::build(ws);
    let mut findings: Vec<Finding> = analyzers.iter().flat_map(|r| r.check(&model)).collect();
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}
