//! GT-AN-002: no allocation reachable from a registered hot-path root.
//!
//! PR 5 made the measurement kernels allocation-free (CSR topology,
//! bucket-queue routing, `TraceBuf` reuse); this rule keeps them that
//! way as the code grows. Roots opt in with `// analyze: hot-path-root`
//! on the fn header (or the line above) — the marker *is* the registry,
//! so the rule and the code cannot drift apart.
//!
//! Allocation sites: `vec!` / `format!` macros; `Vec::new`-style
//! constructors on the std collection types; `.collect()`, `.to_vec()`,
//! `.to_owned()`, `.to_string()` adaptors; and `.push(..)` on a local
//! that was freshly constructed in the same body (pushing into a
//! caller-provided buffer is fine — that is the whole point of the
//! `*_into` APIs). Waive a deliberate allocation with
//! `// analyze: allow(alloc)` plus a comment saying why it is not per-op
//! (e.g. output arrays owned by the returned value).

use super::AnalyzeRule;
use crate::graph::{CallKind, Model};
use crate::lexer::{Token, TokenKind};
use crate::rules::Finding;

/// See module docs.
#[derive(Debug)]
pub struct HotAlloc;

/// Std types whose constructors allocate (or may, for `with_capacity`).
const ALLOC_TYPES: &[&str] = &[
    "Vec", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];

/// Constructor names counted as allocating on [`ALLOC_TYPES`].
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Method adaptors that allocate their result.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

impl AnalyzeRule for HotAlloc {
    fn id(&self) -> &'static str {
        "GT-AN-002"
    }

    fn describe(&self) -> &'static str {
        "no allocation reachable from a `// analyze: hot-path-root` fn"
    }

    fn explain(&self) -> &'static str {
        "GT-AN-002 allocation-in-hot-path\n\
         \n\
         The measurement hot path (routing solves, traceroute emission, prefix\n\
         lookups, CSR neighbor scans) runs millions of times per campaign; a\n\
         single `Vec::new()` per probe regresses the whole pipeline. This rule\n\
         walks the call graph from every registered hot-path root and reports\n\
         any reachable allocation.\n\
         \n\
         Roots: fns carrying `// analyze: hot-path-root` on their header line\n\
         or the line directly above (past attributes/docs). The marker is the\n\
         registry — adding a kernel means adding a marker.\n\
         \n\
         Allocation sites:\n\
           - `vec!` and `format!` macros\n\
           - `Vec`/`Box`/`String`/`HashMap`/`HashSet`/`BTreeMap`/`BTreeSet`/\n\
             `VecDeque` `::new` / `::with_capacity` / `::from`\n\
           - `.collect()`, `.to_vec()`, `.to_owned()`, `.to_string()`\n\
           - `.push(..)` on a local freshly constructed in the same body\n\
             (pushing into caller-provided buffers is allowed by design)\n\
         \n\
         Each finding carries a witness call path from a root. Waiving: add\n\
         `// analyze: allow(alloc)` on the site line, the line above, or the\n\
         enclosing fn header, with a comment saying why the allocation is\n\
         amortized (e.g. output arrays owned by the returned oracle)."
    }

    fn check(&self, model: &Model<'_>) -> Vec<Finding> {
        let mut roots = Vec::new();
        for (i, f) in model.fns.iter().enumerate() {
            if !f.is_test && model.file(f.file).hot_path_roots.contains(&f.line) {
                roots.push(i as u32);
            }
        }
        let parents = model.reachable(&roots);
        let mut out = Vec::new();
        for (i, f) in model.fns.iter().enumerate() {
            if parents[i].is_none() {
                continue;
            }
            let sf = model.file(f.file);
            let witness = || model.witness_path(&parents, i as u32);
            for m in &f.macros {
                if !ALLOC_MACROS.contains(&m.name.as_str()) || sf.is_allowed(m.line, "alloc") {
                    continue;
                }
                out.push(Finding {
                    file: sf.path.clone(),
                    line: m.line,
                    rule: self.id(),
                    message: format!("`{}!` allocates on hot path via {}", m.name, witness()),
                });
            }
            let mut fresh_locals: Option<Vec<String>> = None;
            for call in &f.calls {
                let flagged = match &call.kind {
                    CallKind::Qualified(q) => {
                        ALLOC_TYPES.contains(&q.as_str())
                            && ALLOC_CTORS.contains(&call.name.as_str())
                    }
                    CallKind::Method { .. } if ALLOC_METHODS.contains(&call.name.as_str()) => true,
                    CallKind::Method { on_self: false } if call.name == "push" => {
                        // Only `push` on a local constructed in this body.
                        let locals = fresh_locals.get_or_insert_with(|| match f.body {
                            Some((s, e)) => fresh_local_names(&sf.raw, &sf.tree.tokens[s..e]),
                            None => Vec::new(),
                        });
                        push_receiver_is_fresh(&sf.raw, &sf.tree.tokens, f.body, call.line, locals)
                    }
                    _ => false,
                };
                if !flagged || sf.is_allowed(call.line, "alloc") {
                    continue;
                }
                let what = match &call.kind {
                    CallKind::Qualified(q) => format!("`{}::{}`", q, call.name),
                    _ => format!("`.{}()`", call.name),
                };
                out.push(Finding {
                    file: sf.path.clone(),
                    line: call.line,
                    rule: self.id(),
                    message: format!("{what} allocates on hot path via {}", witness()),
                });
            }
        }
        out
    }
}

/// Names of locals bound to an allocating constructor in this body:
/// `let buf = Vec::new()`, `let mut s = String::with_capacity(n)`, ...
fn fresh_local_names(src: &str, toks: &[Token]) -> Vec<String> {
    let text = |t: &Token| t.text(src);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || text(&toks[i]) != "let" {
            continue;
        }
        // `let [mut] NAME = Type::ctor` / `= vec!`
        let mut j = i + 1;
        if toks
            .get(j)
            .is_some_and(|t| t.kind == TokenKind::Ident && text(t) == "mut")
        {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Skip an optional `: Type` annotation up to the `=`.
        let mut k = j + 1;
        while k < toks.len() && !toks[k].is_punct(b'=') && !toks[k].is_punct(b';') {
            k += 1;
        }
        if !toks.get(k).is_some_and(|t| t.is_punct(b'=')) {
            continue;
        }
        let rhs = toks.get(k + 1);
        let allocating = match rhs {
            Some(t) if t.kind == TokenKind::Ident => {
                let s = text(t);
                ALLOC_TYPES.contains(&s)
                    || (s == "vec" && toks.get(k + 2).is_some_and(|n| n.is_punct(b'!')))
            }
            _ => false,
        };
        if allocating {
            out.push(text(name_tok).to_string());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Whether a `.push(` call at `line` has a fresh-local receiver:
/// tokens `NAME . push (` with `NAME` in `locals`.
fn push_receiver_is_fresh(
    src: &str,
    toks: &[Token],
    body: Option<(usize, usize)>,
    line: usize,
    locals: &[String],
) -> bool {
    let Some((s, e)) = body else { return false };
    let toks = &toks[s..e];
    for i in 2..toks.len() {
        let t = &toks[i];
        if t.line != line || t.kind != TokenKind::Ident || t.text(src) != "push" {
            continue;
        }
        if !toks[i - 1].is_punct(b'.') {
            continue;
        }
        let recv = &toks[i - 2];
        if recv.kind == TokenKind::Ident
            && locals.iter().any(|l| l == recv.text(src))
            // `x.buf.push(..)` — receiver is a field, not the local.
            && (i < 4 || !toks[i - 3].is_punct(b'.'))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Model;
    use crate::rules::ws_of;

    #[test]
    fn alloc_behind_helper_flagged_from_root() {
        let ws = ws_of(
            "geotopo-measure",
            &[(
                "crates/measure/src/lib.rs",
                "// analyze: hot-path-root\npub fn lookup(&self) { helper(); }\nfn helper() { let v: Vec<u32> = Vec::new(); let _ = v; }\n",
            )],
        );
        let model = Model::build(&ws);
        let f = HotAlloc.check(&model);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("`Vec::new`"));
        assert!(f[0].message.contains("lookup -> helper"));
    }

    #[test]
    fn unmarked_fns_are_not_roots() {
        let ws = ws_of(
            "geotopo-measure",
            &[(
                "crates/measure/src/lib.rs",
                "pub fn cold() { let _ = vec![1]; }\n",
            )],
        );
        let model = Model::build(&ws);
        assert!(HotAlloc.check(&model).is_empty());
    }

    #[test]
    fn push_into_caller_buffer_is_fine_fresh_local_is_not() {
        let ws = ws_of(
            "geotopo-measure",
            &[(
                "crates/measure/src/lib.rs",
                "// analyze: hot-path-root\nfn trace_into(out: &mut Vec<u32>) {\n    out.push(1);\n    let mut tmp = Vec::new();\n    tmp.push(2);\n}\n",
            )],
        );
        let model = Model::build(&ws);
        let f = HotAlloc.check(&model);
        // `Vec::new` and `tmp.push` flagged; `out.push` into the caller's
        // buffer is not.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.line != 3));
        assert!(f
            .iter()
            .any(|f| f.line == 5 && f.message.contains("`.push()`")));
    }

    #[test]
    fn collect_and_format_flagged() {
        let ws = ws_of(
            "geotopo-measure",
            &[(
                "crates/measure/src/lib.rs",
                "// analyze: hot-path-root\nfn solve() {\n    let v: Vec<u32> = it.collect();\n    let s = format!(\"x\");\n}\n",
            )],
        );
        let model = Model::build(&ws);
        let f = HotAlloc.check(&model);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn allow_alloc_waives_site() {
        let ws = ws_of(
            "geotopo-measure",
            &[(
                "crates/measure/src/lib.rs",
                "// analyze: hot-path-root\nfn solve() {\n    // analyze: allow(alloc): output arrays owned by the returned oracle\n    let dist = vec![0u32; n];\n}\n",
            )],
        );
        let model = Model::build(&ws);
        assert!(HotAlloc.check(&model).is_empty());
    }
}
