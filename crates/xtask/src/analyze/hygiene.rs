//! GT-AN-003: cross-crate hygiene from the real use-graph.
//!
//! Two halves:
//!
//! 1. **Layering, recomputed from source.** GT-LINT-006 checks the
//!    *declared* manifest edges; this half checks the *actual* import
//!    edges observed as `geotopo_*` paths in code, against the same
//!    shared table in [`crate::layers`]. A crate that declares a legal
//!    dependency but reaches an illegal crate through a re-export shows
//!    up here and nowhere else.
//!
//! 2. **Dead workspace-`pub`.** A `pub` item that no other crate, no
//!    test, no bench and no other file of its own crate ever names is
//!    surface area without users — either shrink it to `pub(crate)` or
//!    mark it `// analyze: allow(dead-pub)` with the reason it must stay
//!    public (e.g. downstream-facing API documented in the README).

use super::AnalyzeRule;
use crate::graph::{public_items, Model};
use crate::layers::layer_of;
use crate::lexer::TokenKind;
use crate::rules::Finding;
use std::collections::{HashMap, HashSet};

/// See module docs.
#[derive(Debug)]
pub struct CrossCrateHygiene;

impl AnalyzeRule for CrossCrateHygiene {
    fn id(&self) -> &'static str {
        "GT-AN-003"
    }

    fn describe(&self) -> &'static str {
        "use-graph layering plus detection of unreferenced workspace-pub items"
    }

    fn explain(&self) -> &'static str {
        "GT-AN-003 cross-crate hygiene\n\
         \n\
         Layering: the sanctioned layer DAG (see DESIGN.md and xtask's\n\
         `layers` module) is re-checked against the *actual* `geotopo_*`\n\
         import edges observed in source, not just the manifests GT-LINT-006\n\
         reads. Test code is exempt (tests may reach anywhere); `xtask` may\n\
         import no geotopo crate at all. Each finding points at the first\n\
         import site of the offending edge. There is no allow marker — a new\n\
         edge means the table must change deliberately.\n\
         \n\
         Dead pub: a `pub` item (fn, struct, enum, trait, const, static, type\n\
         alias) that is never named outside its own defining file — not in\n\
         another crate, not in any test/bench/example, not in a test region,\n\
         not elsewhere in its own crate — is unused public surface. Fix by\n\
         shrinking visibility, deleting the item, or marking the definition\n\
         line `// analyze: allow(dead-pub)` with the reason it must stay\n\
         public. The `xtask` crate itself and `main` are exempt (its library\n\
         surface exists for its own bin and tests)."
    }

    fn check(&self, model: &Model<'_>) -> Vec<Finding> {
        let mut out = self.check_layering(model);
        out.extend(self.check_dead_pub(model));
        out
    }
}

impl CrossCrateHygiene {
    fn check_layering(&self, model: &Model<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        for edge in &model.use_edges {
            let path = model.path(edge.file).clone();
            if edge.from == "xtask" {
                out.push(Finding {
                    file: path,
                    line: edge.line,
                    rule: self.id(),
                    message: format!(
                        "xtask imports `{}`; the lint runner must have no geotopo \
                         dependencies so it builds even when the pipeline is broken",
                        edge.to
                    ),
                });
                continue;
            }
            let Some(from_layer) = layer_of(&edge.from) else {
                out.push(Finding {
                    file: path,
                    line: edge.line,
                    rule: self.id(),
                    message: format!(
                        "crate `{}` is not in the sanctioned layer map but imports `{}`; \
                         add it to xtask's layer table and DESIGN.md",
                        edge.from, edge.to
                    ),
                });
                continue;
            };
            let to_layer = layer_of(&edge.to).unwrap_or(u32::MAX);
            if to_layer >= from_layer {
                out.push(Finding {
                    file: path,
                    line: edge.line,
                    rule: self.id(),
                    message: format!(
                        "`{}` (layer {from_layer}) imports `{}` (layer {to_layer}) in \
                         source; edges must point strictly down the DAG",
                        edge.from, edge.to
                    ),
                });
            }
        }
        out
    }

    fn check_dead_pub(&self, model: &Model<'_>) -> Vec<Finding> {
        let ws = model.workspace();
        // Per-file ident occurrence map over src files, and a global set
        // of idents in reference trees (tests/benches/examples).
        let mut occ: HashMap<String, Vec<usize>> = HashMap::new();
        for (idx, &(ci, fi)) in model.files.iter().enumerate() {
            let sf = &ws.crates[ci].files[fi];
            let mut seen: HashSet<&str> = HashSet::new();
            for t in &sf.tree.tokens {
                if t.kind == TokenKind::Ident {
                    seen.insert(t.text(&sf.raw));
                }
            }
            for s in seen {
                occ.entry(s.to_string()).or_default().push(idx);
            }
        }
        let mut ref_idents: HashSet<String> = HashSet::new();
        for c in &ws.crates {
            for sf in &c.ref_files {
                for t in &sf.tree.tokens {
                    if t.kind == TokenKind::Ident {
                        ref_idents.insert(t.text(&sf.raw).to_string());
                    }
                }
            }
        }
        let mut out = Vec::new();
        for (file_idx, name, line) in public_items(model) {
            let (ci, _) = model.files[file_idx];
            let krate = &ws.crates[ci].name;
            if krate == "xtask" || name == "main" {
                continue;
            }
            let sf = model.file(file_idx);
            if sf.is_allowed(line, "dead-pub") {
                continue;
            }
            // Referenced from any *other* src file?
            let elsewhere = occ
                .get(&name)
                .is_some_and(|files| files.iter().any(|&fidx| fidx != file_idx));
            if elsewhere || ref_idents.contains(&name) {
                continue;
            }
            // Referenced from this file's own test regions?
            let in_own_tests = sf.tree.tokens.iter().any(|t| {
                t.kind == TokenKind::Ident && sf.is_test_line(t.line) && t.text(&sf.raw) == name
            });
            if in_own_tests {
                continue;
            }
            out.push(Finding {
                file: sf.path.clone(),
                line,
                rule: self.id(),
                message: format!(
                    "pub item `{name}` is never referenced outside its defining file; \
                     shrink its visibility or mark it `// analyze: allow(dead-pub)` \
                     with the reason it must stay public"
                ),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Model;
    use crate::source::SourceFile;
    use crate::workspace::{CrateSrc, WorkspaceSrc};
    use std::path::PathBuf;

    fn krate(name: &str, files: &[(&str, &str)], refs: &[(&str, &str)]) -> CrateSrc {
        CrateSrc {
            name: name.to_string(),
            dir: PathBuf::from(format!("crates/{name}")),
            manifest: format!("[package]\nname = \"{name}\"\n"),
            manifest_path: PathBuf::from(format!("crates/{name}/Cargo.toml")),
            files: files
                .iter()
                .map(|(p, s)| SourceFile::from_str(p, s))
                .collect(),
            ref_files: refs
                .iter()
                .map(|(p, s)| SourceFile::from_str(p, s))
                .collect(),
        }
    }

    #[test]
    fn upward_source_import_flagged_at_witness_line() {
        let ws = WorkspaceSrc {
            crates: vec![
                krate(
                    "geotopo-geo",
                    &[(
                        "crates/geo/src/lib.rs",
                        "use geotopo_core::engine::Engine;\npub fn f() { let _ = Engine; }\n",
                    )],
                    &[],
                ),
                krate("geotopo-core", &[], &[]),
            ],
        };
        let model = Model::build(&ws);
        let f: Vec<_> = CrossCrateHygiene
            .check(&model)
            .into_iter()
            .filter(|f| f.message.contains("imports"))
            .collect();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("strictly down"));
    }

    #[test]
    fn downward_source_import_clean() {
        let ws = WorkspaceSrc {
            crates: vec![
                krate(
                    "geotopo-measure",
                    &[(
                        "crates/measure/src/lib.rs",
                        "use geotopo_geo::GeoPoint;\npub fn f(p: GeoPoint) { let _ = p; }\n",
                    )],
                    &[("crates/measure/tests/t.rs", "use geotopo_measure::f;\n")],
                ),
                krate("geotopo-geo", &[], &[]),
            ],
        };
        let model = Model::build(&ws);
        assert!(CrossCrateHygiene.check(&model).is_empty());
    }

    #[test]
    fn xtask_imports_are_always_flagged() {
        let ws = WorkspaceSrc {
            crates: vec![
                krate(
                    "xtask",
                    &[("crates/xtask/src/lib.rs", "use geotopo_geo::p;\n")],
                    &[],
                ),
                krate("geotopo-geo", &[], &[]),
            ],
        };
        let model = Model::build(&ws);
        let f = CrossCrateHygiene.check(&model);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("lint runner"));
    }

    #[test]
    fn dead_pub_flagged_and_allowable() {
        let ws = WorkspaceSrc {
            crates: vec![krate(
                "geotopo-geo",
                &[(
                    "crates/geo/src/lib.rs",
                    "pub fn unused_api() {}\n// analyze: allow(dead-pub): documented external surface\npub fn waved() {}\npub fn used() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { crate::used(); }\n}\n",
                )],
                &[],
            )],
        };
        let model = Model::build(&ws);
        let f = CrossCrateHygiene.check(&model);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("unused_api"));
    }

    #[test]
    fn reference_from_other_crate_or_tests_counts() {
        let ws = WorkspaceSrc {
            crates: vec![
                krate(
                    "geotopo-geo",
                    &[(
                        "crates/geo/src/lib.rs",
                        "pub fn api() {}\npub fn bench_only() {}\n",
                    )],
                    &[],
                ),
                krate(
                    "geotopo-measure",
                    &[(
                        "crates/measure/src/lib.rs",
                        "use geotopo_geo::api;\nfn f() { api(); }\n",
                    )],
                    &[(
                        "crates/measure/benches/b.rs",
                        "fn b() { geotopo_geo::bench_only(); }\n",
                    )],
                ),
            ],
        };
        let model = Model::build(&ws);
        assert!(CrossCrateHygiene.check(&model).is_empty());
    }
}
