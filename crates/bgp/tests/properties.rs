//! Property tests: the radix trie must agree with a brute-force
//! linear scan over prefixes, and allocation invariants must hold.

use geotopo_bgp::alloc::{AsAllocation, PrefixAllocator};
use geotopo_bgp::{AsId, Ipv4Prefix, PrefixTrie};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| {
        Ipv4Prefix::containing(Ipv4Addr::from(bits), len).expect("len <= 32")
    })
}

proptest! {
    #[test]
    fn trie_matches_linear_scan(
        prefixes in prop::collection::vec(arb_prefix(), 1..60),
        probes in prop::collection::vec(any::<u32>(), 1..40)
    ) {
        let mut trie = PrefixTrie::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i);
        }
        for probe in probes {
            let ip = Ipv4Addr::from(probe);
            // Brute force: longest matching prefix; later insert wins ties
            // (same prefix inserted twice keeps the last value).
            let mut best: Option<(usize, u8)> = None;
            for (i, p) in prefixes.iter().enumerate() {
                if p.contains(ip) {
                    match best {
                        Some((_, l)) if l > p.len() => {}
                        _ => best = Some((i, p.len())),
                    }
                }
            }
            let got = trie.lookup(ip).map(|(v, l)| (*v, l));
            prop_assert_eq!(got, best, "ip {}", ip);
        }
    }

    #[test]
    fn frozen_trie_lookup_matches_linear_scan(
        prefixes in prop::collection::vec(arb_prefix(), 1..60),
        dup_from in prop::collection::vec(any::<usize>(), 0..8),
        probes in prop::collection::vec(any::<u32>(), 1..40)
    ) {
        // The query snapshot serves a trie thawed from the disk cache.
        // A serde round trip (the freeze/thaw path) must preserve
        // longest-prefix matching exactly: same answers as a brute-force
        // scan over the insertion record, duplicates last-wins, /0 and
        // /32 included (arb_prefix draws the full 0..=32 length range).
        let mut record: Vec<Ipv4Prefix> = prefixes.clone();
        for idx in &dup_from {
            record.push(prefixes[idx % prefixes.len()]); // explicit duplicate inserts
        }
        let mut trie = PrefixTrie::new();
        for (i, p) in record.iter().enumerate() {
            trie.insert(*p, i);
        }
        let json = serde_json::to_string(&trie).expect("serialize");
        let frozen: PrefixTrie<usize> = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(frozen.validate(), Ok(()));
        for probe in probes {
            let ip = Ipv4Addr::from(probe);
            let mut best: Option<(usize, u8)> = None;
            for (i, p) in record.iter().enumerate() {
                if p.contains(ip) {
                    match best {
                        Some((_, l)) if l > p.len() => {}
                        _ => best = Some((i, p.len())),
                    }
                }
            }
            prop_assert_eq!(frozen.lookup(ip).map(|(v, l)| (*v, l)), best, "ip {}", ip);
        }
    }

    #[test]
    fn trie_validates_and_matches_reference(
        prefixes in prop::collection::vec(arb_prefix(), 0..60)
    ) {
        // Any insert sequence must leave the trie structurally valid and
        // faithful to its own insertion record (last-wins on duplicates).
        let reference: Vec<(Ipv4Prefix, usize)> =
            prefixes.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let mut trie = PrefixTrie::new();
        for (p, v) in &reference {
            trie.insert(*p, *v);
        }
        prop_assert_eq!(trie.validate(), Ok(()));
        prop_assert_eq!(trie.validate_against(&reference), Ok(()));
    }

    #[test]
    fn synthesized_route_table_validates(
        sizes in prop::collection::vec(10u64..2000, 1..10),
        seed in any::<u64>()
    ) {
        use geotopo_bgp::{RouteTable, RouteTableConfig};
        let mut a = PrefixAllocator::new();
        let allocs: Vec<AsAllocation> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| AsAllocation::for_as(&mut a, AsId(i as u32 + 1), s).unwrap())
            .collect();
        let table = RouteTable::synthesize(
            &allocs,
            &RouteTableConfig { coverage: 0.9, more_specific_prob: 0.3, seed },
        );
        prop_assert_eq!(table.validate(), Ok(()));
    }

    #[test]
    fn prefix_contains_consistent_with_nth(p in arb_prefix(), i in any::<u64>()) {
        if let Some(ip) = p.nth(i % p.size()) {
            prop_assert!(p.contains(ip));
        }
    }

    #[test]
    fn prefix_roundtrip_display_parse(p in arb_prefix()) {
        let s = p.to_string();
        let q: Ipv4Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn split_children_partition(p in arb_prefix()) {
        if let Some((lo, hi)) = p.split() {
            prop_assert!(p.covers(&lo) && p.covers(&hi));
            prop_assert_eq!(lo.size() + hi.size(), p.size());
            prop_assert!(!lo.covers(&hi) && !hi.covers(&lo));
        }
    }

    #[test]
    fn allocations_for_distinct_ases_are_disjoint(sizes in prop::collection::vec(10u64..5000, 2..15)) {
        let mut a = PrefixAllocator::new();
        let allocs: Vec<AsAllocation> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| AsAllocation::for_as(&mut a, AsId(i as u32 + 1), s).unwrap())
            .collect();
        for i in 0..allocs.len() {
            for j in (i + 1)..allocs.len() {
                for p in &allocs[i].prefixes {
                    for q in &allocs[j].prefixes {
                        prop_assert!(!p.covers(q) && !q.covers(p), "{p} overlaps {q}");
                    }
                }
            }
        }
    }
}
