//! Simulated RouteViews tables.
//!
//! "We used the RouteViews data from the University of Oregon ... the
//! union of many BGP backbone tables contributed by several dozen
//! participating ASes" (Section III-C). We simulate such a snapshot from
//! the ground truth's per-AS allocations: most allocations are advertised
//! (sometimes as more-specifics), a small fraction is missing — which is
//! exactly what produces the paper's 1.5–2.8% unmapped addresses.

use crate::alloc::AsAllocation;
use crate::prefix::{AsId, Ipv4Prefix};
use crate::trie::{PrefixTrie, TrieInvariant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Configuration for synthesizing a route table from allocations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RouteTableConfig {
    /// Probability that an allocated prefix is advertised at all.
    pub coverage: f64,
    /// Probability an advertised prefix is announced as its two
    /// more-specific halves instead of the aggregate (traffic
    /// engineering; exercises genuine longest-prefix matching).
    pub more_specific_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RouteTableConfig {
    fn default() -> Self {
        RouteTableConfig {
            // Tuned so that 1.5–3% of assigned addresses end up unmapped,
            // matching the paper's Mercator (2.8%) and Skitter (1.5%).
            coverage: 0.98,
            more_specific_prob: 0.25,
            seed: 0,
        }
    }
}

/// One advertised route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Advertised prefix.
    pub prefix: Ipv4Prefix,
    /// Originating AS.
    pub origin: AsId,
}

/// A BGP routing-table snapshot supporting origin lookups.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteTable {
    entries: Vec<RouteEntry>,
    trie: PrefixTrie<AsId>,
}

impl RouteTable {
    /// Builds a table directly from explicit routes.
    pub fn from_routes(routes: impl IntoIterator<Item = RouteEntry>) -> Self {
        let mut entries = Vec::new();
        let mut trie = PrefixTrie::new();
        for r in routes {
            trie.insert(r.prefix, r.origin);
            entries.push(r);
        }
        RouteTable { entries, trie }
    }

    /// Synthesizes a RouteViews-like snapshot from per-AS allocations.
    pub fn synthesize(allocations: &[AsAllocation], cfg: &RouteTableConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut routes = Vec::new();
        for alloc in allocations {
            for &prefix in &alloc.prefixes {
                if rng.random::<f64>() >= cfg.coverage {
                    continue; // not advertised: its addresses stay unmapped
                }
                if rng.random::<f64>() < cfg.more_specific_prob {
                    if let Some((lo, hi)) = prefix.split() {
                        routes.push(RouteEntry {
                            prefix: lo,
                            origin: alloc.asn,
                        });
                        routes.push(RouteEntry {
                            prefix: hi,
                            origin: alloc.asn,
                        });
                        continue;
                    }
                }
                routes.push(RouteEntry {
                    prefix,
                    origin: alloc.asn,
                });
            }
        }
        Self::from_routes(routes)
    }

    /// Longest-prefix-match origin lookup. Returns the paper's sentinel
    /// [`AsId::UNMAPPED`] when no advertised prefix covers `ip`.
    pub fn origin(&self, ip: Ipv4Addr) -> AsId {
        match self.trie.lookup(ip) {
            Some((asn, _)) => *asn,
            None => AsId::UNMAPPED,
        }
    }

    /// Origin lookup with the matched prefix length.
    pub fn origin_with_len(&self, ip: Ipv4Addr) -> Option<(AsId, u8)> {
        self.trie.lookup(ip).map(|(a, l)| (*a, l))
    }

    /// All advertised routes.
    pub fn entries(&self) -> &[RouteEntry] {
        &self.entries
    }

    /// Number of advertised routes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Checks that the lookup trie is structurally sound and faithful to
    /// the advertised route list: the trie's contents are exactly
    /// `entries()` (last-wins on duplicate prefixes) and longest-prefix
    /// matching agrees with a brute-force linear scan at the extremes of
    /// every advertised prefix. The pipeline runs this between stages in
    /// validating mode.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TrieInvariant> {
        let reference: Vec<(Ipv4Prefix, AsId)> =
            self.entries.iter().map(|e| (e.prefix, e.origin)).collect();
        self.trie.validate_against(&reference)
    }

    /// Cheap structural screen for a table reloaded from a disk cache:
    /// the trie's arena invariants hold (tree shape, child bounds, depth,
    /// cached length) and every advertised prefix is reachable in the
    /// trie. Near-linear in the table size, so it is safe to run on
    /// every cache load — unlike [`RouteTable::validate`], whose
    /// duplicate-canonicalization is quadratic in the entry count. It
    /// does not compare origin values entry-by-entry (shadowed duplicate
    /// prefixes make "which origin should win" a canonicalization
    /// question); validating pipeline runs still apply the full check.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate_structure(&self) -> Result<(), TrieInvariant> {
        self.trie.validate()?;
        for e in &self.entries {
            if self.trie.get(&e.prefix).is_none() {
                return Err(TrieInvariant::ContentMismatch { prefix: e.prefix });
            }
        }
        if self.trie.len() > self.entries.len() {
            return Err(TrieInvariant::LenMismatch {
                stored: self.trie.len(),
                counted: self.entries.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::PrefixAllocator;

    fn make_allocs(n: usize, per: u64) -> Vec<AsAllocation> {
        let mut a = PrefixAllocator::new();
        (0..n)
            .map(|i| AsAllocation::for_as(&mut a, AsId(i as u32 + 1), per).unwrap())
            .collect()
    }

    #[test]
    fn full_coverage_maps_every_assigned_ip() {
        let mut allocs = make_allocs(10, 500);
        let table = RouteTable::synthesize(
            &allocs,
            &RouteTableConfig {
                coverage: 1.0,
                more_specific_prob: 0.3,
                seed: 1,
            },
        );
        for alloc in &mut allocs {
            let asn = alloc.asn;
            for _ in 0..50 {
                let ip = alloc.next_ip().unwrap();
                assert_eq!(table.origin(ip), asn, "ip {ip}");
            }
        }
    }

    #[test]
    fn zero_coverage_maps_nothing() {
        let allocs = make_allocs(5, 100);
        let table = RouteTable::synthesize(
            &allocs,
            &RouteTableConfig {
                coverage: 0.0,
                more_specific_prob: 0.0,
                seed: 2,
            },
        );
        assert!(table.is_empty());
        assert_eq!(table.origin("1.0.0.5".parse().unwrap()), AsId::UNMAPPED);
    }

    #[test]
    fn partial_coverage_leaves_some_unmapped() {
        let mut allocs = make_allocs(200, 200);
        let table = RouteTable::synthesize(
            &allocs,
            &RouteTableConfig {
                coverage: 0.9,
                more_specific_prob: 0.2,
                seed: 3,
            },
        );
        let mut unmapped = 0;
        let mut total = 0;
        for alloc in &mut allocs {
            for _ in 0..20 {
                let ip = alloc.next_ip().unwrap();
                total += 1;
                if table.origin(ip).is_unmapped() {
                    unmapped += 1;
                }
            }
        }
        let frac = unmapped as f64 / total as f64;
        assert!(frac > 0.02 && frac < 0.25, "unmapped fraction {frac}");
    }

    #[test]
    fn more_specifics_still_map_to_owner() {
        let allocs = make_allocs(50, 1000);
        let table = RouteTable::synthesize(
            &allocs,
            &RouteTableConfig {
                coverage: 1.0,
                more_specific_prob: 1.0,
                seed: 4,
            },
        );
        // Every advertised entry must be a /17..=/25 (split children).
        for e in table.entries() {
            assert!(e.prefix.len() >= 17, "{}", e.prefix);
        }
        let mut allocs = allocs;
        for alloc in &mut allocs {
            let asn = alloc.asn;
            let ip = alloc.next_ip().unwrap();
            assert_eq!(table.origin(ip), asn);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let allocs = make_allocs(20, 300);
        let cfg = RouteTableConfig {
            coverage: 0.9,
            more_specific_prob: 0.5,
            seed: 77,
        };
        let t1 = RouteTable::synthesize(&allocs, &cfg);
        let t2 = RouteTable::synthesize(&allocs, &cfg);
        assert_eq!(t1.entries(), t2.entries());
    }

    #[test]
    fn validate_accepts_synthesized_tables() {
        let allocs = make_allocs(30, 400);
        let table = RouteTable::synthesize(&allocs, &RouteTableConfig::default());
        assert_eq!(table.validate(), Ok(()));
        assert_eq!(RouteTable::from_routes([]).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_trie_desync() {
        // An entry recorded in the route list but missing from the trie:
        // lookups silently return the wrong origin for that prefix. The
        // fields are private, so only in-module corruption can produce
        // this state — which is exactly what validate() guards against.
        let mut table = RouteTable::from_routes([
            RouteEntry {
                prefix: "20.0.0.0/8".parse().unwrap(),
                origin: AsId(10),
            },
            RouteEntry {
                prefix: "20.5.0.0/16".parse().unwrap(),
                origin: AsId(20),
            },
        ]);
        assert_eq!(table.validate(), Ok(()));
        table.entries.push(RouteEntry {
            prefix: "30.0.0.0/8".parse().unwrap(),
            origin: AsId(30),
        });
        assert!(table.validate().is_err());

        // A trie value that contradicts the recorded origin.
        let mut table = RouteTable::from_routes([RouteEntry {
            prefix: "20.0.0.0/8".parse().unwrap(),
            origin: AsId(10),
        }]);
        table.trie.insert("20.0.0.0/8".parse().unwrap(), AsId(99));
        assert!(table.validate().is_err());
    }

    #[test]
    fn validate_structure_accepts_tables_and_serde_roundtrips() {
        let allocs = make_allocs(30, 400);
        let table = RouteTable::synthesize(&allocs, &RouteTableConfig::default());
        assert_eq!(table.validate_structure(), Ok(()));
        // The disk-cache shape: a table frozen through serde must still
        // pass the structural screen.
        let json = serde_json::to_string(&table).unwrap();
        let thawed: RouteTable = serde_json::from_str(&json).unwrap();
        assert_eq!(thawed.validate_structure(), Ok(()));
        assert_eq!(RouteTable::from_routes([]).validate_structure(), Ok(()));
    }

    #[test]
    fn validate_structure_rejects_missing_and_corrupt_tries() {
        // An entry whose prefix the trie never saw: reachable only
        // through deserialization of a tampered cache file.
        let mut table = RouteTable::from_routes([RouteEntry {
            prefix: "20.0.0.0/8".parse().unwrap(),
            origin: AsId(10),
        }]);
        table.entries.push(RouteEntry {
            prefix: "30.0.0.0/8".parse().unwrap(),
            origin: AsId(30),
        });
        assert!(matches!(
            table.validate_structure(),
            Err(TrieInvariant::ContentMismatch { .. })
        ));

        // A trie holding more values than the entry list records.
        let mut table = RouteTable::from_routes([RouteEntry {
            prefix: "20.0.0.0/8".parse().unwrap(),
            origin: AsId(10),
        }]);
        table.trie.insert("30.0.0.0/8".parse().unwrap(), AsId(99));
        assert!(table.validate_structure().is_err());
    }

    #[test]
    fn from_routes_lookup() {
        let table = RouteTable::from_routes([
            RouteEntry {
                prefix: "20.0.0.0/8".parse().unwrap(),
                origin: AsId(10),
            },
            RouteEntry {
                prefix: "20.5.0.0/16".parse().unwrap(),
                origin: AsId(20),
            },
        ]);
        assert_eq!(table.origin("20.5.1.1".parse().unwrap()), AsId(20));
        assert_eq!(table.origin("20.6.1.1".parse().unwrap()), AsId(10));
        assert_eq!(
            table.origin_with_len("20.5.1.1".parse().unwrap()),
            Some((AsId(20), 16))
        );
    }
}
