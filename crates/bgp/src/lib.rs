//! BGP substrate.
//!
//! Section III-C of the paper labels every node with its parent AS "by
//! identifying the longest advertised prefix in a BGP table that matches
//! the IP address and recording the AS which originated that prefix",
//! using RouteViews tables. This crate supplies that machinery:
//!
//! - [`Ipv4Prefix`]: validated CIDR prefixes.
//! - [`PrefixTrie`]: a binary radix trie with longest-prefix matching.
//! - [`PrefixAllocator`]: carves address space into per-AS allocations
//!   (the ground-truth generator uses it to hand out interface IPs).
//! - [`RouteTable`]: a simulated RouteViews snapshot — the union of
//!   advertised prefixes with origin ASes, including the small fraction
//!   of address space that is *not* covered (the paper finds 2.8% /
//!   1.5% of addresses unmapped and groups them into a separate AS).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod prefix;
pub mod relations;
pub mod table;
pub mod trie;

pub use alloc::PrefixAllocator;
pub use prefix::{AsId, Ipv4Prefix, PrefixError};
pub use relations::{AsRelations, Relationship};
pub use table::{RouteTable, RouteTableConfig};
pub use trie::{PrefixTrie, TrieInvariant};
