//! Binary radix trie with longest-prefix matching.
//!
//! This is the lookup structure behind AS origination (Section III-C):
//! for each interface IP we find the longest advertised prefix covering
//! it. The trie stores one node per distinct bit-path; lookup walks at
//! most 32 levels, remembering the deepest value seen.

use crate::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Arena-allocated binary trie mapping [`Ipv4Prefix`] → `V`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node<V> {
    children: [Option<u32>; 2],
    value: Option<V>,
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::default()],
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a prefix, returning the previous value if the prefix was
    /// already present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: V) -> Option<V> {
        let mut node = 0usize;
        let bits = prefix.bits();
        for depth in 0..prefix.len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            node = match self.nodes[node].children[bit] {
                Some(c) => c as usize,
                None => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[node].children[bit] = Some(idx);
                    idx as usize
                }
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix match: the value of the most specific stored prefix
    /// containing `ip`, with the matched prefix length.
    // analyze: hot-path-root
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(&V, u8)> {
        let bits = u32::from(ip);
        let mut node = 0usize;
        let mut best: Option<(&V, u8)> = self.nodes[0].value.as_ref().map(|v| (v, 0));
        for depth in 0..32u8 {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(c) => {
                    node = c as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((v, depth + 1));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Enumerates the stored `(prefix, value)` pairs in bit-path order.
    ///
    /// Walks the node arena from the root; only structurally reachable
    /// entries are reported, which is what [`PrefixTrie::validate`]
    /// compares the arena contents against.
    pub fn entries(&self) -> Vec<(Ipv4Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        // (node, path bits, depth)
        let mut stack: Vec<(usize, u32, u8)> = vec![(0, 0, 0)];
        while let Some((node, bits, depth)) = stack.pop() {
            if node >= self.nodes.len() || depth > 32 {
                continue; // structural damage; validate() reports it
            }
            if let Some(v) = self.nodes[node].value.as_ref() {
                // lint: allow(unwrap): depth <= 32 and path bits are masked to depth
                let prefix = Ipv4Prefix::new(Ipv4Addr::from(bits), depth).expect("valid by walk");
                out.push((prefix, v));
            }
            if depth < 32 {
                for (bit, child) in self.nodes[node].children.iter().enumerate() {
                    if let Some(c) = child {
                        let child_bits = bits | ((bit as u32) << (31 - depth));
                        stack.push((*c as usize, child_bits, depth + 1));
                    }
                }
            }
        }
        out
    }

    /// Exact-match lookup of a stored prefix.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&V> {
        let mut node = 0usize;
        let bits = prefix.bits();
        for depth in 0..prefix.len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            node = self.nodes[node].children[bit]? as usize;
        }
        self.nodes[node].value.as_ref()
    }
}

/// A structural invariant broken in a [`PrefixTrie`].
///
/// Insertion cannot produce any of these; they surface corruption from
/// deserialized snapshots or future mutating code paths. Checked by
/// [`PrefixTrie::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrieInvariant {
    /// A child pointer references a node outside the arena.
    ChildOutOfRange {
        /// Arena index of the node holding the bad pointer.
        node: u32,
    },
    /// The arena is not a tree rooted at node 0 (a node is shared,
    /// cyclic, or unreachable).
    NotATree {
        /// Arena index of the offending node.
        node: u32,
    },
    /// A path descends below 32 bits.
    DepthExceeded,
    /// `len` disagrees with the number of stored values.
    LenMismatch {
        /// The cached count.
        stored: usize,
        /// The count found by walking the arena.
        counted: usize,
    },
    /// The stored entries disagree with an external reference list.
    ContentMismatch {
        /// The prefix that is missing, extra, or carries the wrong value.
        prefix: Ipv4Prefix,
    },
    /// Longest-prefix matching disagrees with a linear scan over the
    /// reference list.
    LpmMismatch {
        /// The probe address where the two methods diverge.
        ip: Ipv4Addr,
    },
}

impl std::fmt::Display for TrieInvariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrieInvariant::ChildOutOfRange { node } => {
                write!(f, "trie node {node} has an out-of-range child pointer")
            }
            TrieInvariant::NotATree { node } => {
                write!(f, "trie node {node} is shared, cyclic, or unreachable")
            }
            TrieInvariant::DepthExceeded => write!(f, "trie path exceeds 32 bits"),
            TrieInvariant::LenMismatch { stored, counted } => {
                write!(f, "trie len {stored} but {counted} values reachable")
            }
            TrieInvariant::ContentMismatch { prefix } => {
                write!(
                    f,
                    "trie contents disagree with the reference list at {}/{}",
                    prefix.network(),
                    prefix.len()
                )
            }
            TrieInvariant::LpmMismatch { ip } => {
                write!(f, "LPM and linear scan disagree at {ip}")
            }
        }
    }
}

impl std::error::Error for TrieInvariant {}

impl<V> PrefixTrie<V> {
    /// Checks the structural invariants of the trie: child pointers stay
    /// inside the arena, every node is reachable from the root exactly
    /// once (the arena is a tree), no path descends below 32 bits, and
    /// the cached `len` equals the number of reachable values.
    ///
    /// Content checks against the original insertions need an external
    /// reference — see [`PrefixTrie::validate_against`]; on a tree-shaped
    /// arena, `lookup` and a scan of [`PrefixTrie::entries`] provably
    /// agree, so a self-referential LPM check would be vacuous.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TrieInvariant> {
        // 1. Tree shape, bounds, depth.
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<(usize, u8)> = vec![(0, 0)];
        while let Some((node, depth)) = stack.pop() {
            if visited[node] {
                return Err(TrieInvariant::NotATree { node: node as u32 });
            }
            visited[node] = true;
            for child in self.nodes[node].children.iter().flatten() {
                let c = *child as usize;
                if c >= self.nodes.len() {
                    return Err(TrieInvariant::ChildOutOfRange { node: node as u32 });
                }
                if depth >= 32 {
                    return Err(TrieInvariant::DepthExceeded);
                }
                stack.push((c, depth + 1));
            }
        }
        if let Some(unreachable) = visited.iter().position(|v| !v) {
            return Err(TrieInvariant::NotATree {
                node: unreachable as u32,
            });
        }

        // 2. Cached length.
        let counted = self.entries().len();
        if counted != self.len {
            return Err(TrieInvariant::LenMismatch {
                stored: self.len,
                counted,
            });
        }
        Ok(())
    }
}

impl<V: PartialEq> PrefixTrie<V> {
    /// Checks the trie against an independent reference list of the
    /// `(prefix, value)` pairs that should be stored (later duplicates
    /// win, matching [`PrefixTrie::insert`] semantics):
    ///
    /// 1. the structural invariants of [`PrefixTrie::validate`] hold;
    /// 2. [`PrefixTrie::lookup`] agrees with a brute-force linear scan of
    ///    the reference list at the first and last address of every
    ///    reference prefix — the extremes of each match range, where
    ///    off-by-one bit errors surface;
    /// 3. the reachable entries are exactly the reference pairs (this
    ///    catches corruption the probe set cannot see, e.g. a value whose
    ///    prefix is shadowed by more-specifics at both extremes).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate_against(&self, reference: &[(Ipv4Prefix, V)]) -> Result<(), TrieInvariant> {
        self.validate()?;

        // Later duplicates win, as with repeated insert().
        let mut canonical: Vec<(Ipv4Prefix, &V)> = Vec::new();
        for (p, v) in reference {
            if let Some(slot) = canonical.iter_mut().find(|(q, _)| q == p) {
                slot.1 = v;
            } else {
                canonical.push((*p, v));
            }
        }

        // 2. LPM vs linear scan at every match-range extreme.
        for (prefix, _) in &canonical {
            let lo = prefix.network();
            let hi = Ipv4Addr::from(u32::from(lo) | (prefix.size() - 1) as u32);
            for probe in [lo, hi] {
                let linear = canonical
                    .iter()
                    .filter(|(p, _)| p.contains(probe))
                    .max_by_key(|(p, _)| p.len());
                let fast = self.lookup(probe);
                let agree = match (linear, fast) {
                    (None, None) => true,
                    (Some((p, v)), Some((fv, flen))) => p.len() == flen && **v == *fv,
                    _ => false,
                };
                if !agree {
                    return Err(TrieInvariant::LpmMismatch { ip: probe });
                }
            }
        }

        // 3. Exact content match.
        let entries = self.entries();
        if entries.len() != canonical.len() {
            let missing = canonical
                .iter()
                .find(|(p, _)| !entries.iter().any(|(q, _)| q == p))
                .map(|(p, _)| *p)
                .or_else(|| entries.first().map(|(p, _)| *p))
                .unwrap_or(Ipv4Prefix::new(Ipv4Addr::UNSPECIFIED, 0).expect("/0 is valid")); // lint: allow(unwrap): /0 always constructs
            return Err(TrieInvariant::ContentMismatch { prefix: missing });
        }
        for (p, v) in &canonical {
            match entries.iter().find(|(q, _)| q == p) {
                Some((_, stored)) if *stored == *v => {}
                _ => return Err(TrieInvariant::ContentMismatch { prefix: *p }),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t: PrefixTrie<u32> = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("1.2.3.4")), None);
    }

    #[test]
    fn basic_insert_and_lookup() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), 100u32);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip("10.200.3.4")), Some((&100, 8)));
        assert_eq!(t.lookup(ip("11.0.0.0")), None);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), 1u32);
        t.insert(pfx("10.1.0.0/16"), 2);
        t.insert(pfx("10.1.2.0/24"), 3);
        assert_eq!(t.lookup(ip("10.1.2.3")), Some((&3, 24)));
        assert_eq!(t.lookup(ip("10.1.9.9")), Some((&2, 16)));
        assert_eq!(t.lookup(ip("10.9.9.9")), Some((&1, 8)));
    }

    #[test]
    fn insertion_order_irrelevant() {
        let mut a = PrefixTrie::new();
        a.insert(pfx("10.1.2.0/24"), 3u32);
        a.insert(pfx("10.0.0.0/8"), 1);
        a.insert(pfx("10.1.0.0/16"), 2);
        assert_eq!(a.lookup(ip("10.1.2.200")), Some((&3, 24)));
        assert_eq!(a.lookup(ip("10.2.0.1")), Some((&1, 8)));
    }

    #[test]
    fn reinsert_replaces_value() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 1u32), None);
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip("10.0.0.1")), Some((&2, 8)));
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("0.0.0.0/0"), 99u32);
        t.insert(pfx("8.8.0.0/16"), 1);
        assert_eq!(t.lookup(ip("1.1.1.1")), Some((&99, 0)));
        assert_eq!(t.lookup(ip("8.8.8.8")), Some((&1, 16)));
    }

    #[test]
    fn host_route() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("1.2.3.4/32"), 7u32);
        assert_eq!(t.lookup(ip("1.2.3.4")), Some((&7, 32)));
        assert_eq!(t.lookup(ip("1.2.3.5")), None);
    }

    #[test]
    fn exact_get() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.1.0.0/16"), 5u32);
        assert_eq!(t.get(&pfx("10.1.0.0/16")), Some(&5));
        assert_eq!(t.get(&pfx("10.0.0.0/8")), None);
        assert_eq!(t.get(&pfx("10.1.0.0/17")), None);
    }

    fn sample_trie() -> PrefixTrie<u32> {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), 1u32);
        t.insert(pfx("10.1.0.0/16"), 2);
        t.insert(pfx("10.1.2.0/24"), 3);
        t.insert(pfx("192.168.0.0/24"), 4);
        t
    }

    #[test]
    fn entries_roundtrip_inserted_prefixes() {
        let t = sample_trie();
        let mut got: Vec<(String, u32)> = t
            .entries()
            .into_iter()
            .map(|(p, v)| (format!("{}/{}", p.network(), p.len()), *v))
            .collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                ("10.0.0.0/8".to_string(), 1),
                ("10.1.0.0/16".to_string(), 2),
                ("10.1.2.0/24".to_string(), 3),
                ("192.168.0.0/24".to_string(), 4),
            ]
        );
    }

    #[test]
    fn validate_accepts_well_formed_tries() {
        assert_eq!(PrefixTrie::<u32>::new().validate(), Ok(()));
        assert_eq!(sample_trie().validate(), Ok(()));
        let mut with_default = sample_trie();
        with_default.insert(pfx("0.0.0.0/0"), 99);
        assert_eq!(with_default.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range_child() {
        let mut t = sample_trie();
        let n = t.nodes.len() as u32;
        t.nodes[0].children[1] = Some(n + 10);
        assert!(matches!(
            t.validate(),
            Err(TrieInvariant::ChildOutOfRange { node: 0 })
        ));
    }

    #[test]
    fn validate_rejects_cycle_and_shared_node() {
        // Cycle back to the root.
        let mut t = sample_trie();
        let leaf = t.nodes.len() - 1;
        t.nodes[leaf].children[0] = Some(0);
        assert!(matches!(t.validate(), Err(TrieInvariant::NotATree { .. })));
        // A node with two parents.
        let mut t = sample_trie();
        let shared = t.nodes[0].children[0];
        t.nodes[0].children[1] = shared;
        assert!(matches!(t.validate(), Err(TrieInvariant::NotATree { .. })));
    }

    #[test]
    fn validate_rejects_unreachable_node() {
        let mut t = sample_trie();
        t.nodes.push(Node::default());
        assert!(matches!(t.validate(), Err(TrieInvariant::NotATree { .. })));
    }

    #[test]
    fn validate_rejects_len_mismatch() {
        let mut t = sample_trie();
        t.len += 1;
        assert_eq!(
            t.validate(),
            Err(TrieInvariant::LenMismatch {
                stored: 5,
                counted: 4
            })
        );
    }

    /// Walk the arena to the node a prefix was inserted at, returning
    /// `(parent, node)` indices. Test-only surgery helper.
    fn path_to(t: &PrefixTrie<u32>, p: &Ipv4Prefix) -> (usize, usize) {
        let bits = p.bits();
        let mut node = 0usize;
        let mut parent = 0usize;
        for depth in 0..p.len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            parent = node;
            node = t.nodes[node].children[bit].unwrap() as usize;
        }
        (parent, node)
    }

    fn sample_reference() -> Vec<(Ipv4Prefix, u32)> {
        vec![
            (pfx("10.0.0.0/8"), 1),
            (pfx("10.1.0.0/16"), 2),
            (pfx("10.1.2.0/24"), 3),
            (pfx("192.168.0.0/24"), 4),
        ]
    }

    #[test]
    fn validate_against_accepts_faithful_trie() {
        assert_eq!(sample_trie().validate_against(&sample_reference()), Ok(()));
        assert_eq!(PrefixTrie::<u32>::new().validate_against(&[]), Ok(()));
        // Later duplicates in the reference win, mirroring insert().
        let mut dup = sample_reference();
        dup.insert(0, (pfx("10.1.2.0/24"), 42));
        assert_eq!(sample_trie().validate_against(&dup), Ok(()));
    }

    #[test]
    fn validate_against_rejects_moved_value() {
        // Move the /24 value one node up (to the /23 position). The tree
        // is still structurally valid and self-consistent — plain
        // validate() accepts it — but lookup() now disagrees with a
        // linear scan of the reference at the /24's extremes.
        let mut t = sample_trie();
        let (parent, node) = path_to(&t, &pfx("10.1.2.0/24"));
        let v = t.nodes[node].value.take().unwrap();
        t.nodes[parent].value = Some(v);
        assert_eq!(t.validate(), Ok(()));
        assert!(matches!(
            t.validate_against(&sample_reference()),
            Err(TrieInvariant::LpmMismatch { .. })
        ));
    }

    #[test]
    fn validate_against_rejects_shadowed_value_corruption() {
        // Corrupt a value whose prefix is shadowed by more-specifics at
        // both extremes of its match range: the LPM probes never compare
        // it, so only the exact-content check can catch the corruption.
        let reference = vec![
            (pfx("10.0.0.0/8"), 1u32),
            (pfx("10.1.0.0/16"), 2),
            (pfx("10.1.0.0/17"), 5),
            (pfx("10.1.128.0/17"), 6),
        ];
        let mut t = PrefixTrie::new();
        for (p, v) in &reference {
            t.insert(*p, *v);
        }
        assert_eq!(t.validate_against(&reference), Ok(()));
        let (_, node) = path_to(&t, &pfx("10.1.0.0/16"));
        t.nodes[node].value = Some(99);
        assert_eq!(
            t.validate_against(&reference),
            Err(TrieInvariant::ContentMismatch {
                prefix: pfx("10.1.0.0/16")
            })
        );
    }

    #[test]
    fn adjacent_prefixes_do_not_leak() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("192.168.0.0/24"), 1u32);
        t.insert(pfx("192.168.1.0/24"), 2);
        assert_eq!(t.lookup(ip("192.168.0.255")), Some((&1, 24)));
        assert_eq!(t.lookup(ip("192.168.1.0")), Some((&2, 24)));
        assert_eq!(t.lookup(ip("192.168.2.0")), None);
    }

    #[test]
    fn default_route_shadowed_by_more_specifics() {
        // A /0 matches every address but must lose to any longer match —
        // and must still answer (with length 0) for addresses outside
        // every covering prefix.
        let mut t = PrefixTrie::new();
        t.insert(pfx("0.0.0.0/0"), 1u32);
        t.insert(pfx("10.0.0.0/8"), 2);
        t.insert(pfx("10.1.0.0/16"), 3);
        assert_eq!(t.lookup(ip("10.1.2.3")), Some((&3, 16)));
        assert_eq!(t.lookup(ip("10.200.0.1")), Some((&2, 8)));
        assert_eq!(t.lookup(ip("172.16.0.1")), Some((&1, 0)));
        assert_eq!(t.lookup(ip("0.0.0.0")), Some((&1, 0)));
        assert_eq!(t.lookup(ip("255.255.255.255")), Some((&1, 0)));
        assert_eq!(t.validate(), Ok(()));
    }
}
