//! Binary radix trie with longest-prefix matching.
//!
//! This is the lookup structure behind AS origination (Section III-C):
//! for each interface IP we find the longest advertised prefix covering
//! it. The trie stores one node per distinct bit-path; lookup walks at
//! most 32 levels, remembering the deepest value seen.

use crate::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Arena-allocated binary trie mapping [`Ipv4Prefix`] → `V`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node<V> {
    children: [Option<u32>; 2],
    value: Option<V>,
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::default()],
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a prefix, returning the previous value if the prefix was
    /// already present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: V) -> Option<V> {
        let mut node = 0usize;
        let bits = prefix.bits();
        for depth in 0..prefix.len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            node = match self.nodes[node].children[bit] {
                Some(c) => c as usize,
                None => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[node].children[bit] = Some(idx);
                    idx as usize
                }
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix match: the value of the most specific stored prefix
    /// containing `ip`, with the matched prefix length.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(&V, u8)> {
        let bits = u32::from(ip);
        let mut node = 0usize;
        let mut best: Option<(&V, u8)> = self.nodes[0].value.as_ref().map(|v| (v, 0));
        for depth in 0..32u8 {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(c) => {
                    node = c as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((v, depth + 1));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-match lookup of a stored prefix.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&V> {
        let mut node = 0usize;
        let bits = prefix.bits();
        for depth in 0..prefix.len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            node = self.nodes[node].children[bit]? as usize;
        }
        self.nodes[node].value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t: PrefixTrie<u32> = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("1.2.3.4")), None);
    }

    #[test]
    fn basic_insert_and_lookup() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), 100u32);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip("10.200.3.4")), Some((&100, 8)));
        assert_eq!(t.lookup(ip("11.0.0.0")), None);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), 1u32);
        t.insert(pfx("10.1.0.0/16"), 2);
        t.insert(pfx("10.1.2.0/24"), 3);
        assert_eq!(t.lookup(ip("10.1.2.3")), Some((&3, 24)));
        assert_eq!(t.lookup(ip("10.1.9.9")), Some((&2, 16)));
        assert_eq!(t.lookup(ip("10.9.9.9")), Some((&1, 8)));
    }

    #[test]
    fn insertion_order_irrelevant() {
        let mut a = PrefixTrie::new();
        a.insert(pfx("10.1.2.0/24"), 3u32);
        a.insert(pfx("10.0.0.0/8"), 1);
        a.insert(pfx("10.1.0.0/16"), 2);
        assert_eq!(a.lookup(ip("10.1.2.200")), Some((&3, 24)));
        assert_eq!(a.lookup(ip("10.2.0.1")), Some((&1, 8)));
    }

    #[test]
    fn reinsert_replaces_value() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 1u32), None);
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip("10.0.0.1")), Some((&2, 8)));
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("0.0.0.0/0"), 99u32);
        t.insert(pfx("8.8.0.0/16"), 1);
        assert_eq!(t.lookup(ip("1.1.1.1")), Some((&99, 0)));
        assert_eq!(t.lookup(ip("8.8.8.8")), Some((&1, 16)));
    }

    #[test]
    fn host_route() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("1.2.3.4/32"), 7u32);
        assert_eq!(t.lookup(ip("1.2.3.4")), Some((&7, 32)));
        assert_eq!(t.lookup(ip("1.2.3.5")), None);
    }

    #[test]
    fn exact_get() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.1.0.0/16"), 5u32);
        assert_eq!(t.get(&pfx("10.1.0.0/16")), Some(&5));
        assert_eq!(t.get(&pfx("10.0.0.0/8")), None);
        assert_eq!(t.get(&pfx("10.1.0.0/17")), None);
    }

    #[test]
    fn adjacent_prefixes_do_not_leak() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("192.168.0.0/24"), 1u32);
        t.insert(pfx("192.168.1.0/24"), 2);
        assert_eq!(t.lookup(ip("192.168.0.255")), Some((&1, 24)));
        assert_eq!(t.lookup(ip("192.168.1.0")), Some((&2, 24)));
        assert_eq!(t.lookup(ip("192.168.2.0")), None);
    }
}
