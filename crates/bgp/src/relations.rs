//! AS business relationships and valley-free path validation.
//!
//! The paper's motivation for AS labels is "to simulate interdomain
//! routing". Interdomain routing is shaped by business relationships:
//! customer–provider and peer–peer edges, with the *valley-free* rule
//! (Gao 2001): a path may climb customer→provider edges, cross at most
//! one peer edge at the top, then descend provider→customer — money
//! never flows uphill twice.
//!
//! Relationships are inferred with the classic size heuristic the
//! paper's reference [36] leans on (degree/size determines role): on an
//! AS-graph edge, the much larger AS is the provider; similar sizes
//! peer.

use crate::prefix::AsId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Relationship of an AS-graph edge, read from the first AS's side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relationship {
    /// The first AS is a customer of the second (money flows 1 → 2).
    CustomerToProvider,
    /// The first AS is the provider of the second.
    ProviderToCustomer,
    /// Settlement-free peers.
    PeerToPeer,
}

impl Relationship {
    /// The same edge read from the other side.
    pub fn reversed(self) -> Relationship {
        match self {
            Relationship::CustomerToProvider => Relationship::ProviderToCustomer,
            Relationship::ProviderToCustomer => Relationship::CustomerToProvider,
            Relationship::PeerToPeer => Relationship::PeerToPeer,
        }
    }
}

/// A relationship-annotated AS graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsRelations {
    edges: HashMap<(AsId, AsId), Relationship>,
}

impl AsRelations {
    /// Infers relationships from AS sizes: on each adjacency, the AS at
    /// least `provider_ratio` times larger is the provider; otherwise
    /// the edge is a peering.
    pub fn infer(
        sizes: &HashMap<AsId, usize>,
        adjacencies: impl IntoIterator<Item = (AsId, AsId)>,
        provider_ratio: f64,
    ) -> Self {
        let mut edges = HashMap::new();
        for (a, b) in adjacencies {
            if a == b {
                continue;
            }
            let sa = sizes.get(&a).copied().unwrap_or(1).max(1) as f64;
            let sb = sizes.get(&b).copied().unwrap_or(1).max(1) as f64;
            let rel = if sa >= provider_ratio * sb {
                Relationship::ProviderToCustomer
            } else if sb >= provider_ratio * sa {
                Relationship::CustomerToProvider
            } else {
                Relationship::PeerToPeer
            };
            edges.insert(key(a, b), if a < b { rel } else { rel.reversed() });
        }
        AsRelations { edges }
    }

    /// The relationship of edge (from, to), read from `from`'s side.
    pub fn get(&self, from: AsId, to: AsId) -> Option<Relationship> {
        let rel = self.edges.get(&key(from, to))?;
        Some(if from < to { *rel } else { rel.reversed() })
    }

    /// Number of annotated edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Validates the valley-free property of an AS path: zero or more
    /// customer→provider steps, at most one peer step, then zero or more
    /// provider→customer steps. Consecutive identical ASes are treated
    /// as one hop. Unknown edges invalidate the path.
    pub fn is_valley_free(&self, path: &[AsId]) -> bool {
        #[derive(PartialEq, Clone, Copy, PartialOrd)]
        enum Phase {
            Up,
            Peak,
            Down,
        }
        let mut phase = Phase::Up;
        let mut prev: Option<AsId> = None;
        for &asn in path {
            let Some(p) = prev else {
                prev = Some(asn);
                continue;
            };
            if p == asn {
                continue;
            }
            let Some(rel) = self.get(p, asn) else {
                return false;
            };
            phase = match (phase, rel) {
                (Phase::Up, Relationship::CustomerToProvider) => Phase::Up,
                (Phase::Up, Relationship::PeerToPeer) => Phase::Peak,
                (Phase::Up | Phase::Peak | Phase::Down, Relationship::ProviderToCustomer) => {
                    Phase::Down
                }
                _ => return false,
            };
            prev = Some(asn);
        }
        true
    }
}

fn key(a: AsId, b: AsId) -> (AsId, AsId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_graph() -> AsRelations {
        // AS1 huge (tier-1), AS2 and AS3 mid (peers of each other,
        // customers of AS1), AS4 small (customer of AS2).
        let mut sizes = HashMap::new();
        sizes.insert(AsId(1), 1000);
        sizes.insert(AsId(2), 100);
        sizes.insert(AsId(3), 90);
        sizes.insert(AsId(4), 5);
        AsRelations::infer(
            &sizes,
            [
                (AsId(1), AsId(2)),
                (AsId(1), AsId(3)),
                (AsId(2), AsId(3)),
                (AsId(2), AsId(4)),
            ],
            3.0,
        )
    }

    #[test]
    fn inference_by_size() {
        let g = rel_graph();
        assert_eq!(
            g.get(AsId(1), AsId(2)),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(
            g.get(AsId(2), AsId(1)),
            Some(Relationship::CustomerToProvider)
        );
        assert_eq!(g.get(AsId(2), AsId(3)), Some(Relationship::PeerToPeer));
        assert_eq!(g.get(AsId(3), AsId(2)), Some(Relationship::PeerToPeer));
        assert_eq!(
            g.get(AsId(2), AsId(4)),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(g.get(AsId(1), AsId(4)), None);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn valid_valley_free_paths() {
        let g = rel_graph();
        // Up, down: 4 → 2 → 1 is pure uphill.
        assert!(g.is_valley_free(&[AsId(4), AsId(2), AsId(1)]));
        // Up to provider, down to sibling: 4 → 2 → 3? 2-3 is a peer
        // step, allowed as the single peak crossing.
        assert!(g.is_valley_free(&[AsId(4), AsId(2), AsId(3)]));
        // Up, peak, down: 4 → 2 → 3 then 3 → ? 3 has no customers;
        // full mountain: 4 → 2 → 1 → 3 (up, up, down).
        assert!(g.is_valley_free(&[AsId(4), AsId(2), AsId(1), AsId(3)]));
        // Trivial paths.
        assert!(g.is_valley_free(&[AsId(2)]));
        assert!(g.is_valley_free(&[]));
    }

    #[test]
    fn valleys_rejected() {
        let g = rel_graph();
        // Down then up: 1 → 2 → 1? repeated AS collapses... use
        // 1 → 2 then 2 → 1: phase Down then C2P = valley.
        assert!(!g.is_valley_free(&[AsId(1), AsId(2), AsId(1)]));
        // Down then peer: 1 → 2 (down) then 2 → 3 (peer) is invalid.
        assert!(!g.is_valley_free(&[AsId(1), AsId(2), AsId(3)]));
        // Two peer crossings: 2 → 3 (peer) then 3 → 2 (peer).
        assert!(!g.is_valley_free(&[AsId(2), AsId(3), AsId(2)]));
    }

    #[test]
    fn unknown_edge_invalidates() {
        let g = rel_graph();
        assert!(!g.is_valley_free(&[AsId(1), AsId(4)]));
    }

    #[test]
    fn repeated_as_hops_collapse() {
        let g = rel_graph();
        // Intra-AS router hops show up as repeated AS labels.
        assert!(g.is_valley_free(&[AsId(4), AsId(4), AsId(2), AsId(2), AsId(1)]));
    }
}
