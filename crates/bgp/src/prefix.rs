//! IPv4 prefixes and AS numbers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An autonomous system number.
///
/// `AsId(0)` is reserved as the paper's "separate AS" for unmapped
/// addresses ("We grouped these into a separate AS, which was omitted in
/// our analysis").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl AsId {
    /// The sentinel AS holding unmapped addresses.
    pub const UNMAPPED: AsId = AsId(0);

    /// Whether this is the unmapped sentinel.
    pub fn is_unmapped(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A validated IPv4 CIDR prefix: host bits below the mask are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

/// Errors constructing or parsing prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length above 32.
    BadLength(u8),
    /// Host bits set below the prefix length.
    HostBitsSet,
    /// Unparseable textual form.
    Parse(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::BadLength(l) => write!(f, "prefix length {l} exceeds 32"),
            PrefixError::HostBitsSet => write!(f, "address has host bits set below the mask"),
            PrefixError::Parse(s) => write!(f, "cannot parse prefix from {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

impl Ipv4Prefix {
    /// Constructs a prefix from a network address and length.
    ///
    /// # Errors
    ///
    /// Fails if `len > 32` or host bits are set.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::BadLength(len));
        }
        let a = u32::from(addr);
        if len < 32 && a & (u32::MAX >> len) != 0 {
            return Err(PrefixError::HostBitsSet);
        }
        Ok(Ipv4Prefix { addr: a, len })
    }

    /// Constructs a prefix from raw bits, masking host bits instead of
    /// failing (useful when deriving the enclosing prefix of an address).
    pub fn containing(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::BadLength(len));
        }
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Ok(Ipv4Prefix {
            addr: u32::from(addr) & mask,
            len,
        })
    }

    /// Network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Always false (a prefix is never "empty"); present to satisfy the
    /// `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Raw network bits.
    pub fn bits(&self) -> u32 {
        self.addr
    }

    /// Number of addresses covered (2^(32−len), saturating for /0).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u64)
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - self.len);
        (u32::from(ip) & mask) == self.addr
    }

    /// Whether `other` is a subnet of (or equal to) this prefix.
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && self.contains(other.network())
    }

    /// The `i`-th address within the prefix, or `None` past the end.
    pub fn nth(&self, i: u64) -> Option<Ipv4Addr> {
        if i >= self.size() {
            return None;
        }
        Some(Ipv4Addr::from(self.addr.wrapping_add(i as u32)))
    }

    /// Splits into the two child prefixes one bit longer, or `None` for /32.
    pub fn split(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let child_len = self.len + 1;
        let low = Ipv4Prefix {
            addr: self.addr,
            len: child_len,
        };
        let high = Ipv4Prefix {
            addr: self.addr | (1u32 << (32 - child_len)),
            len: child_len,
        };
        Some((low, high))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Parse(s.to_string()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| PrefixError::Parse(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| PrefixError::Parse(s.to_string()))?;
        Ipv4Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn construction_and_display() {
        let p = pfx("10.1.0.0/16");
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(p.len(), 16);
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(p.size(), 65536);
    }

    #[test]
    fn rejects_host_bits() {
        assert_eq!(
            Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 1), 16).unwrap_err(),
            PrefixError::HostBitsSet
        );
    }

    #[test]
    fn rejects_bad_length() {
        assert_eq!(
            Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 33).unwrap_err(),
            PrefixError::BadLength(33)
        );
    }

    #[test]
    fn containing_masks_host_bits() {
        let p = Ipv4Prefix::containing(Ipv4Addr::new(10, 1, 2, 3), 24).unwrap();
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn contains_membership() {
        let p = pfx("192.168.4.0/22");
        assert!(p.contains(Ipv4Addr::new(192, 168, 4, 0)));
        assert!(p.contains(Ipv4Addr::new(192, 168, 7, 255)));
        assert!(!p.contains(Ipv4Addr::new(192, 168, 8, 0)));
        assert!(!p.contains(Ipv4Addr::new(192, 168, 3, 255)));
    }

    #[test]
    fn default_route_contains_all() {
        let p = pfx("0.0.0.0/0");
        assert!(p.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(p.contains(Ipv4Addr::new(0, 0, 0, 0)));
    }

    #[test]
    fn covers_subnets() {
        let p16 = pfx("10.1.0.0/16");
        let p24 = pfx("10.1.5.0/24");
        assert!(p16.covers(&p24));
        assert!(!p24.covers(&p16));
        assert!(p16.covers(&p16));
        assert!(!p16.covers(&pfx("10.2.0.0/24")));
    }

    #[test]
    fn nth_addresses() {
        let p = pfx("10.0.0.0/30");
        assert_eq!(p.nth(0), Some(Ipv4Addr::new(10, 0, 0, 0)));
        assert_eq!(p.nth(3), Some(Ipv4Addr::new(10, 0, 0, 3)));
        assert_eq!(p.nth(4), None);
    }

    #[test]
    fn split_children() {
        let p = pfx("10.0.0.0/8");
        let (lo, hi) = p.split().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        assert!(p.covers(&lo) && p.covers(&hi));
        assert!(pfx("1.2.3.4/32").split().is_none());
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            "10.0.0.0".parse::<Ipv4Prefix>(),
            Err(PrefixError::Parse(_))
        ));
        assert!(matches!(
            "banana/8".parse::<Ipv4Prefix>(),
            Err(PrefixError::Parse(_))
        ));
        assert!(matches!(
            "10.0.0.0/99".parse::<Ipv4Prefix>(),
            Err(PrefixError::BadLength(99))
        ));
    }

    #[test]
    fn as_id_sentinel() {
        assert!(AsId::UNMAPPED.is_unmapped());
        assert!(!AsId(7018).is_unmapped());
        assert_eq!(AsId(7018).to_string(), "AS7018");
    }

    #[test]
    fn slash32_prefix() {
        let p = pfx("1.2.3.4/32");
        assert_eq!(p.size(), 1);
        assert!(p.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert!(!p.contains(Ipv4Addr::new(1, 2, 3, 5)));
    }
}
