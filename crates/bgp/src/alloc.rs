//! Address-space allocation.
//!
//! The ground-truth generator needs to hand every AS a realistic set of
//! prefixes and then assign interface IPs from them, so that (a) the
//! longest-prefix-match mapping recovers the true AS for most addresses,
//! and (b) whois-style registry records (per-allocation organizations)
//! can be synthesized by the geolocation substrate.

use crate::prefix::{AsId, Ipv4Prefix, PrefixError};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Sequentially carves the public IPv4 space into prefix allocations.
///
/// Allocation starts at 1.0.0.0 and walks upward, skipping reserved
/// ranges (0/8, 10/8, 127/8, 169.254/16, 172.16/12, 192.168/16, 224/3).
/// Each call returns the next aligned block of the requested size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixAllocator {
    cursor: u32,
}

/// Error from allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The IPv4 space below multicast is exhausted.
    SpaceExhausted,
    /// Invalid requested prefix length.
    BadLength(u8),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::SpaceExhausted => write!(f, "IPv4 unicast space exhausted"),
            AllocError::BadLength(l) => write!(f, "cannot allocate a /{l}"),
        }
    }
}

impl std::error::Error for AllocError {}

const RESERVED: &[(&str, u8)] = &[
    ("0.0.0.0", 8),
    ("10.0.0.0", 8),
    ("127.0.0.0", 8),
    ("169.254.0.0", 16),
    ("172.16.0.0", 12),
    ("192.168.0.0", 16),
];

impl Default for PrefixAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixAllocator {
    /// Creates an allocator starting at 1.0.0.0.
    pub fn new() -> Self {
        PrefixAllocator {
            cursor: u32::from(Ipv4Addr::new(1, 0, 0, 0)),
        }
    }

    /// Allocates the next aligned prefix of length `len` (8..=30).
    ///
    /// # Errors
    ///
    /// [`AllocError::BadLength`] for lengths outside 8..=30 and
    /// [`AllocError::SpaceExhausted`] when allocation would reach
    /// multicast space (224.0.0.0).
    pub fn allocate(&mut self, len: u8) -> Result<Ipv4Prefix, AllocError> {
        if !(8..=30).contains(&len) {
            return Err(AllocError::BadLength(len));
        }
        let size = 1u32 << (32 - len);
        loop {
            // Align cursor up to the block size.
            let aligned = self.cursor.div_ceil(size) * size;
            let end = aligned
                .checked_add(size)
                .ok_or(AllocError::SpaceExhausted)?;
            if aligned >= u32::from(Ipv4Addr::new(224, 0, 0, 0)) {
                return Err(AllocError::SpaceExhausted);
            }
            let candidate = Ipv4Prefix::new(Ipv4Addr::from(aligned), len)
                .map_err(|_: PrefixError| AllocError::BadLength(len))?;
            if let Some(reserved) = overlapping_reserved(&candidate) {
                // Jump past the reserved block.
                let r_end = reserved.bits() + reserved.size() as u32;
                self.cursor = r_end;
                continue;
            }
            self.cursor = end;
            return Ok(candidate);
        }
    }
}

fn overlapping_reserved(p: &Ipv4Prefix) -> Option<Ipv4Prefix> {
    for (addr, len) in RESERVED {
        let r = Ipv4Prefix::new(addr.parse().expect("const addr"), *len).expect("const prefix"); // lint: allow(unwrap): RESERVED entries are compile-time constants
        if r.covers(p) || p.covers(&r) {
            return Some(r);
        }
    }
    None
}

/// An AS's allocated prefixes with a sequential host-address cursor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsAllocation {
    /// The owning AS.
    pub asn: AsId,
    /// Allocated blocks, in allocation order.
    pub prefixes: Vec<Ipv4Prefix>,
    next: u64,
}

impl AsAllocation {
    /// Creates an allocation for `asn` with enough address space for at
    /// least `needed` host addresses, drawn from `alloc` as one or more
    /// blocks no larger than `/16` (mirroring how real ASes hold several
    /// mid-size allocations rather than one giant one).
    ///
    /// # Errors
    ///
    /// Propagates allocator exhaustion.
    pub fn for_as(alloc: &mut PrefixAllocator, asn: AsId, needed: u64) -> Result<Self, AllocError> {
        let mut prefixes = Vec::new();
        let mut have = 0u64;
        while have < needed {
            let remaining = needed - have;
            // Pick the smallest single block (>= /24 granularity, <= /16)
            // that covers the remainder; large ASes thus get several /16s.
            let mut len = 24u8;
            while len > 16 && (1u64 << (32 - len)) < remaining {
                len -= 1;
            }
            let p = alloc.allocate(len)?;
            have += p.size();
            prefixes.push(p);
        }
        Ok(AsAllocation {
            asn,
            prefixes,
            next: 0,
        })
    }

    /// Total address capacity.
    pub fn capacity(&self) -> u64 {
        self.prefixes.iter().map(|p| p.size()).sum()
    }

    /// Hands out the next unused host address, or `None` when exhausted.
    /// Network (.0-offset) and broadcast-ish (last) addresses of each
    /// block are skipped.
    pub fn next_ip(&mut self) -> Option<Ipv4Addr> {
        loop {
            let mut idx = self.next;
            let mut found = None;
            for p in &self.prefixes {
                if idx < p.size() {
                    found = Some((p, idx));
                    break;
                }
                idx -= p.size();
            }
            let (p, off) = found?;
            self.next += 1;
            // Skip first and last address of each block.
            if off == 0 || off == p.size() - 1 {
                continue;
            }
            return p.nth(off);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocation_is_disjoint() {
        let mut a = PrefixAllocator::new();
        let p1 = a.allocate(16).unwrap();
        let p2 = a.allocate(16).unwrap();
        let p3 = a.allocate(20).unwrap();
        assert!(!p1.covers(&p2) && !p2.covers(&p1));
        assert!(!p1.covers(&p3) && !p2.covers(&p3));
    }

    #[test]
    fn allocations_skip_reserved_space() {
        let mut a = PrefixAllocator::new();
        // Burn through enough space to cross 10/8.
        for _ in 0..300 {
            let p = a.allocate(16).unwrap();
            assert!(overlapping_reserved(&p).is_none(), "allocated reserved {p}");
        }
    }

    #[test]
    fn bad_lengths_rejected() {
        let mut a = PrefixAllocator::new();
        assert_eq!(a.allocate(4).unwrap_err(), AllocError::BadLength(4));
        assert_eq!(a.allocate(31).unwrap_err(), AllocError::BadLength(31));
    }

    #[test]
    fn as_allocation_covers_need() {
        let mut a = PrefixAllocator::new();
        let alloc = AsAllocation::for_as(&mut a, AsId(1), 5000).unwrap();
        assert!(alloc.capacity() >= 5000);
        // 5000 needs a /20 (4096 < 5000 <= 8192 -> /19).
        assert!(alloc.prefixes.iter().all(|p| (16..=24).contains(&p.len())));
    }

    #[test]
    fn big_as_gets_multiple_blocks() {
        let mut a = PrefixAllocator::new();
        let alloc = AsAllocation::for_as(&mut a, AsId(2), 200_000).unwrap();
        assert!(alloc.prefixes.len() >= 3, "{:?}", alloc.prefixes);
        assert!(alloc.capacity() >= 200_000);
    }

    #[test]
    fn next_ip_yields_unique_in_prefix_addresses() {
        let mut a = PrefixAllocator::new();
        let mut alloc = AsAllocation::for_as(&mut a, AsId(3), 300).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..250 {
            let ip = alloc.next_ip().expect("capacity");
            assert!(seen.insert(ip), "duplicate {ip}");
            assert!(
                alloc.prefixes.iter().any(|p| p.contains(ip)),
                "{ip} outside allocation"
            );
        }
    }

    #[test]
    fn next_ip_skips_network_and_last() {
        let mut a = PrefixAllocator::new();
        let mut alloc = AsAllocation::for_as(&mut a, AsId(4), 10).unwrap();
        let p = alloc.prefixes[0];
        let mut count = 0;
        while let Some(ip) = alloc.next_ip() {
            assert_ne!(ip, p.nth(0).unwrap());
            assert_ne!(ip, p.nth(p.size() - 1).unwrap());
            count += 1;
        }
        assert_eq!(count as u64, p.size() - 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = PrefixAllocator::new();
        let mut alloc = AsAllocation::for_as(&mut a, AsId(5), 100).unwrap();
        let cap = alloc.capacity();
        for _ in 0..cap {
            let _ = alloc.next_ip();
        }
        assert_eq!(alloc.next_ip(), None);
    }
}
