//! The paper's world economic model.
//!
//! Table III tabulates, per economic region: population (CIESIN), number
//! of Skitter interfaces mapped into the region, and online users (Nua
//! surveys). The table's headline observation: people-per-interface
//! varies by a factor >100 across regions, while online-users-per-
//! interface varies only ~4×. Our synthetic world is calibrated against
//! these constants so the reproduced Table III exhibits the same two
//! spreads.

use crate::synth::SyntheticPopulation;
use geotopo_geo::{Region, RegionSet};
use serde::{Deserialize, Serialize};

/// Economic calibration for one world region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EconomicProfile {
    /// The region box.
    pub region: Region,
    /// Total population, persons (paper's Table III, CIESIN).
    pub population: f64,
    /// Online users, persons (paper's Table III, Nua).
    pub online_users: f64,
    /// Whether the region is economically developed (drives the synthetic
    /// population profile and infrastructure density).
    pub developed: bool,
}

impl EconomicProfile {
    /// Online penetration: fraction of the population that is online.
    pub fn online_fraction(&self) -> f64 {
        if self.population > 0.0 {
            self.online_users / self.population
        } else {
            0.0
        }
    }

    /// The synthetic-population generator configuration for this region.
    pub fn population_config(&self) -> SyntheticPopulation {
        if self.developed {
            SyntheticPopulation::developed(self.region.clone(), self.population)
        } else {
            SyntheticPopulation::developing(self.region.clone(), self.population)
        }
    }
}

/// The world: all economic regions of the paper's Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldModel {
    /// Per-region profiles, in Table III row order.
    pub regions: Vec<EconomicProfile>,
}

impl WorldModel {
    /// Builds the world model with the paper's Table III constants.
    ///
    /// Population and online-user counts are the paper's values
    /// (millions): Africa 837/4.15, South America 341/21.9, Mexico
    /// 154/3.42, W. Europe 366/143, Japan 136/47.1, Australia 18/10.1,
    /// USA 299/166.
    pub fn paper() -> Self {
        let m = 1e6;
        let regions = RegionSet::economic_regions();
        let by_name = |name: &str| -> Region {
            regions
                .iter()
                .find(|r| r.name == name)
                .cloned()
                .unwrap_or_else(|| panic!("region {name} missing"))
        };
        WorldModel {
            regions: vec![
                EconomicProfile {
                    region: by_name("Africa"),
                    population: 837.0 * m,
                    online_users: 4.15 * m,
                    developed: false,
                },
                EconomicProfile {
                    region: by_name("South America"),
                    population: 341.0 * m,
                    online_users: 21.9 * m,
                    developed: false,
                },
                EconomicProfile {
                    region: by_name("Mexico"),
                    population: 154.0 * m,
                    online_users: 3.42 * m,
                    developed: false,
                },
                EconomicProfile {
                    region: by_name("W. Europe"),
                    population: 366.0 * m,
                    online_users: 143.0 * m,
                    developed: true,
                },
                EconomicProfile {
                    region: by_name("Japan"),
                    population: 136.0 * m,
                    online_users: 47.1 * m,
                    developed: true,
                },
                EconomicProfile {
                    region: by_name("Australia"),
                    population: 18.0 * m,
                    online_users: 10.1 * m,
                    developed: true,
                },
                EconomicProfile {
                    region: by_name("USA"),
                    population: 299.0 * m,
                    online_users: 166.0 * m,
                    developed: true,
                },
            ],
        }
    }

    /// World totals (paper: 5,653M people, 513M online). Our totals are
    /// the sums over modelled regions, which cover less than the globe.
    pub fn total_population(&self) -> f64 {
        self.regions.iter().map(|r| r.population).sum()
    }

    /// Total online users over modelled regions.
    pub fn total_online(&self) -> f64 {
        self.regions.iter().map(|r| r.online_users).sum()
    }

    /// Looks up a profile by region name.
    pub fn profile(&self, name: &str) -> Option<&EconomicProfile> {
        self.regions.iter().find(|r| r.region.name == name)
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact expected values; bitwise float equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn paper_constants_present() {
        let w = WorldModel::paper();
        assert_eq!(w.regions.len(), 7);
        let usa = w.profile("USA").unwrap();
        assert_eq!(usa.population, 299e6);
        assert_eq!(usa.online_users, 166e6);
        assert!(usa.developed);
        let africa = w.profile("Africa").unwrap();
        assert!(!africa.developed);
    }

    #[test]
    fn online_fraction_sane() {
        let w = WorldModel::paper();
        for r in &w.regions {
            let f = r.online_fraction();
            assert!((0.0..=1.0).contains(&f), "{}: {f}", r.region.name);
        }
        // USA penetration (~55%) far exceeds Africa (~0.5%).
        assert!(w.profile("USA").unwrap().online_fraction() > 0.5);
        assert!(w.profile("Africa").unwrap().online_fraction() < 0.01);
    }

    #[test]
    fn totals_sum_regions() {
        let w = WorldModel::paper();
        assert!((w.total_population() - 2151e6).abs() < 1e6);
        assert!((w.total_online() - 395.67e6).abs() < 1e6);
    }

    #[test]
    fn unknown_region_is_none() {
        assert!(WorldModel::paper().profile("Atlantis").is_none());
    }

    #[test]
    fn population_config_matches_development() {
        let w = WorldModel::paper();
        let us_cfg = w.profile("USA").unwrap().population_config();
        let af_cfg = w.profile("Africa").unwrap().population_config();
        assert!(us_cfg.rural_fraction < af_cfg.rural_fraction);
        assert!(us_cfg.n_cities > af_cfg.n_cities);
    }
}
