//! Synthetic gridded population — the workspace's substitute for the
//! CIESIN "Gridded Population of the World" dataset the paper uses
//! (Section IV, reference [6]).
//!
//! The paper tallies population inside 75-arcmin patches and regresses
//! router counts against it. What that analysis needs from the population
//! data is its *statistical structure*: a heavy-tailed spatial density in
//! which a few urban cells hold most of the people (real population
//! follows Zipf's law across cities and is fractal in space). The
//! [`synth`] module generates exactly that: Zipf-ranked cities spread by
//! Gaussian kernels over a rural background, calibrated to per-region
//! totals from the paper's Table III.
//!
//! - [`PopulationGrid`]: a raster of persons per cell over a region, with
//!   weighted point sampling and aggregation onto analysis patch grids.
//! - [`synth::SyntheticPopulation`]: the generator.
//! - [`world`]: the paper's economic-region model (Table III constants:
//!   population and Nua online-user counts per region).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod synth;
pub mod world;

pub use grid::{PointSampler, PopulationGrid};
pub use synth::SyntheticPopulation;
pub use world::{EconomicProfile, WorldModel};
