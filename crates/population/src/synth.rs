//! Synthetic population synthesis.
//!
//! Real gridded population (the CIESIN data the paper uses) is dominated
//! by a Zipf law across city sizes and strong spatial clustering. We
//! reproduce that structure with a three-layer model:
//!
//! 1. **Cities**: `n_cities` centres placed in the region. City ranks get
//!    Zipf-distributed population shares (`P_k ∝ k^{-zipf_exponent}`).
//!    Placement is *scale-free clustered*: each city either attaches near
//!    an existing city at a Pareto-distributed offset (no characteristic
//!    spacing — a fixed cluster radius would punch a visible hole into
//!    the pair-distance distribution and hence into every distance
//!    analysis) or is placed uniformly. The result is the fractal point
//!    pattern (box-counting dimension well below 2) observed in real
//!    population data.
//! 2. **Urban kernels**: each city spreads its population over nearby
//!    cells with a Gaussian kernel whose radius grows with city size
//!    (bigger cities sprawl further).
//! 3. **Rural background**: a small uniform share spread over all cells.
//!
//! The result is rescaled to an exact target total.

use crate::grid::{PopulationError, PopulationGrid};
use geotopo_geo::{GeoPoint, PatchGrid, Region};
use geotopo_stats::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for synthesizing a region's population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticPopulation {
    /// Region to cover.
    pub region: Region,
    /// Target total population (persons).
    pub total_population: f64,
    /// Raster resolution in arc-minutes (default 15).
    pub resolution_arcmin: f64,
    /// Number of cities.
    pub n_cities: usize,
    /// Zipf exponent across city ranks (≈1 for real city systems).
    pub zipf_exponent: f64,
    /// Probability a city attaches near an existing city rather than
    /// being placed uniformly at random.
    pub cluster_prob: f64,
    /// Pareto scale (degrees) of the offset from the parent city — the
    /// minimum spacing of attached cities.
    pub offspring_scale_deg: f64,
    /// Pareto shape of the offset distribution (≈1 gives scale-free
    /// clustering).
    pub offspring_alpha: f64,
    /// Base urban kernel radius in degrees for the largest city.
    pub kernel_sigma_deg: f64,
    /// Fraction of total population spread uniformly as rural background.
    pub rural_fraction: f64,
}

impl SyntheticPopulation {
    /// A profile resembling a developed region: many cities, strong
    /// primacy, modest rural share.
    pub fn developed(region: Region, total_population: f64) -> Self {
        SyntheticPopulation {
            region,
            total_population,
            resolution_arcmin: 15.0,
            // A dense city fabric: real nearest-city spacing is tens of
            // miles, and the spacing distribution leaves its fingerprint
            // on backbone link lengths — too few cities produces a
            // spurious bump in f(d) at the typical inter-city distance.
            n_cities: 1000,
            // s ≈ 0.9 keeps the rank-1 metro near 5% of the urban total
            // (like the real US); a steeper law concentrates so much mass
            // in the top two metros that their mutual distance shows up
            // as a spike in every pair-distance analysis.
            zipf_exponent: 0.9,
            cluster_prob: 0.5,
            offspring_scale_deg: 0.5,
            offspring_alpha: 1.0,
            kernel_sigma_deg: 0.35,
            rural_fraction: 0.12,
        }
    }

    /// A profile resembling a less-developed region: fewer, more primate
    /// cities and a larger rural share.
    pub fn developing(region: Region, total_population: f64) -> Self {
        SyntheticPopulation {
            region,
            total_population,
            resolution_arcmin: 15.0,
            n_cities: 350,
            zipf_exponent: 1.1,
            cluster_prob: 0.5,
            offspring_scale_deg: 0.5,
            offspring_alpha: 1.0,
            kernel_sigma_deg: 0.3,
            rural_fraction: 0.35,
        }
    }

    /// Synthesizes the population raster. Deterministic per `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`PopulationError::BadConfig`] when the region,
    /// resolution, or distribution parameters are degenerate, and
    /// propagates [`PopulationError`] from grid construction (e.g. zero
    /// population).
    pub fn generate(&self, seed: u64) -> Result<PopulationGrid, PopulationError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let grid = PatchGrid::new(self.region.clone(), self.resolution_arcmin).map_err(|_| {
            PopulationError::BadConfig("region and resolution must define a non-empty grid")
        })?;
        let mut cells = vec![0.0f64; grid.len()];

        // City shares: Zipf over ranks.
        let urban_total = self.total_population * (1.0 - self.rural_fraction);
        let zipf = Zipf::new(self.n_cities.max(1), self.zipf_exponent).ok_or(
            PopulationError::BadConfig("zipf exponent must be finite and non-negative"),
        )?;
        let shares: Vec<f64> = (1..=self.n_cities.max(1)).map(|k| zipf.pmf(k)).collect();

        // Placement. Two tiers:
        //
        // - The top 5% of cities (the big metros) are spread uniformly —
        //   like NY/LA/Chicago, major metros are far apart, which keeps
        //   the pair-distance distribution broad and smooth.
        // - Every other city attaches near a *population-weighted* parent
        //   at a Pareto-distributed offset (scale-free suburb/satellite
        //   structure), or is placed uniformly with prob 1 − cluster_prob.
        let offset = geotopo_stats::Pareto::new(
            self.offspring_scale_deg.max(1e-3),
            self.offspring_alpha.max(0.2),
        )
        .ok_or(PopulationError::BadConfig(
            "pareto offset scale and shape must be finite",
        ))?;
        let n = shares.len();
        let top = (n / 20).max(1);
        // Prefix sums of shares for weighted parent choice among the
        // cities placed so far (earlier rank = larger share).
        let mut prefix: Vec<f64> = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for &s in &shares {
            acc += s;
            prefix.push(acc);
        }
        let mut centers: Vec<GeoPoint> = Vec::with_capacity(n);
        for (rank0, &share) in shares.iter().enumerate() {
            let city_pop = urban_total * share;
            let clustered =
                rank0 >= top && !centers.is_empty() && rng.random::<f64>() < self.cluster_prob;
            let center = if clustered {
                // Parent ∝ population share among already-placed cities.
                let draw = rng.random::<f64>() * prefix[centers.len()];
                let parent_idx = prefix[1..=centers.len()]
                    .partition_point(|&c| c <= draw)
                    .min(centers.len() - 1);
                let parent = centers[parent_idx];
                let r_deg = offset.sample(&mut rng).min(self.region.lat_span());
                let theta = rng.random_range(0.0..std::f64::consts::TAU);
                let lat = (parent.lat() + r_deg * theta.sin()).clamp(-89.9, 89.9);
                let lon = parent.lon() + r_deg * theta.cos();
                let p = GeoPoint::new_unchecked(lat, lon);
                if self.region.contains(&p) {
                    p
                } else {
                    self.region.clamp(&p)
                }
            } else {
                self.uniform_point(&mut rng)
            };
            centers.push(center);
            // Kernel radius shrinks with rank: rank-1 city sprawls most.
            let sigma = self.kernel_sigma_deg / (1.0 + (rank0 as f64).sqrt() * 0.15);
            deposit_gaussian(&grid, &mut cells, &center, city_pop, sigma);
        }

        // Rural background.
        let rural = self.total_population * self.rural_fraction / grid.len() as f64;
        for c in &mut cells {
            *c += rural;
        }

        let mut pg = PopulationGrid::new(grid, cells)?;
        pg.rescale_to(self.total_population)?;
        Ok(pg)
    }

    fn uniform_point(&self, rng: &mut StdRng) -> GeoPoint {
        let lat = rng.random_range(self.region.south..self.region.north);
        let lon_off = rng.random_range(0.0..self.region.lon_span());
        let mut lon = self.region.west + lon_off;
        if lon > 180.0 {
            lon -= 360.0;
        }
        GeoPoint::new_unchecked(lat, lon)
    }
}

/// Adds `mass` spread as a truncated Gaussian kernel of width `sigma`
/// (degrees) centred at `center` onto the raster.
fn deposit_gaussian(grid: &PatchGrid, cells: &mut [f64], center: &GeoPoint, mass: f64, sigma: f64) {
    let Some(center_cell) = grid.cell_of(center) else {
        return;
    };
    let reach = ((3.0 * sigma) / grid.cell_deg()).ceil() as isize;
    let mut weights: Vec<(usize, f64)> = Vec::new();
    let mut wsum = 0.0;
    for dr in -reach..=reach {
        for dc in -reach..=reach {
            let row = center_cell.row as isize + dr;
            let col = center_cell.col as isize + dc;
            if row < 0 || col < 0 || row as usize >= grid.rows() || col as usize >= grid.cols() {
                continue;
            }
            let cell = geotopo_geo::PatchCell {
                row: row as usize,
                col: col as usize,
            };
            let dist_deg = ((dr as f64).powi(2) + (dc as f64).powi(2)).sqrt() * grid.cell_deg();
            let w = (-0.5 * (dist_deg / sigma).powi(2)).exp();
            if w > 1e-9 {
                weights.push((grid.flat_index(cell), w));
                wsum += w;
            }
        }
    }
    if wsum <= 0.0 {
        cells[grid.flat_index(center_cell)] += mass;
        return;
    }
    for (idx, w) in weights {
        cells[idx] += mass * w / wsum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_geo::{box_counting_dimension, boxcount::default_scales, RegionSet};

    #[test]
    fn total_population_is_exact() {
        let cfg = SyntheticPopulation::developed(RegionSet::japan(), 136e6);
        let pg = cfg.generate(1).unwrap();
        assert!((pg.total() - 136e6).abs() / 136e6 < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticPopulation::developed(RegionSet::japan(), 1e6);
        let a = cfg.generate(9).unwrap();
        let b = cfg.generate(9).unwrap();
        assert_eq!(a.cells(), b.cells());
        let c = cfg.generate(10).unwrap();
        assert_ne!(a.cells(), c.cells());
    }

    #[test]
    fn population_is_heavy_tailed_across_patches() {
        // Aggregated onto analysis patches, the top 10% of patches should
        // hold well over half of the population (urban concentration).
        let cfg = SyntheticPopulation::developed(RegionSet::us(), 299e6);
        let pg = cfg.generate(2).unwrap();
        let analysis = PatchGrid::paper_grid(RegionSet::us()).unwrap();
        let mut tallies = pg.tally_onto(&analysis);
        tallies.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top10 = tallies.len() / 10;
        let top_share: f64 = tallies[..top10].iter().sum::<f64>() / pg.total();
        assert!(top_share > 0.5, "top-10% share {top_share}");
    }

    #[test]
    fn rural_background_leaves_no_cell_empty() {
        let cfg = SyntheticPopulation::developed(RegionSet::europe(), 366e6);
        let pg = cfg.generate(3).unwrap();
        assert!(pg.cells().iter().all(|&c| c > 0.0));
    }

    #[test]
    fn city_point_pattern_is_fractal_like() {
        // Sampling points ∝ population should give a box-counting
        // dimension clearly below 2 (clustered) and above 1 (not a curve) —
        // the paper cites ~1.5 for routers/population (Section II).
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cfg = SyntheticPopulation::developed(RegionSet::us(), 299e6);
        let pg = cfg.generate(4).unwrap();
        let sampler = pg.point_sampler(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<_> = (0..20_000).map(|_| sampler.sample(&mut rng)).collect();
        let res = box_counting_dimension(&RegionSet::us(), &pts, &default_scales()).unwrap();
        assert!(
            res.dimension > 1.0 && res.dimension < 1.95,
            "dimension {}",
            res.dimension
        );
    }

    #[test]
    fn developing_profile_is_more_concentrated() {
        let dev = SyntheticPopulation::developed(RegionSet::us(), 1e8)
            .generate(6)
            .unwrap();
        let und = SyntheticPopulation::developing(RegionSet::us(), 1e8)
            .generate(6)
            .unwrap();
        // Rural share: minimum cell value relative to mean should be
        // higher for the developing profile (more uniform background).
        let share = |pg: &PopulationGrid| {
            let mean = pg.total() / pg.cells().len() as f64;
            pg.cells().iter().copied().fold(f64::MAX, f64::min) / mean
        };
        assert!(share(&und) > share(&dev));
    }

    #[test]
    fn gaussian_deposit_conserves_mass_interior() {
        let grid = PatchGrid::new(RegionSet::us(), 15.0).unwrap();
        let mut cells = vec![0.0; grid.len()];
        let center = GeoPoint::new(37.0, -95.0).unwrap();
        deposit_gaussian(&grid, &mut cells, &center, 1000.0, 0.5);
        let total: f64 = cells.iter().sum();
        assert!((total - 1000.0).abs() < 1e-9, "total {total}");
    }
}
