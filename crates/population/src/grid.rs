//! Population rasters.

use geotopo_geo::{GeoPoint, PatchGrid, Region};
use geotopo_stats::AliasTable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A raster of population (persons) over a region.
///
/// Internally this is a [`PatchGrid`] (equal-angle cells) with one `f64`
/// per cell. The native resolution is finer than the 75-arcmin analysis
/// patches (default 15 arcmin) so that aggregation onto the analysis grid
/// retains sub-patch structure for point sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationGrid {
    grid: PatchGrid,
    /// Persons per cell, row-major.
    cells: Vec<f64>,
}

/// Error from population-grid operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PopulationError {
    /// Cell vector length does not match the grid.
    SizeMismatch {
        /// Cells expected by the grid.
        expected: usize,
        /// Cells provided.
        got: usize,
    },
    /// A cell value was negative or non-finite.
    BadCellValue(usize),
    /// The grid is empty of population (cannot sample points).
    NoPopulation,
    /// A synthesis configuration is degenerate (invalid grid geometry
    /// or distribution parameters).
    BadConfig(&'static str),
}

impl std::fmt::Display for PopulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PopulationError::SizeMismatch { expected, got } => {
                write!(f, "cell vector has {got} entries, grid needs {expected}")
            }
            PopulationError::BadCellValue(i) => write!(f, "cell {i} is negative or non-finite"),
            PopulationError::NoPopulation => write!(f, "grid holds zero total population"),
            PopulationError::BadConfig(what) => {
                write!(f, "degenerate synthesis configuration: {what}")
            }
        }
    }
}

impl std::error::Error for PopulationError {}

impl PopulationGrid {
    /// Wraps a cell vector over a grid.
    ///
    /// # Errors
    ///
    /// Fails if the vector length mismatches or any value is invalid.
    pub fn new(grid: PatchGrid, cells: Vec<f64>) -> Result<Self, PopulationError> {
        if cells.len() != grid.len() {
            return Err(PopulationError::SizeMismatch {
                expected: grid.len(),
                got: cells.len(),
            });
        }
        for (i, &v) in cells.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(PopulationError::BadCellValue(i));
            }
        }
        Ok(PopulationGrid { grid, cells })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &PatchGrid {
        &self.grid
    }

    /// The region covered.
    pub fn region(&self) -> &Region {
        self.grid.region()
    }

    /// Per-cell populations, row-major.
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Approximate heap footprint in bytes (the raster cells; the patch
    /// geometry is a few scalars). Feeds the engine's resident-artifact
    /// accounting.
    pub fn mem_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<f64>()
    }

    /// Total population.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Total population of cells whose centre lies inside `region`.
    ///
    /// The synthetic city draw makes the realized population of any
    /// sub-box of this grid seed-dependent, so analyses over sub-regions
    /// (e.g. the Table IV homogeneity split) must measure the realized
    /// split here rather than assume a nominal one.
    pub fn total_within(&self, region: &Region) -> f64 {
        self.grid
            .cells()
            .filter(|&cell| region.contains(&self.grid.cell_center(cell)))
            .map(|cell| self.cells[self.grid.flat_index(cell)])
            .sum()
    }

    /// Population of the cell containing `p` (0 outside the region).
    pub fn population_at(&self, p: &GeoPoint) -> f64 {
        match self.grid.cell_of(p) {
            Some(cell) => self.cells[self.grid.flat_index(cell)],
            None => 0.0,
        }
    }

    /// Rescales all cells so the total equals `target`.
    ///
    /// # Errors
    ///
    /// Fails with [`PopulationError::NoPopulation`] if the grid is empty.
    pub fn rescale_to(&mut self, target: f64) -> Result<(), PopulationError> {
        let total = self.total();
        if total <= 0.0 {
            return Err(PopulationError::NoPopulation);
        }
        let k = target / total;
        for c in &mut self.cells {
            *c *= k;
        }
        Ok(())
    }

    /// Aggregates this raster onto a coarser analysis grid (e.g. the
    /// paper's 75-arcmin patches), assigning each native cell's population
    /// to the analysis patch containing its centre. Returns per-patch
    /// populations, row-major over `analysis`.
    pub fn tally_onto(&self, analysis: &PatchGrid) -> Vec<f64> {
        let mut out = vec![0.0; analysis.len()];
        for cell in self.grid.cells() {
            let v = self.cells[self.grid.flat_index(cell)];
            if v > 0.0 {
                if let Some(target) = analysis.cell_of(&self.grid.cell_center(cell)) {
                    out[analysis.flat_index(target)] += v;
                }
            }
        }
        out
    }

    /// Builds a weighted point sampler: draws locations with probability
    /// proportional to cell population (raised to `exponent`), uniformly
    /// jittered within the chosen cell.
    ///
    /// `exponent > 1` implements the paper's superlinear infrastructure
    /// placement (router density ∝ population density^α, Section IV-B).
    ///
    /// # Errors
    ///
    /// Fails with [`PopulationError::NoPopulation`] if all weights vanish.
    pub fn point_sampler(&self, exponent: f64) -> Result<PointSampler, PopulationError> {
        let weights: Vec<f64> = self.cells.iter().map(|&p| p.powf(exponent)).collect();
        let table = AliasTable::new(&weights).ok_or(PopulationError::NoPopulation)?;
        Ok(PointSampler {
            grid: self.grid.clone(),
            table,
        })
    }
}

/// Draws geographic points with probability proportional to (powered)
/// cell population. Created by [`PopulationGrid::point_sampler`].
///
/// Owns the (small) grid geometry plus the alias table, **not** the
/// population raster: callers that stream per-region generation can drop
/// each `PopulationGrid` as soon as its sampler is built, bounding peak
/// memory to one resident raster at a time.
#[derive(Debug, Clone)]
// analyze: allow(dead-pub): returned by PopulationGrid::point_sampler; driven without naming the type
pub struct PointSampler {
    grid: PatchGrid,
    table: AliasTable,
}

impl PointSampler {
    /// Draws one location.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        let flat = self.table.sample(rng);
        let grid = &self.grid;
        let cell = geotopo_geo::PatchCell {
            row: flat / grid.cols(),
            col: flat % grid.cols(),
        };
        let center = grid.cell_center(cell);
        let half = grid.cell_deg() / 2.0;
        let lat = (center.lat() + rng.random_range(-half..half)).clamp(-90.0, 90.0);
        let lon = center.lon() + rng.random_range(-half..half);
        // Edge cells may overhang the region boundary; clamp back inside
        // so every sampled point is attributable to the region.
        self.grid.region().clamp(&GeoPoint::new_unchecked(lat, lon))
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact expected values; bitwise float equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;
    use geotopo_geo::RegionSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_grid(per_cell: f64) -> PopulationGrid {
        let grid = PatchGrid::new(RegionSet::japan(), 150.0).unwrap();
        let n = grid.len();
        PopulationGrid::new(grid, vec![per_cell; n]).unwrap()
    }

    #[test]
    fn total_within_partitions_the_region() {
        let pop = uniform_grid(10.0);
        let japan = RegionSet::japan();
        let mid = (japan.north + japan.south) / 2.0;
        let north = Region::named("N", japan.north, mid, japan.west, japan.east);
        let south = Region::named("S", mid, japan.south, japan.west, japan.east);
        let n = pop.total_within(&north);
        let s = pop.total_within(&south);
        assert!(n > 0.0 && s > 0.0);
        assert!((n + s - pop.total()).abs() < 1e-6 * pop.total());
        // Disjoint box picks up nothing.
        let elsewhere = Region::named("X", 10.0, 0.0, 0.0, 10.0);
        assert_eq!(pop.total_within(&elsewhere), 0.0);
    }

    #[test]
    fn construction_validates_length() {
        let grid = PatchGrid::new(RegionSet::japan(), 150.0).unwrap();
        let err = PopulationGrid::new(grid.clone(), vec![1.0; grid.len() + 1]).unwrap_err();
        assert!(matches!(err, PopulationError::SizeMismatch { .. }));
    }

    #[test]
    fn construction_validates_values() {
        let grid = PatchGrid::new(RegionSet::japan(), 150.0).unwrap();
        let mut cells = vec![1.0; grid.len()];
        cells[3] = -2.0;
        assert_eq!(
            PopulationGrid::new(grid, cells).unwrap_err(),
            PopulationError::BadCellValue(3)
        );
    }

    #[test]
    fn total_and_rescale() {
        let mut pg = uniform_grid(10.0);
        let n = pg.cells().len() as f64;
        assert!((pg.total() - 10.0 * n).abs() < 1e-9);
        pg.rescale_to(1_000_000.0).unwrap();
        assert!((pg.total() - 1_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn rescale_empty_fails() {
        let mut pg = uniform_grid(0.0);
        assert_eq!(
            pg.rescale_to(5.0).unwrap_err(),
            PopulationError::NoPopulation
        );
    }

    #[test]
    fn population_at_inside_and_outside() {
        let pg = uniform_grid(7.0);
        let inside = GeoPoint::new(35.0, 139.0).unwrap();
        let outside = GeoPoint::new(0.0, 0.0).unwrap();
        assert_eq!(pg.population_at(&inside), 7.0);
        assert_eq!(pg.population_at(&outside), 0.0);
    }

    #[test]
    fn tally_onto_conserves_population() {
        let pg = uniform_grid(3.0);
        let analysis = PatchGrid::paper_grid(RegionSet::japan()).unwrap();
        let tallied = pg.tally_onto(&analysis);
        let total: f64 = tallied.iter().sum();
        // Native cell centres may fall just outside the coarse grid only
        // if grids disagree on the region — same region here, so exact.
        assert!(
            (total - pg.total()).abs() < 1e-6,
            "{total} vs {}",
            pg.total()
        );
    }

    #[test]
    fn sampler_respects_weights() {
        // Two-cell manual grid: all population in one cell.
        let grid = PatchGrid::new(RegionSet::japan(), 900.0).unwrap();
        let n = grid.len();
        assert!(n >= 2);
        let mut cells = vec![0.0; n];
        cells[0] = 100.0;
        let pg = PopulationGrid::new(grid, cells).unwrap();
        let sampler = pg.point_sampler(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let p = sampler.sample(&mut rng);
            // Cell 0 is the SW corner cell (row 0, col 0).
            let cell = pg.grid().cell_of(&p).expect("sampled point in region");
            assert_eq!(pg.grid().flat_index(cell), 0, "point {p}");
        }
    }

    #[test]
    fn sampler_superlinear_exponent_sharpens() {
        // Cell A has 4x the population of cell B. With exponent 2 the
        // sampling odds should be ~16:1 rather than 4:1.
        let grid = PatchGrid::new(RegionSet::japan(), 900.0).unwrap();
        let n = grid.len();
        let mut cells = vec![0.0; n];
        cells[0] = 40.0;
        cells[1] = 10.0;
        let pg = PopulationGrid::new(grid, cells).unwrap();
        let sampler = pg.point_sampler(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut in_a = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let p = sampler.sample(&mut rng);
            let idx = pg.grid().flat_index(pg.grid().cell_of(&p).unwrap());
            if idx == 0 {
                in_a += 1;
            }
        }
        let frac = in_a as f64 / trials as f64;
        assert!((frac - 16.0 / 17.0).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn sampler_fails_on_empty() {
        let pg = uniform_grid(0.0);
        assert!(pg.point_sampler(1.0).is_err());
    }

    #[test]
    fn sampled_points_stay_in_region() {
        let pg = uniform_grid(1.0);
        let sampler = pg.point_sampler(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let p = sampler.sample(&mut rng);
            assert!(pg.region().contains(&p), "escaped: {p}");
        }
    }
}
