//! Property-based tests for measurement invariants.

// Strategy/fixture helpers run outside #[test] fns, where clippy's
// allow-unwrap-in-tests does not reach; aborting there is fine too.
#![allow(clippy::unwrap_used)]

use geotopo_bgp::AsId;
use geotopo_geo::GeoPoint;
use geotopo_measure::dataset::{MeasuredDataset, NodeKind};
use geotopo_measure::routing::RoutingOracle;
use geotopo_topology::{RouterId, TopologyBuilder};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn build(n: usize, edges: &[(u32, u32)]) -> geotopo_topology::Topology {
    let mut b = TopologyBuilder::new();
    for i in 0..n {
        b.add_router(
            GeoPoint::new(10.0 + (i % 50) as f64, 20.0 + (i / 50) as f64).unwrap(),
            AsId((i % 4) as u32 + 1),
        );
    }
    for &(a, bb) in edges {
        let _ = b.add_link_auto(RouterId(a), RouterId(bb));
    }
    b.build()
}

proptest! {
    #[test]
    fn routing_paths_are_simple_and_anchored(
        edges in prop::collection::vec((0u32..20, 0u32..20), 1..60),
        src in 0u32..20,
        dst in 0u32..20,
    ) {
        let t = build(20, &edges);
        let oracle = RoutingOracle::new(&t, RouterId(src));
        if let Some(path) = oracle.path(RouterId(dst)) {
            prop_assert_eq!(path[0], RouterId(src));
            prop_assert_eq!(*path.last().unwrap(), RouterId(dst));
            // No repeated routers (shortest paths are simple).
            let set: std::collections::HashSet<_> = path.iter().collect();
            prop_assert_eq!(set.len(), path.len());
            // Consecutive hops are adjacent.
            for w in path.windows(2) {
                prop_assert!(
                    t.neighbors(w[0]).iter().any(|(r, _)| *r == w[1]),
                    "non-adjacent hop"
                );
            }
        }
    }

    #[test]
    fn routing_cost_is_monotone_along_path(
        edges in prop::collection::vec((0u32..15, 0u32..15), 1..40),
        src in 0u32..15,
    ) {
        let t = build(15, &edges);
        let oracle = RoutingOracle::new(&t, RouterId(src));
        for dst in 0..15u32 {
            if let Some(path) = oracle.path(RouterId(dst)) {
                let mut prev = 0;
                for &hop in &path {
                    let c = oracle.cost(hop).expect("on-path hops are reachable");
                    prop_assert!(c >= prev);
                    prev = c;
                }
            }
        }
    }

    #[test]
    fn dataset_links_reference_valid_nodes(
        ips in prop::collection::vec(any::<u32>(), 2..40),
        pairs in prop::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let nodes: Vec<u32> = ips.iter().map(|&b| d.intern(Ipv4Addr::from(b))).collect();
        for (a, b) in pairs {
            d.observe_link(nodes[a % nodes.len()], nodes[b % nodes.len()]);
        }
        let n = d.num_nodes() as u32;
        for &(a, b) in d.links() {
            prop_assert!(a < n && b < n);
            prop_assert!(a != b);
        }
        // Interning is injective on distinct IPs.
        let distinct: std::collections::HashSet<_> = ips.iter().collect();
        prop_assert_eq!(d.num_nodes(), distinct.len());
    }

    #[test]
    fn remove_nodes_preserves_remaining_structure(
        ips in prop::collection::vec(any::<u32>(), 3..30),
        pairs in prop::collection::vec((0usize..30, 0usize..30), 0..60),
        victim in 0usize..30,
    ) {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let nodes: Vec<u32> = ips.iter().map(|&b| d.intern(Ipv4Addr::from(b))).collect();
        for (a, b) in pairs {
            d.observe_link(nodes[a % nodes.len()], nodes[b % nodes.len()]);
        }
        let before_nodes = d.num_nodes();
        let surviving_ips: Vec<Ipv4Addr> = d
            .nodes()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim % before_nodes)
            .map(|(_, n)| n.ip)
            .collect();
        let mut rm = std::collections::HashSet::new();
        rm.insert((victim % before_nodes) as u32);
        d.remove_nodes(&rm);
        prop_assert_eq!(d.num_nodes(), before_nodes - 1);
        // Every surviving IP still resolves, to a valid index.
        for ip in surviving_ips {
            let idx = d.node_by_ip(ip).expect("survivor resolvable");
            prop_assert_eq!(d.nodes()[idx as usize].ip, ip);
        }
        let n = d.num_nodes() as u32;
        for &(a, b) in d.links() {
            prop_assert!(a < n && b < n && a != b);
        }
    }
}
