//! Property-based tests for measurement invariants.

// Strategy/fixture helpers run outside #[test] fns, where clippy's
// allow-unwrap-in-tests does not reach; aborting there is fine too.
#![allow(clippy::unwrap_used)]

use geotopo_bgp::{AsId, Relationship};
use geotopo_geo::GeoPoint;
use geotopo_measure::dataset::{MeasuredDataset, NodeKind};
use geotopo_measure::policy::{infer_relations, PolicyOracle};
use geotopo_measure::routing::RoutingOracle;
use geotopo_topology::{RouterId, Topology, TopologyBuilder};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn build(n: usize, edges: &[(u32, u32)]) -> Topology {
    let mut b = TopologyBuilder::new();
    for i in 0..n {
        b.add_router(
            GeoPoint::new(10.0 + (i % 50) as f64, 20.0 + (i / 50) as f64).unwrap(),
            AsId((i % 4) as u32 + 1),
        );
    }
    for &(a, bb) in edges {
        let _ = b.add_link_auto(RouterId(a), RouterId(bb));
    }
    b.build()
}

/// Like [`build`], but with skewed AS sizes (half the routers in AS1,
/// a quarter in AS2, an eighth each in AS3/AS4) so size-inferred
/// relations mix providers, customers, and peers instead of collapsing
/// to all-peer.
fn build_tiered(n: usize, edges: &[(u32, u32)]) -> Topology {
    let mut b = TopologyBuilder::new();
    for i in 0..n {
        let asn = if i < n / 2 {
            1
        } else if i < 3 * n / 4 {
            2
        } else if i < 7 * n / 8 {
            3
        } else {
            4
        };
        b.add_router(
            GeoPoint::new(10.0 + (i % 50) as f64, 20.0 + (i / 50) as f64).unwrap(),
            AsId(asn),
        );
    }
    for &(a, bb) in edges {
        let _ = b.add_link_auto(RouterId(a), RouterId(bb));
    }
    b.build()
}

/// A parametrized valley: two provider chains (AS2, AS3) hang off
/// opposite ends of a tier-1 chain (AS1), and a single-router customer
/// (AS4) multihomes to both — the hop-count shortcut between AS2 and
/// AS3 that policy routing must refuse. Returns
/// `(topology, src, dst, stub)` with src/dst the chain tails next to
/// the stub.
fn valley_world(t1_len: usize, side_len: usize) -> (Topology, RouterId, RouterId, RouterId) {
    let mut b = TopologyBuilder::new();
    let mut loc = 0usize;
    let mut next_loc = || {
        loc += 1;
        GeoPoint::new(10.0 + (loc % 50) as f64 * 0.3, 20.0 + (loc / 50) as f64).unwrap()
    };
    let chain =
        |b: &mut TopologyBuilder, len: usize, asn: u32, next: &mut dyn FnMut() -> GeoPoint| {
            let routers: Vec<RouterId> =
                (0..len).map(|_| b.add_router(next(), AsId(asn))).collect();
            for w in routers.windows(2) {
                b.add_link_auto(w[0], w[1]).unwrap();
            }
            routers
        };
    let t1 = chain(&mut b, t1_len, 1, &mut next_loc);
    let a2 = chain(&mut b, side_len, 2, &mut next_loc);
    let a3 = chain(&mut b, side_len, 3, &mut next_loc);
    let stub = b.add_router(next_loc(), AsId(4));
    b.add_link_auto(a2[0], t1[0]).unwrap();
    b.add_link_auto(a3[0], t1[t1_len - 1]).unwrap();
    b.add_link_auto(a2[side_len - 1], stub).unwrap();
    b.add_link_auto(a3[side_len - 1], stub).unwrap();
    (b.build(), a2[side_len - 1], a3[side_len - 1], stub)
}

proptest! {
    #[test]
    fn routing_paths_are_simple_and_anchored(
        edges in prop::collection::vec((0u32..20, 0u32..20), 1..60),
        src in 0u32..20,
        dst in 0u32..20,
    ) {
        let t = build(20, &edges);
        let oracle = RoutingOracle::new(&t, RouterId(src));
        if let Some(path) = oracle.path(RouterId(dst)) {
            prop_assert_eq!(path[0], RouterId(src));
            prop_assert_eq!(*path.last().unwrap(), RouterId(dst));
            // No repeated routers (shortest paths are simple).
            let set: std::collections::HashSet<_> = path.iter().collect();
            prop_assert_eq!(set.len(), path.len());
            // Consecutive hops are adjacent.
            for w in path.windows(2) {
                prop_assert!(
                    t.neighbors(w[0]).iter().any(|e| e.neighbor() == w[1]),
                    "non-adjacent hop"
                );
            }
        }
    }

    #[test]
    fn bucket_queue_matches_reference_heap_dijkstra(
        // Sparse edge sets leave unreachable components; dense ones
        // exercise stale bucket entries. Both must agree with the
        // BinaryHeap reference bit-for-bit.
        edges in prop::collection::vec((0u32..20, 0u32..20), 0..70),
        src in 0u32..20,
    ) {
        let t = build(20, &edges);
        let fast = RoutingOracle::new(&t, RouterId(src));
        let (dist, parent) = geotopo_measure::routing::reference::solve(&t, RouterId(src));
        for v in 0..20u32 {
            let d = dist[v as usize];
            let expect_cost = if d == u64::MAX { None } else { Some(d) };
            prop_assert_eq!(fast.cost(RouterId(v)), expect_cost, "dist diverged at {}", v);
            // The parent is the second element of the walk to the
            // source (None for the source itself and unreachables).
            prop_assert_eq!(
                fast.walk_up(RouterId(v)).nth(1),
                parent[v as usize],
                "parent diverged at {}", v
            );
        }
    }

    #[test]
    fn routing_cost_is_monotone_along_path(
        edges in prop::collection::vec((0u32..15, 0u32..15), 1..40),
        src in 0u32..15,
    ) {
        let t = build(15, &edges);
        let oracle = RoutingOracle::new(&t, RouterId(src));
        for dst in 0..15u32 {
            if let Some(path) = oracle.path(RouterId(dst)) {
                let mut prev = 0;
                for &hop in &path {
                    let c = oracle.cost(hop).expect("on-path hops are reachable");
                    prop_assert!(c >= prev);
                    prev = c;
                }
            }
        }
    }

    #[test]
    fn policy_paths_climb_cross_once_then_descend(
        edges in prop::collection::vec((0u32..16, 0u32..16), 1..60),
        src in 0u32..16,
    ) {
        let t = build_tiered(16, &edges);
        let rel = infer_relations(&t, 2.0);
        let oracle = PolicyOracle::new(&t, &rel, RouterId(src));
        for dst in 0..16u32 {
            let Some(path) = oracle.path(RouterId(dst)) else { continue };
            prop_assert_eq!(path[0], RouterId(src));
            prop_assert_eq!(*path.last().unwrap(), RouterId(dst));
            // Walk the AS-level relationship sequence through the
            // valley-free automaton: climb (customer→provider), at most
            // one peering, then descend (provider→customer). Intra-AS
            // hops never change phase.
            let mut descending = false;
            let mut peerings = 0usize;
            for w in path.windows(2) {
                let (as_u, as_v) = (t.router(w[0]).asn, t.router(w[1]).asn);
                if as_u == as_v {
                    continue;
                }
                match rel.get(as_u, as_v) {
                    Some(Relationship::CustomerToProvider) => {
                        prop_assert!(!descending, "climb after descend: {path:?}");
                    }
                    Some(Relationship::PeerToPeer) => {
                        prop_assert!(!descending, "peering after descend: {path:?}");
                        peerings += 1;
                        descending = true;
                    }
                    Some(Relationship::ProviderToCustomer) => {
                        descending = true;
                    }
                    None => prop_assert!(false, "unknown AS edge on path: {path:?}"),
                }
            }
            prop_assert!(peerings <= 1, "{peerings} peerings: {path:?}");
        }
    }

    #[test]
    fn valley_blocked_destinations_detour_instead_of_none(
        side_len in 2usize..5,
        extra in 0usize..4,
    ) {
        let t1_len = 2 * side_len + extra;
        let (t, src, dst, stub) = valley_world(t1_len, side_len);
        let rel = infer_relations(&t, 2.0);

        // Hop-count routing happily cuts through the multihomed
        // customer...
        let plain = RoutingOracle::new(&t, src);
        let short = plain.path(dst).expect("stub shortcut connects the sides");
        prop_assert!(short.contains(&stub), "plain path avoids valley: {short:?}");

        // ...policy routing must not — and must return the inflated
        // detour over the tier-1, not give up.
        let policy = PolicyOracle::new(&t, &rel, src);
        let detour = policy.path(dst);
        prop_assert!(detour.is_some(), "valley-blocked destination unreachable");
        let detour = detour.unwrap();
        prop_assert!(!detour.contains(&stub), "policy path transits customer: {detour:?}");
        prop_assert!(detour.len() > short.len(), "detour {} not inflated over {}", detour.len(), short.len());
        let as_path: Vec<AsId> = detour.iter().map(|&r| t.router(r).asn).collect();
        prop_assert!(rel.is_valley_free(&as_path), "detour has a valley: {as_path:?}");
        prop_assert!(policy.cost(dst).unwrap() >= plain.cost(dst).unwrap());
    }

    #[test]
    fn dataset_links_reference_valid_nodes(
        ips in prop::collection::vec(any::<u32>(), 2..40),
        pairs in prop::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let nodes: Vec<u32> = ips.iter().map(|&b| d.intern(Ipv4Addr::from(b))).collect();
        for (a, b) in pairs {
            d.observe_link(nodes[a % nodes.len()], nodes[b % nodes.len()]);
        }
        let n = d.num_nodes() as u32;
        for &(a, b) in d.links() {
            prop_assert!(a < n && b < n);
            prop_assert!(a != b);
        }
        // Interning is injective on distinct IPs.
        let distinct: std::collections::HashSet<_> = ips.iter().collect();
        prop_assert_eq!(d.num_nodes(), distinct.len());
    }

    #[test]
    fn remove_nodes_preserves_remaining_structure(
        ips in prop::collection::vec(any::<u32>(), 3..30),
        pairs in prop::collection::vec((0usize..30, 0usize..30), 0..60),
        victim in 0usize..30,
    ) {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let nodes: Vec<u32> = ips.iter().map(|&b| d.intern(Ipv4Addr::from(b))).collect();
        for (a, b) in pairs {
            d.observe_link(nodes[a % nodes.len()], nodes[b % nodes.len()]);
        }
        let before_nodes = d.num_nodes();
        let surviving_ips: Vec<Ipv4Addr> = d
            .nodes()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim % before_nodes)
            .map(|(_, n)| n.ip)
            .collect();
        let mut rm = std::collections::HashSet::new();
        rm.insert((victim % before_nodes) as u32);
        d.remove_nodes(&rm);
        prop_assert_eq!(d.num_nodes(), before_nodes - 1);
        // Every surviving IP still resolves, to a valid index.
        for ip in surviving_ips {
            let idx = d.node_by_ip(ip).expect("survivor resolvable");
            prop_assert_eq!(d.nodes()[idx as usize].ip, ip);
        }
        let n = d.num_nodes() as u32;
        for &(a, b) in d.links() {
            prop_assert!(a < n && b < n && a != b);
        }
    }
}
