//! Valley-free policy routing.
//!
//! The plain [`crate::routing::RoutingOracle`] models BGP's preference
//! for staying inside a domain with a cost penalty. This module models
//! the *hard* constraint real interdomain routing obeys: the valley-free
//! rule over customer/provider/peer relationships. Paths climb
//! customer→provider links, cross at most one peering, then descend —
//! and a destination reachable in few hops through a "valley" must take
//! the long way around, producing the path inflation measured in real
//! traceroutes.
//!
//! Implemented as a layered Dijkstra over (router, phase) states:
//! phase `Up` (still climbing) and `Down` (committed to descending).

use crate::routing::{INTER_COST, INTRA_COST};
use geotopo_bgp::{AsRelations, Relationship};
use geotopo_topology::{RouterId, Topology};
use std::collections::{BTreeSet, HashMap};

/// Builds size-inferred AS relationships for a topology: sizes from
/// router counts, adjacencies from interdomain links.
pub fn infer_relations(topology: &Topology, provider_ratio: f64) -> AsRelations {
    let mut sizes: HashMap<geotopo_bgp::AsId, usize> = HashMap::new();
    for (_, r) in topology.routers() {
        *sizes.entry(r.asn).or_insert(0) += 1;
    }
    let adjacencies: Vec<_> = topology
        .links()
        .filter(|(id, _)| topology.is_interdomain(*id))
        .map(|(id, _)| {
            let (a, b) = topology.link_routers(id);
            (topology.router(a).asn, topology.router(b).asn)
        })
        .collect();
    AsRelations::infer(&sizes, adjacencies, provider_ratio)
}

const UP: usize = 0;
const DOWN: usize = 1;

/// A valley-free shortest-path forest from one source.
#[derive(Debug)]
pub struct PolicyOracle {
    source: RouterId,
    /// Per (router, phase): predecessor state, encoded as
    /// `router * 2 + phase` (usize::MAX = none).
    parent: Vec<usize>,
    dist: Vec<u64>,
    n: usize,
}

impl PolicyOracle {
    /// Runs the layered Dijkstra from `source` under `relations`.
    pub fn new(topology: &Topology, relations: &AsRelations, source: RouterId) -> Self {
        let n = topology.num_routers();
        let mut dist = vec![u64::MAX; 2 * n];
        let mut parent = vec![usize::MAX; 2 * n];
        // An ordered set pops the lexicographic (dist, state) minimum
        // exactly like the old BinaryHeap<Reverse<..>> did; this module
        // is off the hot path, so the simpler structure wins over a
        // second bucket queue (and GT-LINT-011 keeps BinaryHeap out of
        // everything but the routing reference).
        let mut frontier: BTreeSet<(u64, usize)> = BTreeSet::new();
        let start = source.0 as usize * 2 + UP;
        dist[start] = 0;
        frontier.insert((0, start));
        while let Some((d, state)) = frontier.pop_first() {
            if d > dist[state] {
                continue;
            }
            let u = RouterId((state / 2) as u32);
            let phase = state % 2;
            let as_u = topology.router(u).asn;
            for e in topology.neighbors(u) {
                let v = e.neighbor();
                let as_v = topology.router(v).asn;
                let (next_phase, cost) = if as_u == as_v {
                    (phase, INTRA_COST)
                } else {
                    match relations.get(as_u, as_v) {
                        Some(Relationship::CustomerToProvider) if phase == UP => (UP, INTER_COST),
                        Some(Relationship::PeerToPeer) if phase == UP => (DOWN, INTER_COST),
                        Some(Relationship::ProviderToCustomer) => (DOWN, INTER_COST),
                        _ => continue, // valley or unknown edge: forbidden
                    }
                };
                let next = v.0 as usize * 2 + next_phase;
                let nd = d + cost;
                if nd < dist[next] {
                    dist[next] = nd;
                    parent[next] = state;
                    frontier.insert((nd, next));
                }
            }
        }
        PolicyOracle {
            source,
            parent,
            dist,
            n,
        }
    }

    /// The source router.
    pub fn source(&self) -> RouterId {
        self.source
    }

    /// Best policy-compliant cost to `dst`, if reachable.
    pub fn cost(&self, dst: RouterId) -> Option<u64> {
        let i = dst.0 as usize * 2;
        let best = self.dist[i + UP].min(self.dist[i + DOWN]);
        if best == u64::MAX {
            None
        } else {
            Some(best)
        }
    }

    /// The router path source → `dst` under valley-free routing, or
    /// `None` if no compliant path exists.
    pub fn path(&self, dst: RouterId) -> Option<Vec<RouterId>> {
        let i = dst.0 as usize * 2;
        let end = if self.dist[i + UP] <= self.dist[i + DOWN] {
            i + UP
        } else {
            i + DOWN
        };
        if self.dist[end] == u64::MAX {
            return None;
        }
        let mut states = vec![end];
        let mut cur = end;
        let mut guard = 0;
        while self.parent[cur] != usize::MAX && guard <= 2 * self.n {
            cur = self.parent[cur];
            states.push(cur);
            guard += 1;
        }
        states.reverse();
        let mut path: Vec<RouterId> = Vec::with_capacity(states.len());
        for s in states {
            let r = RouterId((s / 2) as u32);
            if path.last() != Some(&r) {
                path.push(r);
            }
        }
        debug_assert_eq!(path.first(), Some(&self.source));
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingOracle;
    use geotopo_bgp::AsId;
    use geotopo_geo::GeoPoint;
    use geotopo_topology::TopologyBuilder;

    fn loc(i: usize) -> GeoPoint {
        GeoPoint::new(10.0 + i as f64 * 0.2, 20.0).unwrap()
    }

    /// Two stub ASes (2, 3) hanging off a provider (1); a direct
    /// peer link between the stubs' routers exists but belongs to a
    /// *sibling* relationship scenario we control via sizes.
    fn two_stubs_one_provider() -> (geotopo_topology::Topology, Vec<RouterId>) {
        let mut b = TopologyBuilder::new();
        // AS1: big provider (3 routers), AS2/AS3: single-router stubs.
        let p0 = b.add_router(loc(0), AsId(1));
        let p1 = b.add_router(loc(1), AsId(1));
        let p2 = b.add_router(loc(2), AsId(1));
        let s2 = b.add_router(loc(3), AsId(2));
        let s3 = b.add_router(loc(4), AsId(3));
        b.add_link_auto(p0, p1).unwrap();
        b.add_link_auto(p1, p2).unwrap();
        b.add_link_auto(s2, p0).unwrap();
        b.add_link_auto(s3, p2).unwrap();
        (b.build(), vec![p0, p1, p2, s2, s3])
    }

    #[test]
    fn stub_to_stub_goes_through_provider() {
        let (t, r) = two_stubs_one_provider();
        let rel = infer_relations(&t, 2.0);
        let oracle = PolicyOracle::new(&t, &rel, r[3]);
        let path = oracle.path(r[4]).unwrap();
        assert_eq!(path, vec![r[3], r[0], r[1], r[2], r[4]]);
    }

    #[test]
    fn provider_reaches_customers() {
        let (t, r) = two_stubs_one_provider();
        let rel = infer_relations(&t, 2.0);
        let oracle = PolicyOracle::new(&t, &rel, r[1]);
        assert!(oracle.path(r[3]).is_some());
        assert!(oracle.path(r[4]).is_some());
    }

    /// A "valley" topology: stub AS4 is multihomed to two providers
    /// (AS2, AS3) that are both customers of tier-1 AS1. Traffic from
    /// AS2 to AS3 must NOT transit customer AS4 even though that path
    /// has fewer hops.
    #[test]
    fn transit_through_customer_forbidden() {
        let mut b = TopologyBuilder::new();
        // Sizes: AS1 = 4 routers, AS2 = AS3 = 2, AS4 = 1.
        let t1a = b.add_router(loc(0), AsId(1));
        let t1b = b.add_router(loc(1), AsId(1));
        let t1c = b.add_router(loc(2), AsId(1));
        let t1d = b.add_router(loc(3), AsId(1));
        b.add_link_auto(t1a, t1b).unwrap();
        b.add_link_auto(t1b, t1c).unwrap();
        b.add_link_auto(t1c, t1d).unwrap();
        let a2a = b.add_router(loc(4), AsId(2));
        let a2b = b.add_router(loc(5), AsId(2));
        b.add_link_auto(a2a, a2b).unwrap();
        let a3a = b.add_router(loc(6), AsId(3));
        let a3b = b.add_router(loc(7), AsId(3));
        b.add_link_auto(a3a, a3b).unwrap();
        let stub = b.add_router(loc(8), AsId(4));
        // AS2 and AS3 attach to the tier-1 at opposite ends.
        b.add_link_auto(a2a, t1a).unwrap();
        b.add_link_auto(a3a, t1d).unwrap();
        // The multihomed customer: short cut between AS2 and AS3.
        b.add_link_auto(a2b, stub).unwrap();
        b.add_link_auto(a3b, stub).unwrap();
        let t = b.build();
        let rel = infer_relations(&t, 2.0);

        let policy = PolicyOracle::new(&t, &rel, a2b);
        let path = policy.path(a3b).unwrap();
        assert!(
            !path.contains(&stub),
            "policy path transits the customer: {path:?}"
        );
        // The unconstrained oracle happily uses the valley.
        let plain = RoutingOracle::new(&t, a2b);
        let short = plain.path(a3b).unwrap();
        assert!(short.contains(&stub), "plain path avoids valley: {short:?}");
        // And policy inflation is real: strictly more hops.
        assert!(path.len() > short.len());
    }

    #[test]
    fn policy_paths_are_valley_free() {
        let (t, r) = two_stubs_one_provider();
        let rel = infer_relations(&t, 2.0);
        for &src in &r {
            let oracle = PolicyOracle::new(&t, &rel, src);
            for &dst in &r {
                if let Some(path) = oracle.path(dst) {
                    let as_path: Vec<_> = path.iter().map(|&x| t.router(x).asn).collect();
                    assert!(rel.is_valley_free(&as_path), "{src:?}→{dst:?}: {as_path:?}");
                }
            }
        }
    }

    #[test]
    fn unreachable_without_compliant_path() {
        // Two stubs sharing only a peer link peer↔peer can reach each
        // other (one peak crossing) — but a third stub behind one of
        // them cannot cross two peerings.
        let mut b = TopologyBuilder::new();
        let a = b.add_router(loc(0), AsId(1));
        let c = b.add_router(loc(1), AsId(2));
        let d = b.add_router(loc(2), AsId(3));
        b.add_link_auto(a, c).unwrap();
        b.add_link_auto(c, d).unwrap();
        let t = b.build();
        // Equal sizes: both edges become peerings.
        let rel = infer_relations(&t, 3.0);
        let oracle = PolicyOracle::new(&t, &rel, a);
        assert!(oracle.path(c).is_some());
        assert_eq!(oracle.path(d), None, "two peer crossings must be illegal");
    }
}
