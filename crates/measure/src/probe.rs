//! Forward-path (traceroute) probing.
//!
//! "Intermediate routers which respond to packets with expired TTL values
//! transmit an ICMP message back to the source. Contained within this
//! packet is the IP address of an interface on the router" — the
//! *incoming* interface, in real traceroute and here.
//!
//! Routers that do not respond (rate-limiting, ICMP disabled) leave gaps;
//! a gap breaks the adjacent-interface chain so no false link spans it.

use crate::faults::{FaultSession, ProbeFate};
use crate::routing::RoutingOracle;
use geotopo_topology::{InterfaceId, RouterId, Topology};
use rand::Rng;

/// A traced hop: the responding router and the interface it reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// analyze: allow(dead-pub): hop record returned by every trace API; fields read without naming the type
pub struct Hop {
    /// The router at this hop.
    pub router: RouterId,
    /// The reported (incoming) interface, `None` if the router stayed
    /// silent.
    pub interface: Option<InterfaceId>,
}

/// Reusable trace-walk buffers: the router path and the hop list. The
/// collectors keep one per monitor so the hot loop performs no
/// per-trace allocation — every walk reuses the same two vectors.
#[derive(Debug, Default)]
pub struct TraceBuf {
    path: Vec<RouterId>,
    hops: Vec<Hop>,
}

impl TraceBuf {
    /// Creates empty buffers (they grow to the longest trace and stay).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Traceroute simulation over a topology.
#[derive(Debug)]
pub struct TracerouteSim<'a> {
    topology: &'a Topology,
    /// Per-router responsiveness (drawn once; silent routers are silent
    /// for every probe, like ICMP-disabled boxes).
    responsive: Vec<bool>,
}

impl<'a> TracerouteSim<'a> {
    /// Creates a simulator where each router responds with probability
    /// `response_prob`, drawn once per router from `rng`.
    pub fn new<R: Rng + ?Sized>(topology: &'a Topology, response_prob: f64, rng: &mut R) -> Self {
        let responsive = (0..topology.num_routers())
            .map(|_| rng.random::<f64>() < response_prob)
            .collect();
        TracerouteSim {
            topology,
            responsive,
        }
    }

    /// Whether a router answers probes.
    pub fn is_responsive(&self, r: RouterId) -> bool {
        self.responsive[r.0 as usize]
    }

    /// Traces from the oracle's source to `dst`, returning the hop list
    /// *after* the source (the source itself emits, it does not report).
    /// Returns `None` if the destination is unreachable.
    pub fn trace(&self, oracle: &RoutingOracle, dst: RouterId) -> Option<Vec<Hop>> {
        let mut buf = TraceBuf::new();
        self.trace_into(oracle, dst, &mut buf).map(<[Hop]>::to_vec)
    }

    /// Allocation-free [`trace`](Self::trace): walks the route into
    /// `buf`'s reusable vectors and returns a borrowed hop slice.
    // analyze: hot-path-root
    pub fn trace_into<'b>(
        &self,
        oracle: &RoutingOracle,
        dst: RouterId,
        buf: &'b mut TraceBuf,
    ) -> Option<&'b [Hop]> {
        let TraceBuf { path, hops } = buf;
        if !oracle.path_into(dst, path) {
            return None;
        }
        hops.clear();
        for w in path.windows(2) {
            let (prev, cur) = (w[0], w[1]);
            let interface = if self.responsive[cur.0 as usize] {
                // The ICMP source address is the interface the probe
                // arrived on: the one facing `prev`.
                self.topology.interface_between(cur, prev)
            } else {
                None
            };
            hops.push(Hop {
                router: cur,
                interface,
            });
        }
        Some(hops)
    }

    /// Like [`trace`](Self::trace), but every probe runs through the
    /// fault `session` in virtual time, with bounded retry-with-backoff
    /// when a probe is swallowed by loss, rate-limiting, or a flap.
    ///
    /// Routers that are silent by disposition (the per-router coin) stay
    /// silent — retransmitting cannot help, and a real prober cannot tell
    /// the difference anyway, so the channel fate is decided first and
    /// the responsiveness coin only gates what an answered probe reports.
    /// Under an inert session this reproduces `trace` byte-for-byte.
    pub fn trace_with_faults(
        &self,
        oracle: &RoutingOracle,
        dst: RouterId,
        session: &mut FaultSession<'_>,
    ) -> Option<Vec<Hop>> {
        let mut buf = TraceBuf::new();
        self.trace_with_faults_into(oracle, dst, session, &mut buf)
            .map(<[Hop]>::to_vec)
    }

    /// Allocation-free [`trace_with_faults`](Self::trace_with_faults):
    /// same fault semantics, but the route walk and hop list reuse
    /// `buf`'s vectors and the result borrows from them.
    // analyze: hot-path-root
    pub fn trace_with_faults_into<'b>(
        &self,
        oracle: &RoutingOracle,
        dst: RouterId,
        session: &mut FaultSession<'_>,
        buf: &'b mut TraceBuf,
    ) -> Option<&'b [Hop]> {
        let TraceBuf { path, hops } = buf;
        if !oracle.path_into(dst, path) {
            return None;
        }
        hops.clear();
        for w in path.windows(2) {
            let (prev, cur) = (w[0], w[1]);
            let mut reported = cur;
            let mut interface = None;
            let mut attempt = 0u32;
            loop {
                let fate = session.probe(cur.0);
                match fate {
                    ProbeFate::Answered => {
                        if self.responsive[cur.0 as usize] {
                            interface = self.topology.interface_between(cur, prev);
                            if attempt > 0 {
                                session.stats.retry_successes += 1;
                            }
                        }
                        break;
                    }
                    ProbeFate::Lost | ProbeFate::RateLimited | ProbeFate::Flapped => {
                        if attempt >= session.max_retries() {
                            if fate == ProbeFate::Flapped && self.responsive[prev.0 as usize] {
                                // Route churn: the flapping route briefly
                                // reverts and the *previous* router answers
                                // this TTL again — real traceroute's loop
                                // artifact. The recorded adjacency then
                                // joins two interfaces of one router, the
                                // organic source of alias-induced
                                // self-loops after resolution.
                                interface = self.topology.interface_between(prev, cur);
                                reported = prev;
                            }
                            break;
                        }
                        attempt += 1;
                        session.stats.retries += 1;
                        session.backoff(attempt);
                    }
                }
            }
            hops.push(Hop {
                router: reported,
                interface,
            });
        }
        Some(hops)
    }
}

#[cfg(test)]
mod trace_buf_tests {
    use super::*;
    use geotopo_bgp::AsId;
    use geotopo_geo::GeoPoint;
    use geotopo_topology::TopologyBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_into_reuses_buffers_and_matches_trace() {
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..6)
            .map(|i| b.add_router(GeoPoint::new(10.0 + i as f64 * 0.1, 10.0).unwrap(), AsId(1)))
            .collect();
        for w in r.windows(2) {
            b.add_link_auto(w[0], w[1]).unwrap();
        }
        let t = b.build();
        let mut rng = StdRng::seed_from_u64(11);
        let sim = TracerouteSim::new(&t, 0.7, &mut rng);
        let oracle = RoutingOracle::new(&t, r[0]);
        let mut buf = TraceBuf::new();
        for &dst in &r[1..] {
            let owned = sim.trace(&oracle, dst).unwrap();
            let borrowed = sim.trace_into(&oracle, dst, &mut buf).unwrap();
            assert_eq!(owned.as_slice(), borrowed);
            // A hop reports an interface iff its router answers probes.
            for h in &owned {
                assert_eq!(h.interface.is_some(), sim.is_responsive(h.router));
            }
        }
        // After the longest trace the buffers never shrink: a short
        // trace must reuse the capacity, not reallocate.
        let cap = (buf.path.capacity(), buf.hops.capacity());
        assert!(sim.trace_into(&oracle, r[1], &mut buf).is_some());
        assert_eq!((buf.path.capacity(), buf.hops.capacity()), cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_bgp::AsId;
    use geotopo_geo::GeoPoint;
    use geotopo_topology::TopologyBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_topology(n: usize) -> (geotopo_topology::Topology, Vec<RouterId>) {
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..n)
            .map(|i| b.add_router(GeoPoint::new(10.0 + i as f64 * 0.1, 10.0).unwrap(), AsId(1)))
            .collect();
        for w in r.windows(2) {
            b.add_link_auto(w[0], w[1]).unwrap();
        }
        (b.build(), r)
    }

    #[test]
    fn trace_reports_incoming_interfaces() {
        let (t, r) = line_topology(4);
        let mut rng = StdRng::seed_from_u64(1);
        let sim = TracerouteSim::new(&t, 1.0, &mut rng);
        let oracle = RoutingOracle::new(&t, r[0]);
        let hops = sim.trace(&oracle, r[3]).unwrap();
        assert_eq!(hops.len(), 3);
        for (i, hop) in hops.iter().enumerate() {
            assert_eq!(hop.router, r[i + 1]);
            let iface = hop.interface.unwrap();
            // The reported interface belongs to the hop router and faces
            // the previous router.
            assert_eq!(t.interface(iface).router, r[i + 1]);
            assert_eq!(t.interface_between(r[i + 1], r[i]), Some(iface));
        }
    }

    #[test]
    fn unresponsive_routers_leave_gaps() {
        let (t, r) = line_topology(5);
        let mut rng = StdRng::seed_from_u64(2);
        let sim = TracerouteSim::new(&t, 0.0, &mut rng);
        let oracle = RoutingOracle::new(&t, r[0]);
        let hops = sim.trace(&oracle, r[4]).unwrap();
        assert_eq!(hops.len(), 4);
        assert!(hops.iter().all(|h| h.interface.is_none()));
    }

    #[test]
    fn unreachable_destination_is_none() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router(GeoPoint::new(0.0, 0.0).unwrap(), AsId(1));
        let z = b.add_router(GeoPoint::new(1.0, 1.0).unwrap(), AsId(1));
        let t = b.build();
        let mut rng = StdRng::seed_from_u64(3);
        let sim = TracerouteSim::new(&t, 1.0, &mut rng);
        let oracle = RoutingOracle::new(&t, a);
        assert!(sim.trace(&oracle, z).is_none());
    }

    #[test]
    fn silence_is_stable_across_probes() {
        let (t, r) = line_topology(10);
        let mut rng = StdRng::seed_from_u64(4);
        let sim = TracerouteSim::new(&t, 0.5, &mut rng);
        let oracle = RoutingOracle::new(&t, r[0]);
        let h1 = sim.trace(&oracle, r[9]).unwrap();
        let h2 = sim.trace(&oracle, r[9]).unwrap();
        assert_eq!(h1, h2);
    }

    #[test]
    fn inert_faults_reproduce_plain_trace() {
        use crate::faults::{FaultConfig, FaultPlan};
        let (t, r) = line_topology(8);
        let mut rng = StdRng::seed_from_u64(6);
        let sim = TracerouteSim::new(&t, 0.6, &mut rng);
        let oracle = RoutingOracle::new(&t, r[0]);
        let plan = FaultPlan::compile(&FaultConfig::none(), t.num_routers(), 1, 100);
        let mut session = FaultSession::new(&plan);
        for dst in &r[1..] {
            let plain = sim.trace(&oracle, *dst);
            let faulty = sim.trace_with_faults(&oracle, *dst, &mut session);
            assert_eq!(plain, faulty);
        }
        assert!(session.stats.is_zero());
    }

    #[test]
    fn retries_recover_lost_answers() {
        use crate::faults::{FaultConfig, FaultPlan};
        let (t, r) = line_topology(6);
        let mut rng = StdRng::seed_from_u64(7);
        let sim = TracerouteSim::new(&t, 1.0, &mut rng);
        let oracle = RoutingOracle::new(&t, r[0]);
        let mut cfg = FaultConfig::none();
        cfg.packet_loss = 0.4;
        cfg.max_retries = 5;
        cfg.seed = 17;
        let plan = FaultPlan::compile(&cfg, t.num_routers(), 1, 10_000);
        let mut session = FaultSession::new(&plan);
        let mut answered = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let hops = sim.trace_with_faults(&oracle, r[5], &mut session).unwrap();
            total += hops.len();
            answered += hops.iter().filter(|h| h.interface.is_some()).count();
        }
        assert!(session.stats.probes_lost > 0, "loss never fired");
        assert!(session.stats.retry_successes > 0, "no retry ever recovered");
        // With 5 retries against 40% loss, nearly every hop answers:
        // failure needs 6 consecutive losses (~0.4%).
        assert!(
            answered as f64 / total as f64 > 0.95,
            "retries failed to mask loss: {answered}/{total}"
        );
    }

    #[test]
    fn trace_to_source_is_empty() {
        let (t, r) = line_topology(3);
        let mut rng = StdRng::seed_from_u64(5);
        let sim = TracerouteSim::new(&t, 1.0, &mut rng);
        let oracle = RoutingOracle::new(&t, r[0]);
        assert_eq!(sim.trace(&oracle, r[0]).unwrap().len(), 0);
    }
}
