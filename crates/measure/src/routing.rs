//! Policy-aware shortest-path routing.
//!
//! Probe packets follow the network's actual forwarding paths, which are
//! not geographic shortest paths: interdomain hops are comparatively
//! expensive (BGP prefers staying inside a domain — a coarse model of
//! policy path inflation). We run Dijkstra per source with integer costs:
//! intradomain hop = 10, interdomain hop = 30.

use geotopo_topology::{RouterId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-hop cost of an intradomain link.
pub const INTRA_COST: u64 = 10;
/// Per-hop cost of an interdomain link.
pub const INTER_COST: u64 = 30;

/// A shortest-path forest from one source over a topology.
#[derive(Debug, Clone)]
pub struct RoutingOracle {
    source: RouterId,
    /// Parent of each router on its path from the source (`None` for the
    /// source itself and for unreachable routers).
    parent: Vec<Option<RouterId>>,
    /// Distance in cost units (`u64::MAX` = unreachable).
    dist: Vec<u64>,
}

impl RoutingOracle {
    /// Runs Dijkstra from `source`.
    pub fn new(topology: &Topology, source: RouterId) -> Self {
        let n = topology.num_routers();
        let mut dist = vec![u64::MAX; n];
        let mut parent: Vec<Option<RouterId>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[source.0 as usize] = 0;
        heap.push(Reverse((0, source.0)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, link) in topology.neighbors(RouterId(u)) {
                let w = if topology.is_interdomain(link) {
                    INTER_COST
                } else {
                    INTRA_COST
                };
                let nd = d + w;
                if nd < dist[v.0 as usize] {
                    dist[v.0 as usize] = nd;
                    parent[v.0 as usize] = Some(RouterId(u));
                    heap.push(Reverse((nd, v.0)));
                }
            }
        }
        RoutingOracle {
            source,
            parent,
            dist,
        }
    }

    /// The source router.
    pub fn source(&self) -> RouterId {
        self.source
    }

    /// Whether `dst` is reachable from the source.
    pub fn reachable(&self, dst: RouterId) -> bool {
        self.dist[dst.0 as usize] != u64::MAX
    }

    /// Path cost to `dst`, if reachable.
    pub fn cost(&self, dst: RouterId) -> Option<u64> {
        match self.dist[dst.0 as usize] {
            u64::MAX => None,
            d => Some(d),
        }
    }

    /// The router path source → `dst` inclusive, or `None` if
    /// unreachable.
    pub fn path(&self, dst: RouterId) -> Option<Vec<RouterId>> {
        if !self.reachable(dst) {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = self.parent[cur.0 as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_bgp::AsId;
    use geotopo_geo::GeoPoint;
    use geotopo_topology::TopologyBuilder;

    fn loc(i: usize) -> GeoPoint {
        GeoPoint::new(10.0 + i as f64 * 0.1, 10.0).unwrap()
    }

    #[test]
    fn path_on_a_line() {
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..5).map(|i| b.add_router(loc(i), AsId(1))).collect();
        for w in r.windows(2) {
            b.add_link_auto(w[0], w[1]).unwrap();
        }
        let t = b.build();
        let oracle = RoutingOracle::new(&t, r[0]);
        assert_eq!(oracle.path(r[4]).unwrap(), r);
        assert_eq!(oracle.cost(r[4]), Some(4 * INTRA_COST));
        assert_eq!(oracle.path(r[0]).unwrap(), vec![r[0]]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router(loc(0), AsId(1));
        let c = b.add_router(loc(1), AsId(1));
        let t = b.build();
        let oracle = RoutingOracle::new(&t, a);
        assert!(!oracle.reachable(c));
        assert_eq!(oracle.path(c), None);
        assert_eq!(oracle.cost(c), None);
    }

    #[test]
    fn avoids_interdomain_detour() {
        // a -(intra)- b -(intra)- d   versus   a -(inter)- c -(inter)- d:
        // the intra path has cost 20, the inter path 60.
        let mut b = TopologyBuilder::new();
        let a = b.add_router(loc(0), AsId(1));
        let bb = b.add_router(loc(1), AsId(1));
        let c = b.add_router(loc(2), AsId(2));
        let d = b.add_router(loc(3), AsId(1));
        b.add_link_auto(a, bb).unwrap();
        b.add_link_auto(bb, d).unwrap();
        b.add_link_auto(a, c).unwrap();
        b.add_link_auto(c, d).unwrap();
        let t = b.build();
        let oracle = RoutingOracle::new(&t, a);
        assert_eq!(oracle.path(d).unwrap(), vec![a, bb, d]);
    }

    #[test]
    fn interdomain_taken_when_shorter_overall() {
        // Direct interdomain link (cost 30) vs 5-hop intra detour (50).
        let mut b = TopologyBuilder::new();
        let a = b.add_router(loc(0), AsId(1));
        let z = b.add_router(loc(9), AsId(2));
        b.add_link_auto(a, z).unwrap();
        let mut chain = vec![a];
        for i in 1..5 {
            let r = b.add_router(loc(i), AsId(1));
            b.add_link_auto(*chain.last().unwrap(), r).unwrap();
            chain.push(r);
        }
        // Chain tail links interdomain to z as well (longer).
        b.add_link_auto(*chain.last().unwrap(), z).unwrap();
        let t = b.build();
        let oracle = RoutingOracle::new(&t, a);
        assert_eq!(oracle.path(z).unwrap(), vec![a, z]);
        assert_eq!(oracle.cost(z), Some(INTER_COST));
    }

    #[test]
    fn paths_form_a_tree() {
        // Every path is a prefix-consistent tree walk: parent pointers
        // never cycle.
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..30).map(|i| b.add_router(loc(i), AsId(1))).collect();
        for i in 1..30 {
            b.add_link_auto(r[i], r[i / 2]).unwrap();
        }
        let t = b.build();
        let oracle = RoutingOracle::new(&t, r[0]);
        for &dst in &r {
            let p = oracle.path(dst).unwrap();
            assert_eq!(p[0], r[0]);
            assert_eq!(*p.last().unwrap(), dst);
            assert!(p.len() <= 30);
        }
    }
}
