//! Deterministic fault injection in virtual probe-tick time.
//!
//! Real measurement campaigns are shaped by pathologies the paper could
//! only observe after the fact: ICMP rate-limiting, packet loss, route
//! flaps, and monitors that die mid-campaign. This module makes those
//! pathologies first-class and *reproducible*: every fault decision is a
//! hash of `(fault seed, virtual tick, router)` — never a draw from the
//! collectors' RNG streams — so an inert plan leaves collection
//! byte-identical to a fault-free build, and an active plan produces the
//! same bytes at any thread count.
//!
//! Time is counted in **probe ticks**: the virtual clock advances by one
//! for every probe a collector sends, and retry backoff advances it
//! further without sending. There is no wall clock anywhere; flap windows
//! and outage onsets are expressed in ticks against the campaign's
//! expected probe budget.

use serde::{Deserialize, Serialize};

/// splitmix64 finalizer: a well-mixed 64-bit hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` keyed by `(seed, a, b)`. Decisions derived
/// from this never perturb collector RNG state.
fn unit(seed: u64, a: u64, b: u64) -> f64 {
    let h = mix(seed ^ mix(a ^ mix(b)));
    // 53 high bits → exactly representable in f64.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const LOSS_SALT: u64 = 0x10_55;
const FLAP_SALT: u64 = 0xF1_A9;
const OUTAGE_SALT: u64 = 0x0D_1E;

/// An engine-level injected failure: the named stage fails transiently on
/// its first `failures` execution attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageFailure {
    /// Stage name, as reported in `StageReport`.
    pub stage: String,
    /// How many leading attempts fail before the stage succeeds.
    pub failures: u32,
}

/// The fault profile for a run.
///
/// Probe-level fields are serialized — they change the measured output,
/// so they must feed the config fingerprint. `stage_failures` is
/// deliberately `#[serde(skip)]`: a retried stage is pure, so injected
/// engine failures are output-neutral and must *not* change the
/// fingerprint — that is exactly what lets a killed run resume from the
/// artifacts its healthy stages already produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-probe packet loss probability.
    pub packet_loss: f64,
    /// Per-router ICMP token-bucket capacity (0 disables rate-limiting).
    pub rate_limit_burst: u32,
    /// Tokens refilled per virtual tick.
    pub rate_limit_refill: f64,
    /// Fraction of routers that suffer one transient route flap.
    pub flap_fraction: f64,
    /// Flap window length, as a fraction of the campaign's probe budget.
    pub flap_duration: f64,
    /// Fraction of monitors that go dark mid-campaign and stay dark.
    pub outage_fraction: f64,
    /// Minimum fraction of planned monitors that must stay healthy for a
    /// collection to count; below this the stage reports quorum loss.
    pub quorum: f64,
    /// Probe retransmissions attempted when a probe goes unanswered.
    pub max_retries: u32,
    /// Base retry backoff in virtual ticks (doubles per attempt).
    pub retry_backoff: u64,
    /// Seed for all hash-derived fault decisions.
    pub seed: u64,
    /// Engine-level injected stage failures (output-neutral; see above).
    #[serde(skip)]
    pub stage_failures: Vec<StageFailure>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// The inert plan: no faults, no retries — byte-identical to a build
    /// without the fault substrate.
    pub fn none() -> Self {
        FaultConfig {
            packet_loss: 0.0,
            rate_limit_burst: 0,
            rate_limit_refill: 0.0,
            flap_fraction: 0.0,
            flap_duration: 0.0,
            outage_fraction: 0.0,
            quorum: 0.5,
            max_retries: 0,
            retry_backoff: 4,
            seed: 0,
            stage_failures: Vec::new(),
        }
    }

    /// A profile scaled by `severity` in `[0, 1]`: 0 is inert, 1 is a
    /// badly-behaved internet. Outage stays below the default quorum so
    /// severity sweeps complete instead of aborting.
    pub fn at_severity(severity: f64, seed: u64) -> Self {
        let s = severity.clamp(0.0, 1.0);
        FaultConfig {
            packet_loss: 0.10 * s,
            rate_limit_burst: if s > 0.0 {
                (30.0 - 26.0 * s).round() as u32
            } else {
                0
            },
            rate_limit_refill: if s > 0.0 {
                0.25 * (1.0 - s) + 0.01
            } else {
                0.0
            },
            flap_fraction: 0.15 * s,
            flap_duration: 0.20 * s,
            outage_fraction: 0.40 * s,
            quorum: 0.5,
            max_retries: if s > 0.0 { 2 } else { 0 },
            retry_backoff: 4,
            seed,
            stage_failures: Vec::new(),
        }
    }

    /// Looks a named profile up (`none`, `light`, `moderate`, `heavy`).
    pub fn profile(name: &str, seed: u64) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "light" => Some(Self::at_severity(0.25, seed)),
            "moderate" => Some(Self::at_severity(0.5, seed)),
            "heavy" => Some(Self::at_severity(0.8, seed)),
            _ => None,
        }
    }

    /// Whether the probe-level plan injects nothing (engine-level
    /// `stage_failures` do not affect probing).
    pub fn is_inert(&self) -> bool {
        self.packet_loss <= 0.0
            && self.rate_limit_burst == 0
            && self.flap_fraction <= 0.0
            && self.outage_fraction <= 0.0
    }

    /// How many leading attempts of `stage` are set to fail.
    pub fn failing_attempts(&self, stage: &str) -> u32 {
        self.stage_failures
            .iter()
            .filter(|f| f.stage == stage)
            .map(|f| f.failures)
            .sum()
    }

    /// Minimum healthy monitors out of `planned` for quorum (at least 1).
    pub fn quorum_monitors(&self, planned: usize) -> usize {
        ((self.quorum * planned as f64).ceil() as usize).max(1)
    }
}

/// What happened to one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeFate {
    /// The probe reached the router and an answer came back.
    Answered,
    /// The probe (or its answer) was dropped in transit.
    Lost,
    /// The router's ICMP token bucket was empty.
    RateLimited,
    /// The route through this router was flapping; no answer.
    Flapped,
}

/// Counters for every injected-and-survived pathology. All zero on a
/// fault-free run; folded into `AnomalyStats` by the collectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Probes lost in transit.
    pub probes_lost: u64,
    /// Probes swallowed by ICMP rate-limiting.
    pub rate_limited: u64,
    /// Probes that hit a flapping route.
    pub flap_breaks: u64,
    /// Retransmissions sent.
    pub retries: u64,
    /// Retransmissions that recovered an answer a fault had swallowed.
    pub retry_successes: u64,
    /// Probes never sent because the monitor was in outage.
    pub outage_skips: u64,
}

impl FaultStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.probes_lost += other.probes_lost;
        self.rate_limited += other.rate_limited;
        self.flap_breaks += other.flap_breaks;
        self.retries += other.retries;
        self.retry_successes += other.retry_successes;
        self.outage_skips += other.outage_skips;
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// A compiled fault plan for one collection campaign: which routers flap
/// (and when), and which monitors go dark (and when), all precomputed so
/// per-probe decisions are O(1) lookups plus one hash.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    inert: bool,
    /// Per-router flap window `[start, end)` in ticks, if any.
    flaps: Vec<Option<(u64, u64)>>,
    /// Per-monitor permanent outage onset tick, if any.
    outages: Vec<Option<u64>>,
}

impl FaultPlan {
    /// Compiles a plan for a campaign over `n_routers` routers and
    /// `n_monitors` monitors expected to send about `expected_probes`
    /// probes in total. Window placement scales with the probe budget;
    /// the estimate only has to be the right order of magnitude.
    pub fn compile(
        cfg: &FaultConfig,
        n_routers: usize,
        n_monitors: usize,
        expected_probes: u64,
    ) -> Self {
        let inert = cfg.is_inert();
        let budget = expected_probes.max(1) as f64;
        let flaps = (0..n_routers as u64)
            .map(|r| {
                if cfg.flap_fraction > 0.0 && unit(cfg.seed ^ FLAP_SALT, r, 0) < cfg.flap_fraction {
                    let start = (unit(cfg.seed ^ FLAP_SALT, r, 1) * budget) as u64;
                    let len = ((cfg.flap_duration * budget) as u64).max(1);
                    Some((start, start.saturating_add(len)))
                } else {
                    None
                }
            })
            .collect();
        let outages = (0..n_monitors as u64)
            .map(|m| {
                if cfg.outage_fraction > 0.0
                    && unit(cfg.seed ^ OUTAGE_SALT, m, 0) < cfg.outage_fraction
                {
                    // Mid-campaign: somewhere in the first 10–60% of the
                    // probe budget, so even early monitors can be caught.
                    let frac = 0.10 + 0.50 * unit(cfg.seed ^ OUTAGE_SALT, m, 1);
                    Some((frac * budget) as u64)
                } else {
                    None
                }
            })
            .collect();
        FaultPlan {
            cfg: cfg.clone(),
            inert,
            flaps,
            outages,
        }
    }

    /// The config this plan was compiled from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }
}

/// Mutable campaign state: the virtual clock, per-router token buckets,
/// and the pathology counters.
#[derive(Debug)]
pub struct FaultSession<'p> {
    plan: &'p FaultPlan,
    tick: u64,
    /// Probes actually sent (first transmissions and retries alike).
    probes_sent: u64,
    /// Per-router remaining tokens, refilled lazily by elapsed ticks.
    tokens: Vec<f64>,
    /// Tick of each router's last refill.
    refilled_at: Vec<u64>,
    /// Pathology counters for this campaign.
    pub stats: FaultStats,
}

impl<'p> FaultSession<'p> {
    /// Starts a session at tick 0 with full token buckets.
    pub fn new(plan: &'p FaultPlan) -> Self {
        Self::at_tick(plan, 0)
    }

    /// Starts a session at an arbitrary `base` tick with full token
    /// buckets. Monitor-parallel collection carves the virtual clock
    /// into per-monitor slices (monitor `m` starts at `m × slice_len`):
    /// loss hashes, flap windows, and outage onsets all key off the
    /// absolute tick, so a monitor's fate stream depends only on its own
    /// slice — never on thread interleaving.
    pub fn at_tick(plan: &'p FaultPlan, base: u64) -> Self {
        let n = plan.flaps.len();
        FaultSession {
            plan,
            tick: base,
            probes_sent: 0,
            tokens: vec![f64::from(plan.cfg.rate_limit_burst); n],
            refilled_at: vec![base; n],
            stats: FaultStats::default(),
        }
    }

    /// The current virtual time.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Probes sent so far (retransmissions included).
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    /// Retransmissions allowed per silent probe.
    pub fn max_retries(&self) -> u32 {
        self.plan.cfg.max_retries
    }

    /// Sends one probe toward `router`, advancing the clock one tick and
    /// deciding its fate. The inert fast path answers unconditionally.
    pub fn probe(&mut self, router: u32) -> ProbeFate {
        self.tick += 1;
        self.probes_sent += 1;
        if self.plan.inert {
            return ProbeFate::Answered;
        }
        let r = router as usize;
        if let Some(&Some((start, end))) = self.plan.flaps.get(r) {
            if start <= self.tick && self.tick < end {
                self.stats.flap_breaks += 1;
                return ProbeFate::Flapped;
            }
        }
        let cfg = &self.plan.cfg;
        if cfg.packet_loss > 0.0
            && unit(cfg.seed ^ LOSS_SALT, self.tick, u64::from(router)) < cfg.packet_loss
        {
            self.stats.probes_lost += 1;
            return ProbeFate::Lost;
        }
        if cfg.rate_limit_burst > 0 {
            let elapsed = (self.tick - self.refilled_at[r]) as f64;
            let burst = f64::from(cfg.rate_limit_burst);
            self.tokens[r] = (self.tokens[r] + elapsed * cfg.rate_limit_refill).min(burst);
            self.refilled_at[r] = self.tick;
            if self.tokens[r] < 1.0 {
                self.stats.rate_limited += 1;
                return ProbeFate::RateLimited;
            }
            self.tokens[r] -= 1.0;
        }
        ProbeFate::Answered
    }

    /// Waits out the backoff before retry `attempt` (1-based), advancing
    /// virtual time without sending anything.
    pub fn backoff(&mut self, attempt: u32) {
        let shift = attempt.saturating_sub(1).min(6);
        self.tick += self.plan.cfg.retry_backoff << shift;
    }

    /// Whether monitor `m` is in outage at the current tick.
    pub fn monitor_down(&self, m: usize) -> bool {
        matches!(
            self.plan.outages.get(m),
            Some(&Some(onset)) if self.tick >= onset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // Exact equality is the property under test: the hash is a pure
    // function of its integer inputs, bit-for-bit.
    #[allow(clippy::float_cmp)]
    fn unit_is_deterministic_and_uniformish() {
        assert_eq!(unit(1, 2, 3), unit(1, 2, 3));
        assert_ne!(unit(1, 2, 3), unit(1, 2, 4));
        let mean: f64 = (0..1000).map(|i| unit(9, i, 0)).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from uniform");
        assert!((0..1000).all(|i| (0.0..1.0).contains(&unit(9, i, 1))));
    }

    #[test]
    fn inert_plan_always_answers() {
        let plan = FaultPlan::compile(&FaultConfig::none(), 8, 4, 1000);
        let mut s = FaultSession::new(&plan);
        for r in 0..8u32 {
            assert_eq!(s.probe(r), ProbeFate::Answered);
        }
        assert_eq!(s.tick(), 8);
        assert_eq!(s.probes_sent(), 8);
        assert!(s.stats.is_zero());
        assert!(!s.monitor_down(0));
    }

    #[test]
    fn token_bucket_exhausts_and_refills() {
        let mut cfg = FaultConfig::none();
        cfg.rate_limit_burst = 2;
        cfg.rate_limit_refill = 0.5;
        let plan = FaultPlan::compile(&cfg, 1, 1, 100);
        let mut s = FaultSession::new(&plan);
        // Each probe advances one tick and refills 0.5, so the bucket
        // drains by 0.5/probe: answers until tokens dip below 1.
        assert_eq!(s.probe(0), ProbeFate::Answered); // 2.5 - 1 = 1.5
        assert_eq!(s.probe(0), ProbeFate::Answered); // 2.0 - 1 = 1.0
        assert_eq!(s.probe(0), ProbeFate::Answered); // 1.5 - 1 = 0.5
        assert_eq!(s.probe(0), ProbeFate::RateLimited); // 1.0 > tokens
        assert!(s.stats.rate_limited >= 1);
        // Backoff gives the bucket time to refill.
        s.backoff(1);
        assert_eq!(s.probe(0), ProbeFate::Answered);
    }

    #[test]
    fn flap_window_silences_only_its_router_and_ticks() {
        let mut cfg = FaultConfig::none();
        cfg.flap_fraction = 1.0; // every router flaps
        cfg.flap_duration = 0.5;
        cfg.seed = 7;
        let plan = FaultPlan::compile(&cfg, 4, 1, 100);
        let mut s = FaultSession::new(&plan);
        let mut flapped = 0;
        let mut answered = 0;
        for t in 0..200u32 {
            match s.probe(t % 4) {
                ProbeFate::Flapped => flapped += 1,
                ProbeFate::Answered => answered += 1,
                other => panic!("unexpected fate {other:?}"),
            }
        }
        assert!(flapped > 0, "no probe hit a flap window");
        assert!(answered > 0, "flaps must be transient, not permanent");
        assert_eq!(s.stats.flap_breaks, flapped);
    }

    #[test]
    fn outage_onset_is_permanent() {
        let mut cfg = FaultConfig::none();
        cfg.outage_fraction = 1.0;
        cfg.seed = 3;
        let plan = FaultPlan::compile(&cfg, 2, 3, 100);
        let mut s = FaultSession::new(&plan);
        assert!(!s.monitor_down(0), "outage must not start at tick 0");
        for _ in 0..200 {
            s.probe(0);
        }
        for m in 0..3 {
            assert!(s.monitor_down(m), "monitor {m} should be dark by now");
        }
    }

    #[test]
    fn base_tick_sessions_replay_the_absolute_clock() {
        let mut cfg = FaultConfig::none();
        cfg.packet_loss = 0.3;
        cfg.flap_fraction = 0.5;
        cfg.flap_duration = 0.2;
        cfg.seed = 21;
        let plan = FaultPlan::compile(&cfg, 6, 2, 400);
        // A session probing straight through [0, 200) must agree with a
        // session started mid-stream at tick 100 on every fate in
        // [100, 200): loss hashes and flap windows key off the absolute
        // tick, so slicing the clock never changes what a tick holds.
        // (Token buckets are the exception — they restart full at the
        // base — so this config leaves rate-limiting off.)
        let mut whole = FaultSession::new(&plan);
        let mut sliced = FaultSession::at_tick(&plan, 100);
        assert_eq!(sliced.tick(), 100);
        for t in 0..200u32 {
            let w = whole.probe(t % 6);
            if t >= 100 {
                assert_eq!(w, sliced.probe(t % 6), "fate diverged at tick {t}");
            }
        }
        assert_eq!(sliced.probes_sent(), 100);
    }

    #[test]
    fn packet_loss_rate_tracks_probability() {
        let mut cfg = FaultConfig::none();
        cfg.packet_loss = 0.2;
        cfg.seed = 11;
        let plan = FaultPlan::compile(&cfg, 1, 1, 10_000);
        let mut s = FaultSession::new(&plan);
        for _ in 0..10_000 {
            s.probe(0);
        }
        let rate = s.stats.probes_lost as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.03, "loss rate {rate} far from 0.2");
    }

    #[test]
    fn severity_zero_is_inert_and_profiles_resolve() {
        assert!(FaultConfig::at_severity(0.0, 1).is_inert());
        assert!(!FaultConfig::at_severity(0.5, 1).is_inert());
        assert!(FaultConfig::profile("none", 1).is_some_and(|c| c.is_inert()));
        for name in ["light", "moderate", "heavy"] {
            assert!(
                FaultConfig::profile(name, 1).is_some_and(|c| !c.is_inert()),
                "{name} should be an active profile"
            );
        }
        assert!(FaultConfig::profile("bogus", 1).is_none());
    }

    #[test]
    fn stage_failures_do_not_serialize() {
        let mut cfg = FaultConfig::at_severity(0.3, 5);
        let clean = serde_json::to_string(&cfg).expect("serializes");
        cfg.stage_failures.push(StageFailure {
            stage: "collect-skitter".into(),
            failures: 2,
        });
        let faulty = serde_json::to_string(&cfg).expect("serializes");
        assert_eq!(
            clean, faulty,
            "stage failures are output-neutral and must be fingerprint-neutral"
        );
        assert_eq!(cfg.failing_attempts("collect-skitter"), 2);
        assert_eq!(cfg.failing_attempts("route-table"), 0);
    }

    #[test]
    fn quorum_counts_round_up() {
        let cfg = FaultConfig::none();
        assert_eq!(cfg.quorum_monitors(19), 10);
        assert_eq!(cfg.quorum_monitors(1), 1);
        assert_eq!(cfg.quorum_monitors(0), 1);
    }
}
