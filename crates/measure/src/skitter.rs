//! Skitter-like multi-monitor collection.
//!
//! "Skitter sends hop-limited probes to a list of destination nodes
//! located worldwide ... a successful Skitter probe reports a sequence of
//! interfaces along contiguous routers on the path from the source to the
//! destination. In this study, we treat interfaces as virtual nodes, and
//! define a link to mean a connection between two adjacent interfaces."
//!
//! Faithfully reproduced artifacts:
//!
//! - the dataset is the **union of forward paths from ~19 monitors**;
//! - nodes are **interfaces, not routers** (no alias resolution);
//! - destination-list addresses are end hosts — after collection, "we
//!   further discarded all interfaces appearing in the destination lists";
//! - self-loops and duplicate observations are discarded as anomalies.

use crate::dataset::{MeasuredDataset, MonitorRecord, NodeKind};
use crate::faults::{FaultConfig, FaultPlan, FaultSession, FaultStats};
use crate::probe::{TraceBuf, TracerouteSim};
use crate::routing::{RoutingOracle, RoutingScratch, RoutingStats};
use geotopo_bgp::trie::PrefixTrie;
use geotopo_stats::{ChunkExec, SerialExec};
use geotopo_topology::generate::GroundTruth;
use geotopo_topology::{InterfaceId, RouterId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Destinations per trace chunk: the unit of interior parallelism
/// within one monitor's campaign. Fixed (never derived from the thread
/// count) so the job list — and every merged byte — is identical at any
/// parallelism.
pub const DEST_CHUNK: usize = 2048;

/// Trace-chunk jobs dispatched per wave. Each wave's replay logs are
/// merged into the dataset before the next wave runs, bounding how much
/// raw event log is ever resident while still keeping far more jobs in
/// flight than any scheduler has workers. Fixed (never derived from the
/// thread count) so wave boundaries — and the merge order — are
/// identical at any parallelism.
const TRACE_WAVE_JOBS: usize = 64;

/// Skitter collection parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkitterConfig {
    /// Number of monitors (the paper's dataset unions 19).
    pub n_monitors: usize,
    /// Total destination-list size.
    pub destinations: usize,
    /// Fraction of the destination list each monitor probes
    /// ("each probing a destination list of varying size").
    pub monitor_coverage: f64,
    /// Per-router probe-response probability.
    pub response_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SkitterConfig {
    /// Paper-like defaults scaled to the world size: the destination list
    /// covers the address space densely enough that most of the core is
    /// traversed.
    pub fn scaled(gt: &GroundTruth, seed: u64) -> Self {
        SkitterConfig {
            n_monitors: 19,
            destinations: gt.topology.num_routers() * 3,
            monitor_coverage: 0.8,
            response_prob: 0.97,
            seed,
        }
    }
}

/// Skitter collection result.
#[derive(Debug, Serialize, Deserialize)]
pub struct SkitterOutput {
    /// The processed interface-level dataset (destinations discarded).
    pub dataset: MeasuredDataset,
    /// Interfaces observed before destination discarding.
    pub raw_nodes: usize,
    /// Destination-list nodes discarded (paper: 18%).
    pub discarded_destinations: usize,
    /// The monitors planned for the campaign.
    pub monitors: Vec<RouterId>,
    /// Monitors that lost more of their campaign to outage than they
    /// completed (also recorded per-monitor in `dataset.anomalies`).
    pub failed_monitors: usize,
    /// Probes actually sent during the campaign (retries included).
    #[serde(default)]
    pub probes_sent: u64,
    /// Virtual probe-tick clock reading at campaign end (probes sent
    /// plus backoff waits; see `faults`).
    #[serde(default)]
    pub virtual_ticks: u64,
    /// Shortest-path solver counters, merged in monitor-index order.
    #[serde(default)]
    pub routing: RoutingStats,
}

impl SkitterOutput {
    /// Monitors that stayed healthy for at least half their campaign.
    pub fn active_monitors(&self) -> usize {
        self.monitors.len().saturating_sub(self.failed_monitors)
    }
}

/// One dataset event recorded by a trace chunk, replayed serially in
/// (monitor, chunk) order. Interfaces are named by id — the epilogue
/// resolves them through a vec-indexed intern cache instead of a by-IP
/// hash probe per event.
#[derive(Debug, Clone, Copy)]
enum ReplayEvent {
    /// A responding hop: intern the interface and link it to the
    /// previous node in the chain.
    Iface(InterfaceId),
    /// The destination end host answering last.
    Host(Ipv4Addr),
    /// Chain break (silent router or end of a trace).
    Break,
}

/// One (monitor, destination-chunk) job's output: the dataset events to
/// replay plus every per-chunk counter. Merged serially in job-index
/// order — monitor-major, chunk-minor — which is what keeps the final
/// dataset byte-identical at any thread count.
#[derive(Debug)]
struct TraceChunk {
    replay: Vec<ReplayEvent>,
    probes: u64,
    skipped: u64,
    probes_sent: u64,
    ticks_elapsed: u64,
    fstats: FaultStats,
}

/// The Skitter collector.
#[derive(Debug)]
pub struct Skitter;

impl Skitter {
    /// Runs a fault-free collection over the ground-truth world.
    pub fn collect(gt: &GroundTruth, cfg: &SkitterConfig) -> SkitterOutput {
        Self::collect_with_faults(gt, cfg, &FaultConfig::none())
    }

    /// Runs a collection under an injected fault plan, executing every
    /// trace chunk serially. With an inert plan this is byte-identical
    /// to [`collect`](Self::collect): fault decisions are hash-derived
    /// in virtual probe-tick time and never touch the collection RNG
    /// stream.
    pub fn collect_with_faults(
        gt: &GroundTruth,
        cfg: &SkitterConfig,
        faults: &FaultConfig,
    ) -> SkitterOutput {
        Self::collect_with_faults_exec(gt, cfg, faults, &SerialExec)
    }

    /// Runs a collection with its interior jobs dispatched through
    /// `exec` — the engine passes its deterministic scoped-thread
    /// scheduler here. Parallelism is two-layered: one routing oracle
    /// per monitor, then one trace job per (monitor, [`DEST_CHUNK`]
    /// destinations) pair, so a 19-monitor campaign exposes far more
    /// than 19 units of work. The output is byte-identical for any
    /// conforming [`ChunkExec`] because all RNG draws happen up front
    /// in the serial prologue, each trace chunk owns a fixed slice of
    /// the virtual fault clock, and results merge in job-index order.
    pub fn collect_with_faults_exec(
        gt: &GroundTruth,
        cfg: &SkitterConfig,
        faults: &FaultConfig,
        exec: &impl ChunkExec,
    ) -> SkitterOutput {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let t = &gt.topology;

        // Ground-truth address ownership (who a destination belongs to).
        let mut truth = PrefixTrie::new();
        for alloc in &gt.allocations {
            for &p in &alloc.prefixes {
                truth.insert(p, alloc.asn);
            }
        }

        // Destination list: end-host addresses spread over the allocated
        // space ("the destination lists are created with the aim to cover
        // all blocks of 256 addresses ... destinations selected by several
        // methods").
        let alloc_weights: Vec<f64> = gt.allocations.iter().map(|a| a.capacity() as f64).collect();
        let alloc_pick =
            geotopo_stats::AliasTable::new(&alloc_weights).expect("non-empty allocations"); // lint: allow(unwrap): generated worlds always allocate prefixes
        let mut destinations: Vec<Ipv4Addr> = Vec::with_capacity(cfg.destinations);
        let mut dest_set: HashSet<Ipv4Addr> = HashSet::new();
        let mut guard = 0usize;
        while destinations.len() < cfg.destinations && guard < cfg.destinations * 10 {
            guard += 1;
            let alloc = &gt.allocations[alloc_pick.sample(&mut rng)];
            let prefix = alloc.prefixes[rng.random_range(0..alloc.prefixes.len())];
            let off = rng.random_range(0..prefix.size());
            let Some(ip) = prefix.nth(off) else { continue };
            if dest_set.insert(ip) {
                destinations.push(ip);
            }
        }

        // Monitors: distinct routers, preferring distinct regions first.
        let monitors = pick_monitors(gt, cfg.n_monitors, &mut rng);

        let sim = TracerouteSim::new(t, cfg.response_prob, &mut rng);

        // Last of the serial RNG prologue: pre-draw every coverage coin
        // in the exact nested (monitor, destination) order the serial
        // loop used, so the RNG stream — and therefore every downstream
        // byte — is independent of how the jobs are later scheduled.
        let coverage: Vec<bool> = (0..monitors.len() * destinations.len())
            .map(|_| rng.random::<f64>() < cfg.monitor_coverage)
            .collect();

        // Compile the fault plan against the campaign's probe budget
        // (monitors × destinations × coverage × a typical hop count) so
        // flap windows and outage onsets land mid-campaign.
        let expected_probes =
            (monitors.len() as f64 * destinations.len() as f64 * cfg.monitor_coverage * 8.0) as u64;
        let plan = FaultPlan::compile(faults, t.num_routers(), monitors.len(), expected_probes);
        // Each monitor owns a disjoint slice of the virtual clock, so
        // its hash-derived fate stream depends only on its own probes.
        let slice_len = (expected_probes / monitors.len().max(1) as u64).max(1);

        // Attachment routers resolved once per destination (the old
        // per-monitor loop re-resolved each destination from the trie
        // for every monitor covering it): a deterministic member of the
        // destination's AS (the access router serving it). Per-AS
        // membership comes straight off the topology's packed AS ranges
        // (ascending router ids). Pure function of the world, so the
        // chunked fan-out is trivially byte-identical.
        let n_dest_chunks = destinations.len().div_ceil(DEST_CHUNK).max(1);
        let attach: Vec<Option<RouterId>> = exec
            .dispatch(n_dest_chunks, &|c| {
                let lo = c * DEST_CHUNK;
                let hi = ((c + 1) * DEST_CHUNK).min(destinations.len());
                destinations[lo..hi]
                    .iter()
                    .map(|&dst_ip| {
                        let (asn, _) = truth.lookup(dst_ip)?;
                        let members = t.routers_of_as(*asn);
                        if members.is_empty() {
                            return None;
                        }
                        Some(members[(u32::from(dst_ip) as usize) % members.len()])
                    })
                    .collect::<Vec<_>>()
            })
            .concat();

        // Phase 1: one policy-aware shortest-path oracle per monitor.
        // Oracles are immutable after the solve and shared by reference
        // into every trace chunk of their monitor.
        let mut solved = exec.dispatch(monitors.len(), &|m| {
            let mut scratch = RoutingScratch::new();
            let oracle = RoutingOracle::new_in(t, monitors[m], &mut scratch);
            (oracle, scratch.stats)
        });
        let mut routing = RoutingStats::default();
        let mut oracles = Vec::with_capacity(solved.len());
        for (oracle, stats) in solved.drain(..) {
            routing.absorb(&stats);
            oracles.push(oracle);
        }

        // Phase 2: trace jobs, one per (monitor, destination chunk),
        // monitor-major so the merge below reads in the same nested
        // order the serial loop produced. Each chunk opens its own
        // fault session at a fixed tick — monitor slice base plus a
        // per-chunk stride — so its hash-derived fate stream depends
        // only on its own coordinates, never on scheduling.
        let chunk_ticks = (slice_len / n_dest_chunks as u64).max(1);
        let n_jobs = monitors.len() * n_dest_chunks;
        let trace_job = |j: usize| -> TraceChunk {
            let m_idx = j / n_dest_chunks;
            let c = j % n_dest_chunks;
            let lo = c * DEST_CHUNK;
            let hi = ((c + 1) * DEST_CHUNK).min(destinations.len());
            let oracle = &oracles[m_idx];
            let base = m_idx as u64 * slice_len + c as u64 * chunk_ticks;
            let mut session = FaultSession::at_tick(&plan, base);
            let mut buf = TraceBuf::new();
            let mut replay: Vec<ReplayEvent> = Vec::new();
            let (mut probes, mut skipped) = (0u64, 0u64);
            let cover = &coverage[m_idx * destinations.len()..(m_idx + 1) * destinations.len()];
            for d_idx in lo..hi {
                if !cover[d_idx] {
                    continue;
                }
                if session.monitor_down(m_idx) {
                    skipped += 1;
                    session.stats.outage_skips += 1;
                    continue;
                }
                probes += 1;
                let Some(dst) = attach[d_idx] else { continue };
                let Some(hops) = sim.trace_with_faults_into(oracle, dst, &mut session, &mut buf)
                else {
                    continue;
                };
                // Record the chain events: reported interfaces extend
                // it, silence breaks it so no false link spans an
                // unresponsive router.
                let mut chained = false;
                for hop in hops {
                    match hop.interface {
                        Some(iface) => {
                            replay.push(ReplayEvent::Iface(iface));
                            chained = true;
                        }
                        None => {
                            replay.push(ReplayEvent::Break);
                            chained = false;
                        }
                    }
                }
                // The destination end host responds last.
                if chained {
                    replay.push(ReplayEvent::Host(destinations[d_idx]));
                }
                replay.push(ReplayEvent::Break);
            }
            TraceChunk {
                replay,
                probes,
                skipped,
                probes_sent: session.probes_sent(),
                ticks_elapsed: session.tick() - base,
                fstats: session.stats,
            }
        };

        // Serial epilogue, interleaved in waves: trace jobs are
        // dispatched [`TRACE_WAVE_JOBS`] at a time and each wave's
        // replay logs are folded into the dataset (in job-index order)
        // before the next wave runs, so at most one wave of raw event
        // logs is resident — a large campaign records tens of millions
        // of events, and materializing them all at once costs ~10x the
        // final dataset in peak RSS. Wave boundaries are fixed (never
        // derived from the thread count), so node interning — and with
        // it every downstream byte — is schedule-independent.
        // Interfaces intern through a vec-indexed cache; only first
        // sightings and end hosts touch the dataset's by-IP hash map.
        let mut dataset = MeasuredDataset::new(NodeKind::Interface);
        let mut records: Vec<MonitorRecord> = monitors
            .iter()
            .map(|m| MonitorRecord {
                router: m.0,
                node: None,
                probes: 0,
                skipped: 0,
            })
            .collect();
        let mut fault_stats = FaultStats::default();
        let (mut probes_sent, mut virtual_ticks) = (0u64, 0u64);
        let mut iface_node: Vec<u32> = vec![u32::MAX; t.num_interfaces()];
        let mut wave_base = 0usize;
        while wave_base < n_jobs {
            let wave_len = TRACE_WAVE_JOBS.min(n_jobs - wave_base);
            let chunks = exec.dispatch(wave_len, &|w| trace_job(wave_base + w));
            // Chunks are consumed by value so each replay log is freed
            // as soon as it has been replayed: the allocator reuses
            // those pages for the growing dataset.
            for (w, chunk) in chunks.into_iter().enumerate() {
                let j = wave_base + w;
                let mut prev: Option<u32> = None;
                for ev in &chunk.replay {
                    match ev {
                        ReplayEvent::Iface(id) => {
                            let slot = &mut iface_node[id.0 as usize];
                            let node = if *slot != u32::MAX {
                                *slot
                            } else {
                                let node = dataset.intern(t.interface(*id).ip);
                                *slot = node;
                                node
                            };
                            if let Some(p) = prev {
                                dataset.observe_link(p, node);
                            }
                            prev = Some(node);
                        }
                        ReplayEvent::Host(ip) => {
                            let node = dataset.intern(*ip);
                            if let Some(p) = prev {
                                dataset.observe_link(p, node);
                            }
                            prev = Some(node);
                        }
                        ReplayEvent::Break => prev = None,
                    }
                }
                let record = &mut records[j / n_dest_chunks];
                record.probes += chunk.probes;
                record.skipped += chunk.skipped;
                fault_stats.absorb(&chunk.fstats);
                probes_sent += chunk.probes_sent;
                virtual_ticks += chunk.ticks_elapsed;
            }
            wave_base += wave_len;
        }

        // Anchor each monitor record at the lowest-indexed interface of
        // its router present in the dataset (before destination
        // discarding — remove_nodes remaps or clears the reference).
        let mut first_node_of_router: HashMap<u32, u32> = HashMap::new();
        for (i, node) in dataset.nodes().iter().enumerate() {
            if let Some(iface) = t.interface_by_ip(node.ip) {
                first_node_of_router
                    .entry(t.interface(iface).router.0)
                    .or_insert(i as u32);
            }
        }
        for record in &mut records {
            record.node = first_node_of_router.get(&record.router).copied();
        }
        let failed_monitors = records.iter().filter(|r| r.failed()).count();
        dataset.anomalies.faults.absorb(&fault_stats);
        dataset.anomalies.monitors = records;

        // Discard destination-list interfaces (end hosts).
        let raw_nodes = dataset.num_nodes();
        let mut remove: HashSet<u32> = HashSet::new();
        for ip in &dest_set {
            if let Some(n) = dataset.node_by_ip(*ip) {
                remove.insert(n);
            }
        }
        let discarded_destinations = remove.len();
        dataset.remove_nodes(&remove);

        SkitterOutput {
            dataset,
            raw_nodes,
            discarded_destinations,
            monitors,
            failed_monitors,
            probes_sent,
            virtual_ticks,
            routing,
        }
    }
}

/// Picks monitor routers spread across regions.
fn pick_monitors(gt: &GroundTruth, n: usize, rng: &mut StdRng) -> Vec<RouterId> {
    let n_regions = gt.config.regions.len();
    let mut by_region: Vec<Vec<u32>> = vec![Vec::new(); n_regions];
    for (i, &reg) in gt.router_region.iter().enumerate() {
        by_region[reg as usize].push(i as u32);
    }
    let mut monitors = Vec::with_capacity(n);
    let mut region = 0usize;
    let mut guard = 0usize;
    while monitors.len() < n && guard < n * 20 {
        guard += 1;
        let bucket = &by_region[region % n_regions];
        region += 1;
        if bucket.is_empty() {
            continue;
        }
        let pick = RouterId(bucket[rng.random_range(0..bucket.len())]);
        if !monitors.contains(&pick) {
            monitors.push(pick);
        }
    }
    monitors
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_topology::generate::GroundTruthConfig;

    fn world() -> GroundTruth {
        GroundTruth::generate(GroundTruthConfig::tiny(77)).unwrap()
    }

    #[test]
    fn collects_interface_level_dataset() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 5,
            destinations: 800,
            monitor_coverage: 0.8,
            response_prob: 0.97,
            seed: 1,
        };
        let out = Skitter::collect(&gt, &cfg);
        assert_eq!(out.dataset.kind, NodeKind::Interface);
        assert!(
            out.dataset.num_nodes() > 100,
            "nodes {}",
            out.dataset.num_nodes()
        );
        assert!(
            out.dataset.num_links() > 100,
            "links {}",
            out.dataset.num_links()
        );
        assert_eq!(out.monitors.len(), 5);
    }

    #[test]
    fn destination_interfaces_are_discarded() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 4,
            destinations: 500,
            monitor_coverage: 1.0,
            response_prob: 1.0,
            seed: 2,
        };
        let out = Skitter::collect(&gt, &cfg);
        assert!(out.discarded_destinations > 0);
        assert_eq!(
            out.dataset.num_nodes(),
            out.raw_nodes - out.discarded_destinations
        );
        // A meaningful share of raw nodes were destinations (paper: 18%).
        let frac = out.discarded_destinations as f64 / out.raw_nodes as f64;
        assert!(frac > 0.03 && frac < 0.6, "destination share {frac}");
    }

    #[test]
    fn observed_interfaces_exist_in_ground_truth() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 3,
            destinations: 300,
            monitor_coverage: 1.0,
            response_prob: 1.0,
            seed: 3,
        };
        let out = Skitter::collect(&gt, &cfg);
        for node in out.dataset.nodes() {
            assert!(
                gt.topology.interface_by_ip(node.ip).is_some(),
                "phantom interface {}",
                node.ip
            );
        }
    }

    #[test]
    fn more_monitors_see_more() {
        let gt = world();
        let base = SkitterConfig {
            n_monitors: 2,
            destinations: 600,
            monitor_coverage: 1.0,
            response_prob: 1.0,
            seed: 4,
        };
        let few = Skitter::collect(&gt, &base);
        let mut more_cfg = base.clone();
        more_cfg.n_monitors = 7;
        let more = Skitter::collect(&gt, &more_cfg);
        assert!(more.dataset.num_links() > few.dataset.num_links());
    }

    #[test]
    fn deterministic_per_seed() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 3,
            destinations: 200,
            monitor_coverage: 0.9,
            response_prob: 0.95,
            seed: 5,
        };
        let a = Skitter::collect(&gt, &cfg);
        let b = Skitter::collect(&gt, &cfg);
        assert_eq!(a.dataset.num_nodes(), b.dataset.num_nodes());
        assert_eq!(a.dataset.num_links(), b.dataset.num_links());
    }

    #[test]
    fn inert_fault_plan_is_byte_identical_to_plain_collect() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 4,
            destinations: 300,
            monitor_coverage: 0.85,
            response_prob: 0.95,
            seed: 6,
        };
        let plain = Skitter::collect(&gt, &cfg);
        let inert = Skitter::collect_with_faults(&gt, &cfg, &FaultConfig::none());
        assert_eq!(
            serde_json::to_string(&plain.dataset).unwrap(),
            serde_json::to_string(&inert.dataset).unwrap()
        );
        assert!(plain.dataset.anomalies.faults.is_zero());
        assert_eq!(plain.failed_monitors, 0);
    }

    #[test]
    fn active_faults_are_counted_and_survived() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 6,
            destinations: 400,
            monitor_coverage: 0.9,
            response_prob: 0.97,
            seed: 7,
        };
        let out = Skitter::collect_with_faults(&gt, &cfg, &FaultConfig::at_severity(0.6, 21));
        let f = &out.dataset.anomalies.faults;
        assert!(f.probes_lost > 0, "packet loss never fired");
        assert!(f.retries > 0, "no retries issued");
        assert!(f.retry_successes > 0, "no retry recovered an answer");
        assert_eq!(out.dataset.anomalies.monitors.len(), 6);
        // Pathologies distort the dataset (loss thins it, churn adds
        // same-router artifacts) but never corrupt it.
        assert!(out.dataset.validate_against(&gt.topology).is_ok());
        let clean = Skitter::collect(&gt, &cfg);
        assert_ne!(
            serde_json::to_string(&out.dataset).unwrap(),
            serde_json::to_string(&clean.dataset).unwrap(),
            "an active fault plan left the dataset untouched"
        );
    }

    #[test]
    fn executor_schedule_does_not_change_bytes() {
        // Jobs executed in reverse order (the worst-case schedule) must
        // produce the same bytes as the serial executor, faulted or not:
        // all RNG is drawn in the prologue and each monitor owns its own
        // clock slice, so only the merge order — fixed — matters.
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 5,
            destinations: 300,
            monitor_coverage: 0.85,
            response_prob: 0.95,
            seed: 12,
        };
        struct ReversedExec;
        impl ChunkExec for ReversedExec {
            fn dispatch<T: Send>(&self, n: usize, job: &(dyn Fn(usize) -> T + Sync)) -> Vec<T> {
                let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
                for i in (0..n).rev() {
                    out[i] = Some(job(i));
                }
                out.into_iter().flatten().collect()
            }
        }
        for faults in [FaultConfig::none(), FaultConfig::at_severity(0.6, 9)] {
            let serial = Skitter::collect_with_faults(&gt, &cfg, &faults);
            let shuffled = Skitter::collect_with_faults_exec(&gt, &cfg, &faults, &ReversedExec);
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&shuffled).unwrap()
            );
        }
    }

    #[test]
    fn outages_fail_monitors_deterministically() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 8,
            destinations: 300,
            monitor_coverage: 0.9,
            response_prob: 0.97,
            seed: 8,
        };
        let mut faults = FaultConfig::none();
        faults.outage_fraction = 1.0;
        faults.seed = 5;
        let a = Skitter::collect_with_faults(&gt, &cfg, &faults);
        assert!(a.failed_monitors > 0, "no monitor failed under outage 1.0");
        assert!(a.dataset.anomalies.faults.outage_skips > 0);
        assert!(a.active_monitors() < a.monitors.len());
        let b = Skitter::collect_with_faults(&gt, &cfg, &faults);
        assert_eq!(a.failed_monitors, b.failed_monitors);
        assert_eq!(
            serde_json::to_string(&a.dataset).unwrap(),
            serde_json::to_string(&b.dataset).unwrap()
        );
    }
}
