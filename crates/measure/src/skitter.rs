//! Skitter-like multi-monitor collection.
//!
//! "Skitter sends hop-limited probes to a list of destination nodes
//! located worldwide ... a successful Skitter probe reports a sequence of
//! interfaces along contiguous routers on the path from the source to the
//! destination. In this study, we treat interfaces as virtual nodes, and
//! define a link to mean a connection between two adjacent interfaces."
//!
//! Faithfully reproduced artifacts:
//!
//! - the dataset is the **union of forward paths from ~19 monitors**;
//! - nodes are **interfaces, not routers** (no alias resolution);
//! - destination-list addresses are end hosts — after collection, "we
//!   further discarded all interfaces appearing in the destination lists";
//! - self-loops and duplicate observations are discarded as anomalies.

use crate::dataset::{MeasuredDataset, NodeKind};
use crate::probe::TracerouteSim;
use crate::routing::RoutingOracle;
use geotopo_bgp::trie::PrefixTrie;
use geotopo_bgp::AsId;
use geotopo_topology::generate::GroundTruth;
use geotopo_topology::RouterId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Skitter collection parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkitterConfig {
    /// Number of monitors (the paper's dataset unions 19).
    pub n_monitors: usize,
    /// Total destination-list size.
    pub destinations: usize,
    /// Fraction of the destination list each monitor probes
    /// ("each probing a destination list of varying size").
    pub monitor_coverage: f64,
    /// Per-router probe-response probability.
    pub response_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SkitterConfig {
    /// Paper-like defaults scaled to the world size: the destination list
    /// covers the address space densely enough that most of the core is
    /// traversed.
    pub fn scaled(gt: &GroundTruth, seed: u64) -> Self {
        SkitterConfig {
            n_monitors: 19,
            destinations: gt.topology.num_routers() * 3,
            monitor_coverage: 0.8,
            response_prob: 0.97,
            seed,
        }
    }
}

/// Skitter collection result.
#[derive(Debug)]
pub struct SkitterOutput {
    /// The processed interface-level dataset (destinations discarded).
    pub dataset: MeasuredDataset,
    /// Interfaces observed before destination discarding.
    pub raw_nodes: usize,
    /// Destination-list nodes discarded (paper: 18%).
    pub discarded_destinations: usize,
    /// The monitors used.
    pub monitors: Vec<RouterId>,
}

/// The Skitter collector.
#[derive(Debug)]
pub struct Skitter;

impl Skitter {
    /// Runs a collection over the ground-truth world.
    pub fn collect(gt: &GroundTruth, cfg: &SkitterConfig) -> SkitterOutput {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let t = &gt.topology;

        // Ground-truth address ownership (who a destination belongs to).
        let mut truth = PrefixTrie::new();
        for alloc in &gt.allocations {
            for &p in &alloc.prefixes {
                truth.insert(p, alloc.asn);
            }
        }
        let mut routers_by_as: HashMap<AsId, Vec<RouterId>> = HashMap::new();
        for (id, r) in t.routers() {
            routers_by_as.entry(r.asn).or_default().push(id);
        }

        // Destination list: end-host addresses spread over the allocated
        // space ("the destination lists are created with the aim to cover
        // all blocks of 256 addresses ... destinations selected by several
        // methods").
        let alloc_weights: Vec<f64> = gt.allocations.iter().map(|a| a.capacity() as f64).collect();
        let alloc_pick =
            geotopo_stats::AliasTable::new(&alloc_weights).expect("non-empty allocations"); // lint: allow(unwrap): generated worlds always allocate prefixes
        let mut destinations: Vec<Ipv4Addr> = Vec::with_capacity(cfg.destinations);
        let mut dest_set: HashSet<Ipv4Addr> = HashSet::new();
        let mut guard = 0usize;
        while destinations.len() < cfg.destinations && guard < cfg.destinations * 10 {
            guard += 1;
            let alloc = &gt.allocations[alloc_pick.sample(&mut rng)];
            let prefix = alloc.prefixes[rng.random_range(0..alloc.prefixes.len())];
            let off = rng.random_range(0..prefix.size());
            let Some(ip) = prefix.nth(off) else { continue };
            if dest_set.insert(ip) {
                destinations.push(ip);
            }
        }

        // Monitors: distinct routers, preferring distinct regions first.
        let monitors = pick_monitors(gt, cfg.n_monitors, &mut rng);

        let sim = TracerouteSim::new(t, cfg.response_prob, &mut rng);
        let mut dataset = MeasuredDataset::new(NodeKind::Interface);

        for &monitor in &monitors {
            let oracle = RoutingOracle::new(t, monitor);
            for &dst_ip in &destinations {
                if rng.random::<f64>() >= cfg.monitor_coverage {
                    continue;
                }
                // Attachment router: a deterministic member of the
                // destination's AS (the access router serving it).
                let asn = match truth.lookup(dst_ip) {
                    Some((asn, _)) => *asn,
                    None => continue,
                };
                let Some(members) = routers_by_as.get(&asn) else {
                    continue;
                };
                let attach = members[(u32::from(dst_ip) as usize) % members.len()];
                let Some(hops) = sim.trace(&oracle, attach) else {
                    continue;
                };
                // Chain adjacent reported interfaces; silence breaks the
                // chain so no false link spans an unresponsive router.
                let mut prev: Option<u32> = None;
                for hop in &hops {
                    match hop.interface {
                        Some(iface) => {
                            let ip = t.interface(iface).ip;
                            let node = dataset.intern(ip);
                            if let Some(p) = prev {
                                dataset.observe_link(p, node);
                            }
                            prev = Some(node);
                        }
                        None => prev = None,
                    }
                }
                // The destination end host responds last.
                if let Some(p) = prev {
                    let dst_node = dataset.intern(dst_ip);
                    dataset.observe_link(p, dst_node);
                }
            }
        }

        // Discard destination-list interfaces (end hosts).
        let raw_nodes = dataset.num_nodes();
        let mut remove: HashSet<u32> = HashSet::new();
        for ip in &dest_set {
            if let Some(n) = dataset.node_by_ip(*ip) {
                remove.insert(n);
            }
        }
        let discarded_destinations = remove.len();
        dataset.remove_nodes(&remove);

        SkitterOutput {
            dataset,
            raw_nodes,
            discarded_destinations,
            monitors,
        }
    }
}

/// Picks monitor routers spread across regions.
fn pick_monitors(gt: &GroundTruth, n: usize, rng: &mut StdRng) -> Vec<RouterId> {
    let n_regions = gt.config.regions.len();
    let mut by_region: Vec<Vec<u32>> = vec![Vec::new(); n_regions];
    for (i, &reg) in gt.router_region.iter().enumerate() {
        by_region[reg as usize].push(i as u32);
    }
    let mut monitors = Vec::with_capacity(n);
    let mut region = 0usize;
    let mut guard = 0usize;
    while monitors.len() < n && guard < n * 20 {
        guard += 1;
        let bucket = &by_region[region % n_regions];
        region += 1;
        if bucket.is_empty() {
            continue;
        }
        let pick = RouterId(bucket[rng.random_range(0..bucket.len())]);
        if !monitors.contains(&pick) {
            monitors.push(pick);
        }
    }
    monitors
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_topology::generate::GroundTruthConfig;

    fn world() -> GroundTruth {
        GroundTruth::generate(GroundTruthConfig::tiny(77)).unwrap()
    }

    #[test]
    fn collects_interface_level_dataset() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 5,
            destinations: 800,
            monitor_coverage: 0.8,
            response_prob: 0.97,
            seed: 1,
        };
        let out = Skitter::collect(&gt, &cfg);
        assert_eq!(out.dataset.kind, NodeKind::Interface);
        assert!(
            out.dataset.num_nodes() > 100,
            "nodes {}",
            out.dataset.num_nodes()
        );
        assert!(
            out.dataset.num_links() > 100,
            "links {}",
            out.dataset.num_links()
        );
        assert_eq!(out.monitors.len(), 5);
    }

    #[test]
    fn destination_interfaces_are_discarded() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 4,
            destinations: 500,
            monitor_coverage: 1.0,
            response_prob: 1.0,
            seed: 2,
        };
        let out = Skitter::collect(&gt, &cfg);
        assert!(out.discarded_destinations > 0);
        assert_eq!(
            out.dataset.num_nodes(),
            out.raw_nodes - out.discarded_destinations
        );
        // A meaningful share of raw nodes were destinations (paper: 18%).
        let frac = out.discarded_destinations as f64 / out.raw_nodes as f64;
        assert!(frac > 0.03 && frac < 0.6, "destination share {frac}");
    }

    #[test]
    fn observed_interfaces_exist_in_ground_truth() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 3,
            destinations: 300,
            monitor_coverage: 1.0,
            response_prob: 1.0,
            seed: 3,
        };
        let out = Skitter::collect(&gt, &cfg);
        for node in out.dataset.nodes() {
            assert!(
                gt.topology.interface_by_ip(node.ip).is_some(),
                "phantom interface {}",
                node.ip
            );
        }
    }

    #[test]
    fn more_monitors_see_more() {
        let gt = world();
        let base = SkitterConfig {
            n_monitors: 2,
            destinations: 600,
            monitor_coverage: 1.0,
            response_prob: 1.0,
            seed: 4,
        };
        let few = Skitter::collect(&gt, &base);
        let mut more_cfg = base.clone();
        more_cfg.n_monitors = 7;
        let more = Skitter::collect(&gt, &more_cfg);
        assert!(more.dataset.num_links() > few.dataset.num_links());
    }

    #[test]
    fn deterministic_per_seed() {
        let gt = world();
        let cfg = SkitterConfig {
            n_monitors: 3,
            destinations: 200,
            monitor_coverage: 0.9,
            response_prob: 0.95,
            seed: 5,
        };
        let a = Skitter::collect(&gt, &cfg);
        let b = Skitter::collect(&gt, &cfg);
        assert_eq!(a.dataset.num_nodes(), b.dataset.num_nodes());
        assert_eq!(a.dataset.num_links(), b.dataset.num_links());
    }
}
