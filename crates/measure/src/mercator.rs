//! Mercator-like single-source collection with alias resolution.
//!
//! "Mercator is run from a single host to a heuristically determined
//! destination address space. Further, Mercator employs loose source
//! routing to discover lateral connectivity ... Mercator employs
//! published techniques to collapse interface IP addresses belonging to
//! the same router to a canonical IP address for that router.
//! Unfortunately, this technique suffers from numerous limitations."
//!
//! Reproduced artifacts:
//!
//! - single primary vantage point → strongly tree-biased raw view;
//! - **lateral vantage points** stand in for loose source routing (the
//!   real trick bounces probes off intermediate routers; the effect —
//!   paths not rooted at the primary source — is the same);
//! - **imperfect alias resolution**: each router's interfaces collapse
//!   only with a given success probability; failures leave multiple nodes
//!   for one router, so the router count overestimates slightly — and
//!   alias-induced self-loops are discarded as anomalies.

use crate::dataset::{MeasuredDataset, NodeKind};
use crate::faults::{FaultConfig, FaultPlan, FaultSession};
use crate::probe::{TraceBuf, TracerouteSim};
use crate::routing::{RoutingOracle, RoutingScratch};
use geotopo_bgp::trie::PrefixTrie;
use geotopo_topology::generate::GroundTruth;
use geotopo_topology::RouterId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Mercator collection parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MercatorConfig {
    /// Destination addresses probed from the primary source.
    pub destinations: usize,
    /// Lateral vantage routers (loose-source-routing stand-in).
    pub lateral_sources: usize,
    /// Fraction of destinations each lateral vantage traces.
    pub lateral_coverage: f64,
    /// Per-router probe-response probability.
    pub response_prob: f64,
    /// Per-router alias-resolution success probability.
    pub alias_success: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MercatorConfig {
    /// Paper-like defaults: Mercator's snapshot is considerably smaller
    /// than Skitter's (268k vs 704k interfaces), so the destination list
    /// is scaled down accordingly.
    pub fn scaled(gt: &GroundTruth, seed: u64) -> Self {
        MercatorConfig {
            destinations: (gt.topology.num_routers() as f64 * 0.8) as usize,
            lateral_sources: 8,
            lateral_coverage: 0.25,
            response_prob: 0.96,
            alias_success: 0.85,
            seed,
        }
    }
}

/// Mercator collection result.
#[derive(Debug, Serialize, Deserialize)]
pub struct MercatorOutput {
    /// The router-level dataset after alias resolution.
    pub dataset: MeasuredDataset,
    /// Interfaces observed before alias resolution (paper: 268,382).
    pub raw_interfaces: usize,
    /// The primary source router.
    pub source: RouterId,
    /// Probes actually sent during the campaign (retries included).
    #[serde(default)]
    pub probes_sent: u64,
    /// Virtual probe-tick clock reading at campaign end (probes sent
    /// plus backoff waits; see `faults`).
    #[serde(default)]
    pub virtual_ticks: u64,
    /// Shortest-path solver counters: one solve per distinct vantage,
    /// memo hits for every repeated lateral pick.
    #[serde(default)]
    pub routing: crate::routing::RoutingStats,
}

/// The Mercator collector.
#[derive(Debug)]
pub struct Mercator;

impl Mercator {
    /// Runs a fault-free collection over the ground-truth world.
    pub fn collect(gt: &GroundTruth, cfg: &MercatorConfig) -> MercatorOutput {
        Self::collect_with_faults(gt, cfg, &FaultConfig::none())
    }

    /// Runs a collection under an injected fault plan. Monitor outages
    /// apply to the *lateral* vantages (the operator notices and restarts
    /// their own primary host); all probe-level faults apply everywhere.
    /// An inert plan is byte-identical to [`collect`](Self::collect).
    pub fn collect_with_faults(
        gt: &GroundTruth,
        cfg: &MercatorConfig,
        faults: &FaultConfig,
    ) -> MercatorOutput {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let t = &gt.topology;

        let mut truth = PrefixTrie::new();
        for alloc in &gt.allocations {
            for &p in &alloc.prefixes {
                truth.insert(p, alloc.asn);
            }
        }

        // Primary source: a well-connected router (Mercator ran from a
        // single university host behind a big provider).
        let source = t
            .routers()
            .max_by_key(|(id, _)| t.degree(*id))
            .map(|(id, _)| id)
            .expect("non-empty topology"); // lint: allow(unwrap): generated topologies are non-empty

        // Heuristic destination space: addresses inside allocations,
        // weighted by capacity.
        let alloc_weights: Vec<f64> = gt.allocations.iter().map(|a| a.capacity() as f64).collect();
        let alloc_pick =
            geotopo_stats::AliasTable::new(&alloc_weights).expect("non-empty allocations"); // lint: allow(unwrap): generated worlds always allocate prefixes
        let mut destinations: Vec<Ipv4Addr> = Vec::with_capacity(cfg.destinations);
        let mut seen_dst: HashSet<Ipv4Addr> = HashSet::new();
        let mut guard = 0usize;
        while destinations.len() < cfg.destinations && guard < cfg.destinations * 10 {
            guard += 1;
            let alloc = &gt.allocations[alloc_pick.sample(&mut rng)];
            let prefix = alloc.prefixes[rng.random_range(0..alloc.prefixes.len())];
            let Some(ip) = prefix.nth(rng.random_range(0..prefix.size())) else {
                continue;
            };
            if seen_dst.insert(ip) {
                destinations.push(ip);
            }
        }

        let sim = TracerouteSim::new(t, cfg.response_prob, &mut rng);

        // One fault session spans both sweeps; outage indices address the
        // lateral vantages. The probe budget mirrors the sweep sizes.
        let expected_probes = (destinations.len() as f64
            * (1.0 + cfg.lateral_sources as f64 * cfg.lateral_coverage)
            * 8.0) as u64;
        let plan = FaultPlan::compile(
            faults,
            t.num_routers(),
            cfg.lateral_sources,
            expected_probes,
        );
        let mut session = FaultSession::new(&plan);

        // Raw interface-level adjacency observations.
        let mut raw = MeasuredDataset::new(NodeKind::Interface);
        let mut seen_routers: HashSet<u32> = HashSet::new();
        let trace_into = |oracle: &RoutingOracle,
                          dst_ip: Ipv4Addr,
                          raw: &mut MeasuredDataset,
                          seen_routers: &mut HashSet<u32>,
                          session: &mut FaultSession<'_>,
                          buf: &mut TraceBuf| {
            let asn = match truth.lookup(dst_ip) {
                Some((asn, _)) => *asn,
                None => return,
            };
            // Packed AS ranges replace the old per-run HashMap build;
            // member order (ascending router id) is unchanged.
            let members = t.routers_of_as(asn);
            if members.is_empty() {
                return;
            }
            let attach = members[(u32::from(dst_ip) as usize) % members.len()];
            let Some(hops) = sim.trace_with_faults_into(oracle, attach, session, buf) else {
                return;
            };
            let mut prev: Option<u32> = None;
            for hop in hops {
                seen_routers.insert(hop.router.0);
                match hop.interface {
                    Some(iface) => {
                        let node = raw.intern(t.interface(iface).ip);
                        if let Some(p) = prev {
                            raw.observe_link(p, node);
                        }
                        prev = Some(node);
                    }
                    None => prev = None,
                }
            }
        };

        // Primary sweep. One scratch spans the whole collection: the
        // bucket ring warms once, and every vantage solved once is
        // served from the memo thereafter.
        let mut scratch = RoutingScratch::new();
        let mut buf = TraceBuf::new();
        let primary = scratch.oracle(t, source);
        for &dst in &destinations {
            trace_into(
                primary,
                dst,
                &mut raw,
                &mut seen_routers,
                &mut session,
                &mut buf,
            );
        }

        // Lateral vantage sweeps (loose-source-routing effect): re-probe
        // a subset of the space from routers discovered by the primary.
        let mut discovered: Vec<u32> = seen_routers.iter().copied().collect();
        // HashSet iteration order is process-random; sort so vantage
        // choice is a pure function of the seed.
        discovered.sort_unstable();
        if !discovered.is_empty() {
            for v in 0..cfg.lateral_sources {
                let vantage = RouterId(discovered[rng.random_range(0..discovered.len())]);
                // Memoized: a vantage already solved (the primary, or a
                // repeated lateral pick) costs a map lookup, not a
                // Dijkstra run.
                let oracle = scratch.oracle(t, vantage);
                for &dst in &destinations {
                    // The coverage draw stays unconditional so the RNG
                    // stream is identical with and without faults.
                    if rng.random::<f64>() < cfg.lateral_coverage {
                        if session.monitor_down(v) {
                            session.stats.outage_skips += 1;
                            continue;
                        }
                        trace_into(
                            oracle,
                            dst,
                            &mut raw,
                            &mut seen_routers,
                            &mut session,
                            &mut buf,
                        );
                    }
                }
            }
        }

        // Alias resolution: collapse interfaces of a router into one node
        // when the UDP-probe technique succeeds for that router.
        let mut resolvable: HashMap<u32, bool> = HashMap::new();
        let mut canonical: HashMap<u32, Ipv4Addr> = HashMap::new(); // router -> canonical ip
        let mut node_target: Vec<Ipv4Addr> = Vec::with_capacity(raw.num_nodes());
        for node in raw.nodes() {
            let router = t
                .router_by_ip(node.ip)
                .expect("observed interfaces exist in ground truth"); // lint: allow(unwrap): probes only reach ground-truth interfaces
            let ok = *resolvable.entry(router.0).or_insert_with(|| {
                let mut r = crate::alias_rng(cfg.seed, router.0);
                r.random::<f64>() < cfg.alias_success
            });
            if ok {
                let canon = canonical.entry(router.0).or_insert(node.ip);
                if node.ip < *canon {
                    *canon = node.ip;
                }
            }
            node_target.push(node.ip); // placeholder, resolved below
        }
        // Second pass now that canonical IPs are final.
        for (i, node) in raw.nodes().iter().enumerate() {
            let router = t.router_by_ip(node.ip).expect("checked above"); // lint: allow(unwrap): resolved in the first pass
            if resolvable[&router.0] {
                node_target[i] = canonical[&router.0];
            }
        }

        let mut dataset = MeasuredDataset::new(NodeKind::Router);
        let mut merged: HashMap<Ipv4Addr, u32> = HashMap::new();
        let mut raw_to_new: Vec<u32> = Vec::with_capacity(raw.num_nodes());
        for (i, node) in raw.nodes().iter().enumerate() {
            let canon = node_target[i];
            let new = *merged.entry(canon).or_insert_with(|| dataset.intern(canon));
            dataset.add_alias(new, node.ip);
            raw_to_new.push(new);
        }
        for &(a, b) in raw.links() {
            let (na, nb) = (raw_to_new[a as usize], raw_to_new[b as usize]);
            if na == nb {
                // Both raw endpoints collapsed onto one router: an
                // alias-resolution artifact, reported distinctly from
                // probing self-loops.
                dataset.anomalies.alias_self_loops += 1;
                continue;
            }
            dataset.observe_link(na, nb);
        }
        // One struct reports every anomaly of the collection: fold the
        // raw sweep's discards and the fault session's pathology
        // counters into the final dataset's stats.
        dataset.anomalies.self_loops += raw.anomalies.self_loops;
        dataset.anomalies.duplicate_links += raw.anomalies.duplicate_links;
        dataset.anomalies.faults.absorb(&session.stats);

        MercatorOutput {
            raw_interfaces: raw.num_nodes(),
            dataset,
            source,
            probes_sent: session.probes_sent(),
            virtual_ticks: session.tick(),
            routing: scratch.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_topology::generate::GroundTruthConfig;

    fn world() -> GroundTruth {
        GroundTruth::generate(GroundTruthConfig::tiny(99)).unwrap()
    }

    fn cfg(seed: u64) -> MercatorConfig {
        MercatorConfig {
            destinations: 800,
            lateral_sources: 4,
            lateral_coverage: 0.3,
            response_prob: 0.97,
            alias_success: 0.85,
            seed,
        }
    }

    #[test]
    fn collects_router_level_dataset() {
        let gt = world();
        let out = Mercator::collect(&gt, &cfg(1));
        assert_eq!(out.dataset.kind, NodeKind::Router);
        assert!(out.dataset.num_nodes() > 50);
        assert!(out.dataset.num_links() > 50);
    }

    #[test]
    fn alias_resolution_shrinks_the_node_set() {
        let gt = world();
        let out = Mercator::collect(&gt, &cfg(2));
        assert!(
            out.dataset.num_nodes() < out.raw_interfaces,
            "{} !< {}",
            out.dataset.num_nodes(),
            out.raw_interfaces
        );
    }

    #[test]
    fn perfect_aliasing_yields_true_router_count_upper_bound() {
        let gt = world();
        let mut c = cfg(3);
        c.alias_success = 1.0;
        let out = Mercator::collect(&gt, &c);
        // With perfect resolution every node is a distinct true router.
        assert!(out.dataset.num_nodes() <= gt.topology.num_routers());
        let mut routers = HashSet::new();
        for node in out.dataset.nodes() {
            let r = gt.topology.router_by_ip(node.ip).unwrap();
            assert!(routers.insert(r), "two nodes map to router {r:?}");
        }
    }

    #[test]
    fn failed_aliasing_inflates_node_count() {
        let gt = world();
        let mut perfect = cfg(4);
        perfect.alias_success = 1.0;
        let mut broken = cfg(4);
        broken.alias_success = 0.0;
        let p = Mercator::collect(&gt, &perfect);
        let b = Mercator::collect(&gt, &broken);
        assert!(b.dataset.num_nodes() > p.dataset.num_nodes());
        // With no aliasing the node count equals raw interfaces.
        assert_eq!(b.dataset.num_nodes(), b.raw_interfaces);
    }

    #[test]
    fn lateral_vantages_add_links() {
        let gt = world();
        let mut no_lateral = cfg(5);
        no_lateral.lateral_sources = 0;
        let mut with_lateral = cfg(5);
        with_lateral.lateral_sources = 8;
        with_lateral.lateral_coverage = 0.5;
        let a = Mercator::collect(&gt, &no_lateral);
        let b = Mercator::collect(&gt, &with_lateral);
        assert!(
            b.dataset.num_links() > a.dataset.num_links(),
            "{} !> {}",
            b.dataset.num_links(),
            a.dataset.num_links()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let gt = world();
        let a = Mercator::collect(&gt, &cfg(6));
        let b = Mercator::collect(&gt, &cfg(6));
        assert_eq!(a.dataset.num_nodes(), b.dataset.num_nodes());
        assert_eq!(a.dataset.num_links(), b.dataset.num_links());
    }

    #[test]
    fn alias_self_loops_reported_in_anomaly_stats() {
        let gt = world();
        // Route churn is the organic source of same-router adjacencies:
        // a flapping route briefly reverts and the previous router
        // answers the TTL again. After alias resolution both endpoints
        // collapse and the self-loop is discarded — into the unified
        // struct, not silently.
        let mut faults = FaultConfig::none();
        faults.flap_fraction = 0.5;
        faults.flap_duration = 0.4;
        faults.seed = 13;
        let out = Mercator::collect_with_faults(&gt, &cfg(7), &faults);
        assert!(
            out.dataset.anomalies.alias_self_loops > 0,
            "route churn produced no alias self-loop discards"
        );
        // And they never survive into the link list.
        assert!(out.dataset.validate().is_ok());
    }

    #[test]
    fn routing_counters_account_for_every_vantage() {
        let gt = world();
        let mut c = cfg(10);
        c.lateral_sources = 12;
        let out = Mercator::collect(&gt, &c);
        let r = &out.routing;
        // The primary plus each lateral pick calls into the scratch
        // exactly once: every call is either a fresh solve or a memo hit.
        assert_eq!(r.sources_solved + r.memo_hits, 1 + 12);
        assert!(r.sources_solved >= 1);
        assert!(r.edges_relaxed > 0);
        assert!(r.bucket_pushes >= r.sources_solved);
        // Every solve after the first reuses the warm bucket ring.
        assert_eq!(r.bucket_reuses + 1, r.sources_solved);
    }

    #[test]
    fn inert_fault_plan_is_byte_identical_to_plain_collect() {
        let gt = world();
        let plain = Mercator::collect(&gt, &cfg(8));
        let inert = Mercator::collect_with_faults(&gt, &cfg(8), &FaultConfig::none());
        assert_eq!(
            serde_json::to_string(&plain.dataset).unwrap(),
            serde_json::to_string(&inert.dataset).unwrap()
        );
        assert!(plain.dataset.anomalies.faults.is_zero());
    }

    #[test]
    fn faults_thin_but_never_corrupt() {
        let gt = world();
        let out = Mercator::collect_with_faults(&gt, &cfg(9), &FaultConfig::at_severity(0.7, 31));
        let clean = Mercator::collect(&gt, &cfg(9));
        assert!(!out.dataset.anomalies.faults.is_zero());
        assert!(out.dataset.num_links() < clean.dataset.num_links());
        assert!(out.dataset.validate_against(&gt.topology).is_ok());
        let again = Mercator::collect_with_faults(&gt, &cfg(9), &FaultConfig::at_severity(0.7, 31));
        assert_eq!(
            serde_json::to_string(&out.dataset).unwrap(),
            serde_json::to_string(&again.dataset).unwrap()
        );
    }
}
