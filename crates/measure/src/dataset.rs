//! Measured-graph representation.
//!
//! Both collectors emit a [`MeasuredDataset`]: nodes identified by IP
//! address and undirected links between node indices. Skitter's nodes
//! are interfaces ("we treat interfaces as virtual nodes, and define a
//! link to mean a connection between two adjacent interfaces"); Mercator's
//! nodes are routers (canonical IP plus resolved aliases).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What a dataset's nodes represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Interface-level map (Skitter).
    Interface,
    /// Router-level map after alias resolution (Mercator).
    Router,
}

/// One measured node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredNode {
    /// Canonical address (for routers: the lowest resolved alias).
    pub ip: Ipv4Addr,
    /// All addresses resolved to this node (empty for interface-level
    /// datasets; includes the canonical address for router-level ones).
    pub aliases: Vec<Ipv4Addr>,
}

/// Collection anomaly counters (the paper "discarded anomalies such as
/// self-loops").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyStats {
    /// Self-loop link observations discarded.
    pub self_loops: u64,
    /// Duplicate link observations collapsed.
    pub duplicate_links: u64,
}

/// An undirected measured graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredDataset {
    /// Node semantics.
    pub kind: NodeKind,
    nodes: Vec<MeasuredNode>,
    links: Vec<(u32, u32)>,
    #[serde(skip)]
    node_index: HashMap<Ipv4Addr, u32>,
    #[serde(skip)]
    link_set: std::collections::HashSet<(u32, u32)>,
    /// Anomalies encountered during collection.
    pub anomalies: AnomalyStats,
}

impl MeasuredDataset {
    /// Creates an empty dataset.
    pub fn new(kind: NodeKind) -> Self {
        MeasuredDataset {
            kind,
            nodes: Vec::new(),
            links: Vec::new(),
            node_index: HashMap::new(),
            link_set: std::collections::HashSet::new(),
            anomalies: AnomalyStats::default(),
        }
    }

    /// Interns a node by canonical IP, returning its index.
    pub fn intern(&mut self, ip: Ipv4Addr) -> u32 {
        if let Some(&i) = self.node_index.get(&ip) {
            return i;
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(MeasuredNode {
            ip,
            aliases: Vec::new(),
        });
        self.node_index.insert(ip, i);
        i
    }

    /// Registers an alias for a router-level node.
    pub fn add_alias(&mut self, node: u32, alias: Ipv4Addr) {
        let entry = &mut self.nodes[node as usize];
        if !entry.aliases.contains(&alias) {
            entry.aliases.push(alias);
        }
        self.node_index.insert(alias, node);
    }

    /// Records an observed adjacency between two nodes. Self-loops and
    /// duplicates are counted as anomalies and dropped, as in the paper.
    pub fn observe_link(&mut self, a: u32, b: u32) {
        if a == b {
            self.anomalies.self_loops += 1;
            return;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if self.link_set.insert(key) {
            self.links.push(key);
        } else {
            self.anomalies.duplicate_links += 1;
        }
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Link count.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Nodes slice.
    pub fn nodes(&self) -> &[MeasuredNode] {
        &self.nodes
    }

    /// Links slice (indices into `nodes`).
    pub fn links(&self) -> &[(u32, u32)] {
        &self.links
    }

    /// Looks a node up by any of its addresses.
    pub fn node_by_ip(&self, ip: Ipv4Addr) -> Option<u32> {
        self.node_index.get(&ip).copied()
    }

    /// Removes the given node indices (e.g. destination-list interfaces),
    /// dropping their incident links and compacting indices. Returns the
    /// number of links removed.
    pub fn remove_nodes(&mut self, remove: &std::collections::HashSet<u32>) -> usize {
        let mut remap: Vec<Option<u32>> = vec![None; self.nodes.len()];
        let mut kept_nodes = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.drain(..).enumerate() {
            if !remove.contains(&(i as u32)) {
                remap[i] = Some(kept_nodes.len() as u32);
                kept_nodes.push(node);
            }
        }
        self.nodes = kept_nodes;
        let before = self.links.len();
        let mut kept_links = Vec::with_capacity(self.links.len());
        for (a, b) in self.links.drain(..) {
            if let (Some(na), Some(nb)) = (remap[a as usize], remap[b as usize]) {
                kept_links.push((na, nb));
            }
        }
        self.links = kept_links;
        // Rebuild indices.
        self.node_index.clear();
        self.link_set.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            self.node_index.insert(node.ip, i as u32);
            for &a in &node.aliases {
                self.node_index.insert(a, i as u32);
            }
        }
        for &(a, b) in &self.links {
            self.link_set.insert((a, b));
        }
        before - self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.1.1.1"));
        let b = d.intern(ip("1.1.1.1"));
        assert_eq!(a, b);
        assert_eq!(d.num_nodes(), 1);
    }

    #[test]
    fn self_loops_counted_and_dropped() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.1.1.1"));
        d.observe_link(a, a);
        assert_eq!(d.num_links(), 0);
        assert_eq!(d.anomalies.self_loops, 1);
    }

    #[test]
    fn duplicate_links_collapsed() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.1.1.1"));
        let b = d.intern(ip("2.2.2.2"));
        d.observe_link(a, b);
        d.observe_link(b, a);
        d.observe_link(a, b);
        assert_eq!(d.num_links(), 1);
        assert_eq!(d.anomalies.duplicate_links, 2);
    }

    #[test]
    fn alias_lookup() {
        let mut d = MeasuredDataset::new(NodeKind::Router);
        let r = d.intern(ip("3.3.3.3"));
        d.add_alias(r, ip("3.3.3.3"));
        d.add_alias(r, ip("4.4.4.4"));
        assert_eq!(d.node_by_ip(ip("4.4.4.4")), Some(r));
        assert_eq!(d.nodes()[r as usize].aliases.len(), 2);
    }

    #[test]
    fn remove_nodes_compacts_and_drops_links() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.0.0.1"));
        let b = d.intern(ip("1.0.0.2"));
        let c = d.intern(ip("1.0.0.3"));
        d.observe_link(a, b);
        d.observe_link(b, c);
        d.observe_link(a, c);
        let mut rm = std::collections::HashSet::new();
        rm.insert(b);
        let dropped = d.remove_nodes(&rm);
        assert_eq!(dropped, 2);
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.num_links(), 1);
        assert!(d.node_by_ip(ip("1.0.0.2")).is_none());
        // Remaining link connects the surviving nodes.
        let (x, y) = d.links()[0];
        let ips: Vec<_> = vec![d.nodes()[x as usize].ip, d.nodes()[y as usize].ip];
        assert!(ips.contains(&ip("1.0.0.1")) && ips.contains(&ip("1.0.0.3")));
    }

    #[test]
    fn remove_nothing_is_noop() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.0.0.1"));
        let b = d.intern(ip("1.0.0.2"));
        d.observe_link(a, b);
        let dropped = d.remove_nodes(&std::collections::HashSet::new());
        assert_eq!(dropped, 0);
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.num_links(), 1);
    }
}
