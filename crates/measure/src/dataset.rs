//! Measured-graph representation.
//!
//! Both collectors emit a [`MeasuredDataset`]: nodes identified by IP
//! address and undirected links between node indices. Skitter's nodes
//! are interfaces ("we treat interfaces as virtual nodes, and define a
//! link to mean a connection between two adjacent interfaces"); Mercator's
//! nodes are routers (canonical IP plus resolved aliases).

use geotopo_topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A violated [`MeasuredDataset`] invariant, found by
/// [`MeasuredDataset::validate`] or [`MeasuredDataset::validate_against`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureInvariant {
    /// A link references a node index past the end of the node list.
    LinkOutOfRange {
        /// The offending link, as stored.
        link: (u32, u32),
    },
    /// A self-loop survived collection (the paper discards these).
    SelfLoopLink {
        /// The node linked to itself.
        node: u32,
    },
    /// A link is stored with endpoints out of canonical (low, high) order,
    /// or the same undirected link appears twice.
    DuplicateOrUnordered {
        /// The offending link, as stored.
        link: (u32, u32),
    },
    /// The IP→node index disagrees with the node list.
    IndexDesync {
        /// Address whose index entry is wrong, stale, or missing.
        ip: Ipv4Addr,
    },
    /// A node address (canonical or alias) does not exist as an interface
    /// in the topology the dataset was supposedly measured from.
    UnknownAddress {
        /// The fabricated address.
        ip: Ipv4Addr,
    },
}

impl std::fmt::Display for MeasureInvariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureInvariant::LinkOutOfRange { link } => {
                write!(f, "link ({}, {}) references a missing node", link.0, link.1)
            }
            MeasureInvariant::SelfLoopLink { node } => {
                write!(f, "self-loop link on node {node} survived collection")
            }
            MeasureInvariant::DuplicateOrUnordered { link } => write!(
                f,
                "link ({}, {}) is duplicated or not in canonical order",
                link.0, link.1
            ),
            MeasureInvariant::IndexDesync { ip } => {
                write!(f, "ip index entry for {ip} disagrees with the node list")
            }
            MeasureInvariant::UnknownAddress { ip } => {
                write!(f, "node address {ip} is not an interface of the topology")
            }
        }
    }
}

impl std::error::Error for MeasureInvariant {}

/// What a dataset's nodes represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Interface-level map (Skitter).
    Interface,
    /// Router-level map after alias resolution (Mercator).
    Router,
}

/// One measured node.
#[derive(Debug, Clone, Serialize, Deserialize)]
// analyze: allow(dead-pub): element type of the pub nodes() slice; iterated without naming the type
pub struct MeasuredNode {
    /// Canonical address (for routers: the lowest resolved alias).
    pub ip: Ipv4Addr,
    /// All addresses resolved to this node (empty for interface-level
    /// datasets; includes the canonical address for router-level ones).
    pub aliases: Vec<Ipv4Addr>,
}

/// One monitor's collection record: what it sent, what it skipped, and
/// where it landed in the dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorRecord {
    /// Ground-truth router id of the monitor.
    pub router: u32,
    /// Dataset node index of the monitor's first observed interface,
    /// `None` if nothing it owns survived into the dataset. Kept in sync
    /// by [`MeasuredDataset::remove_nodes`].
    pub node: Option<u32>,
    /// Probes this monitor launched.
    pub probes: u64,
    /// Traces skipped because the monitor was in outage.
    pub skipped: u64,
}

impl MonitorRecord {
    /// A monitor counts as failed when the outage swallowed more of its
    /// campaign than it completed.
    pub fn failed(&self) -> bool {
        self.skipped > self.probes
    }
}

/// Collection anomaly counters (the paper "discarded anomalies such as
/// self-loops"). One struct reports every pathology a collector survived:
/// structural discards, alias-resolution artifacts, injected faults, and
/// per-monitor outage accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyStats {
    /// Self-loop link observations discarded.
    pub self_loops: u64,
    /// Duplicate link observations collapsed.
    pub duplicate_links: u64,
    /// Self-loops induced by alias resolution collapsing both endpoints
    /// of a raw link onto one router (Mercator).
    pub alias_self_loops: u64,
    /// Injected-fault pathologies survived during collection.
    pub faults: crate::faults::FaultStats,
    /// Per-monitor collection records (multi-monitor collectors only;
    /// `node` values index into this dataset's node list).
    pub monitors: Vec<MonitorRecord>,
}

impl AnomalyStats {
    /// Accumulates another collection's counters (monitor records are
    /// appended; their node indices must already refer to this dataset).
    pub fn absorb(&mut self, other: &AnomalyStats) {
        self.self_loops += other.self_loops;
        self.duplicate_links += other.duplicate_links;
        self.alias_self_loops += other.alias_self_loops;
        self.faults.absorb(&other.faults);
        self.monitors.extend(other.monitors.iter().cloned());
    }

    /// A compact one-line summary for trace output; `None` when nothing
    /// anomalous happened.
    pub fn summary(&self) -> Option<String> {
        let failed = self.monitors.iter().filter(|m| m.failed()).count();
        if self.self_loops == 0
            && self.duplicate_links == 0
            && self.alias_self_loops == 0
            && self.faults.is_zero()
            && failed == 0
        {
            return None;
        }
        let mut parts = Vec::new();
        if self.self_loops > 0 {
            parts.push(format!("loops={}", self.self_loops));
        }
        if self.duplicate_links > 0 {
            parts.push(format!("dups={}", self.duplicate_links));
        }
        if self.alias_self_loops > 0 {
            parts.push(format!("alias-loops={}", self.alias_self_loops));
        }
        let f = &self.faults;
        if f.probes_lost > 0 {
            parts.push(format!("lost={}", f.probes_lost));
        }
        if f.rate_limited > 0 {
            parts.push(format!("rate-limited={}", f.rate_limited));
        }
        if f.flap_breaks > 0 {
            parts.push(format!("flaps={}", f.flap_breaks));
        }
        if f.retries > 0 {
            parts.push(format!("retries={}/{}", f.retry_successes, f.retries));
        }
        if f.outage_skips > 0 {
            parts.push(format!("outage-skips={}", f.outage_skips));
        }
        if failed > 0 {
            parts.push(format!("monitors-lost={failed}"));
        }
        Some(parts.join(" "))
    }
}

/// An undirected measured graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredDataset {
    /// Node semantics.
    pub kind: NodeKind,
    nodes: Vec<MeasuredNode>,
    links: Vec<(u32, u32)>,
    #[serde(skip)]
    node_index: HashMap<Ipv4Addr, u32>,
    #[serde(skip)]
    link_set: std::collections::HashSet<(u32, u32)>,
    /// Anomalies encountered during collection.
    pub anomalies: AnomalyStats,
}

impl MeasuredDataset {
    /// Creates an empty dataset.
    pub fn new(kind: NodeKind) -> Self {
        MeasuredDataset {
            kind,
            nodes: Vec::new(),
            links: Vec::new(),
            node_index: HashMap::new(),
            link_set: std::collections::HashSet::new(),
            anomalies: AnomalyStats::default(),
        }
    }

    /// Interns a node by canonical IP, returning its index.
    pub fn intern(&mut self, ip: Ipv4Addr) -> u32 {
        if let Some(&i) = self.node_index.get(&ip) {
            return i;
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(MeasuredNode {
            ip,
            aliases: Vec::new(),
        });
        self.node_index.insert(ip, i);
        i
    }

    /// Registers an alias for a router-level node.
    pub fn add_alias(&mut self, node: u32, alias: Ipv4Addr) {
        let entry = &mut self.nodes[node as usize];
        if !entry.aliases.contains(&alias) {
            entry.aliases.push(alias);
        }
        self.node_index.insert(alias, node);
    }

    /// Records an observed adjacency between two nodes. Self-loops and
    /// duplicates are counted as anomalies and dropped, as in the paper.
    pub fn observe_link(&mut self, a: u32, b: u32) {
        if a == b {
            self.anomalies.self_loops += 1;
            return;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if self.link_set.insert(key) {
            self.links.push(key);
        } else {
            self.anomalies.duplicate_links += 1;
        }
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Link count.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Approximate heap footprint in bytes: nodes, their alias lists,
    /// links, and the rebuildable lookup indexes. Feeds the engine's
    /// resident-artifact accounting.
    pub fn mem_bytes(&self) -> usize {
        use std::mem::size_of;
        let alias_bytes: usize = self
            .nodes
            .iter()
            .map(|n| n.aliases.len() * size_of::<Ipv4Addr>())
            .sum();
        self.nodes.len() * size_of::<MeasuredNode>()
            + alias_bytes
            + self.links.len() * size_of::<(u32, u32)>()
            + self.node_index.len() * size_of::<(Ipv4Addr, u32)>()
            + self.link_set.len() * size_of::<(u32, u32)>()
    }

    /// Nodes slice.
    pub fn nodes(&self) -> &[MeasuredNode] {
        &self.nodes
    }

    /// Links slice (indices into `nodes`).
    pub fn links(&self) -> &[(u32, u32)] {
        &self.links
    }

    /// Looks a node up by any of its addresses.
    pub fn node_by_ip(&self, ip: Ipv4Addr) -> Option<u32> {
        self.node_index.get(&ip).copied()
    }

    /// Checks the dataset's internal invariants: every link references
    /// two distinct, in-range nodes and is stored exactly once in
    /// canonical (low, high) order, and the IP→node index agrees with
    /// the node list. (The index is rebuilt lazily after deserialization,
    /// so an entirely empty index alongside a non-empty node list is
    /// accepted; a *partially* wrong index is not.)
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), MeasureInvariant> {
        let n = self.nodes.len() as u32;
        let mut seen = std::collections::HashSet::with_capacity(self.links.len());
        for &(a, b) in &self.links {
            if a >= n || b >= n {
                return Err(MeasureInvariant::LinkOutOfRange { link: (a, b) });
            }
            if a == b {
                return Err(MeasureInvariant::SelfLoopLink { node: a });
            }
            if a > b || !seen.insert((a, b)) {
                return Err(MeasureInvariant::DuplicateOrUnordered { link: (a, b) });
            }
        }
        for (&ip, &idx) in &self.node_index {
            let node = self
                .nodes
                .get(idx as usize)
                .ok_or(MeasureInvariant::IndexDesync { ip })?;
            if node.ip != ip && !node.aliases.contains(&ip) {
                return Err(MeasureInvariant::IndexDesync { ip });
            }
        }
        if !self.node_index.is_empty() {
            for node in &self.nodes {
                if !self.node_index.contains_key(&node.ip) {
                    return Err(MeasureInvariant::IndexDesync { ip: node.ip });
                }
            }
        }
        Ok(())
    }

    /// Checks internal invariants plus provenance: every node address —
    /// canonical IP and every alias — must exist as an interface of the
    /// ground-truth `topology` the collector probed. A collector can miss
    /// interfaces, but it can never observe an address the world does not
    /// contain.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate_against(&self, topology: &Topology) -> Result<(), MeasureInvariant> {
        self.validate()?;
        for node in &self.nodes {
            if topology.interface_by_ip(node.ip).is_none() {
                return Err(MeasureInvariant::UnknownAddress { ip: node.ip });
            }
            for &alias in &node.aliases {
                if topology.interface_by_ip(alias).is_none() {
                    return Err(MeasureInvariant::UnknownAddress { ip: alias });
                }
            }
        }
        Ok(())
    }

    /// Removes the given node indices (e.g. destination-list interfaces),
    /// dropping their incident links and compacting indices — including
    /// the node indices held by `anomalies.monitors`, which would
    /// otherwise dangle or silently point at the wrong node. Returns the
    /// number of links removed.
    pub fn remove_nodes(&mut self, remove: &std::collections::HashSet<u32>) -> usize {
        let mut remap: Vec<Option<u32>> = vec![None; self.nodes.len()];
        let mut kept_nodes = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.drain(..).enumerate() {
            if !remove.contains(&(i as u32)) {
                remap[i] = Some(kept_nodes.len() as u32);
                kept_nodes.push(node);
            }
        }
        self.nodes = kept_nodes;
        let before = self.links.len();
        let mut kept_links = Vec::with_capacity(self.links.len());
        for (a, b) in self.links.drain(..) {
            if let (Some(na), Some(nb)) = (remap[a as usize], remap[b as usize]) {
                kept_links.push((na, nb));
            }
        }
        self.links = kept_links;
        // Monitor records reference nodes by index too; remap them the
        // same way (a removed monitor node becomes None, not a stale id).
        for m in &mut self.anomalies.monitors {
            m.node = m
                .node
                .and_then(|n| remap.get(n as usize).copied().flatten());
        }
        // Rebuild indices.
        self.node_index.clear();
        self.link_set.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            self.node_index.insert(node.ip, i as u32);
            for &a in &node.aliases {
                self.node_index.insert(a, i as u32);
            }
        }
        for &(a, b) in &self.links {
            self.link_set.insert((a, b));
        }
        before - self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.1.1.1"));
        let b = d.intern(ip("1.1.1.1"));
        assert_eq!(a, b);
        assert_eq!(d.num_nodes(), 1);
    }

    #[test]
    fn self_loops_counted_and_dropped() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.1.1.1"));
        d.observe_link(a, a);
        assert_eq!(d.num_links(), 0);
        assert_eq!(d.anomalies.self_loops, 1);
    }

    #[test]
    fn duplicate_links_collapsed() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.1.1.1"));
        let b = d.intern(ip("2.2.2.2"));
        d.observe_link(a, b);
        d.observe_link(b, a);
        d.observe_link(a, b);
        assert_eq!(d.num_links(), 1);
        assert_eq!(d.anomalies.duplicate_links, 2);
    }

    #[test]
    fn alias_lookup() {
        let mut d = MeasuredDataset::new(NodeKind::Router);
        let r = d.intern(ip("3.3.3.3"));
        d.add_alias(r, ip("3.3.3.3"));
        d.add_alias(r, ip("4.4.4.4"));
        assert_eq!(d.node_by_ip(ip("4.4.4.4")), Some(r));
        assert_eq!(d.nodes()[r as usize].aliases.len(), 2);
    }

    #[test]
    fn remove_nodes_compacts_and_drops_links() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.0.0.1"));
        let b = d.intern(ip("1.0.0.2"));
        let c = d.intern(ip("1.0.0.3"));
        d.observe_link(a, b);
        d.observe_link(b, c);
        d.observe_link(a, c);
        let mut rm = std::collections::HashSet::new();
        rm.insert(b);
        let dropped = d.remove_nodes(&rm);
        assert_eq!(dropped, 2);
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.num_links(), 1);
        assert!(d.node_by_ip(ip("1.0.0.2")).is_none());
        // Remaining link connects the surviving nodes.
        let (x, y) = d.links()[0];
        let ips: Vec<_> = vec![d.nodes()[x as usize].ip, d.nodes()[y as usize].ip];
        assert!(ips.contains(&ip("1.0.0.1")) && ips.contains(&ip("1.0.0.3")));
    }

    #[test]
    fn remove_nodes_compacts_monitor_records() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.0.0.1"));
        let b = d.intern(ip("1.0.0.2"));
        let c = d.intern(ip("1.0.0.3"));
        d.observe_link(a, b);
        d.observe_link(b, c);
        d.anomalies.monitors = vec![
            MonitorRecord {
                router: 10,
                node: Some(a),
                probes: 5,
                skipped: 0,
            },
            MonitorRecord {
                router: 11,
                node: Some(b),
                probes: 5,
                skipped: 0,
            },
            MonitorRecord {
                router: 12,
                node: Some(c),
                probes: 5,
                skipped: 0,
            },
        ];
        let mut rm = std::collections::HashSet::new();
        rm.insert(b);
        d.remove_nodes(&rm);
        // Monitor at the removed node loses its reference; the monitor
        // past it is remapped to the compacted index, not left dangling.
        assert_eq!(d.anomalies.monitors[0].node, Some(0));
        assert_eq!(d.anomalies.monitors[1].node, None);
        let c_new = d.anomalies.monitors[2].node.unwrap();
        assert_eq!(d.nodes()[c_new as usize].ip, ip("1.0.0.3"));
    }

    #[test]
    fn absorb_accumulates_and_summary_reports() {
        let mut a = AnomalyStats::default();
        assert_eq!(a.summary(), None);
        let mut b = AnomalyStats {
            self_loops: 2,
            alias_self_loops: 3,
            ..AnomalyStats::default()
        };
        b.faults.retries = 4;
        b.faults.retry_successes = 1;
        b.monitors.push(MonitorRecord {
            router: 1,
            node: None,
            probes: 1,
            skipped: 9,
        });
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.self_loops, 4);
        assert_eq!(a.alias_self_loops, 6);
        assert_eq!(a.faults.retries, 8);
        assert_eq!(a.monitors.len(), 2);
        let s = a.summary().unwrap();
        assert!(s.contains("loops=4"), "{s}");
        assert!(s.contains("alias-loops=6"), "{s}");
        assert!(s.contains("retries=2/8"), "{s}");
        assert!(s.contains("monitors-lost=2"), "{s}");
    }

    fn tiny_topology() -> Topology {
        use geotopo_bgp::AsId;
        use geotopo_geo::GeoPoint;
        use geotopo_topology::TopologyBuilder;
        let mut b = TopologyBuilder::new();
        let origin = GeoPoint::new(0.0, 0.0).unwrap();
        let r0 = b.add_router(origin, AsId(1));
        let r1 = b.add_router(origin, AsId(1));
        b.add_link(r0, r1, ip("10.0.0.1"), ip("10.0.0.2")).unwrap();
        b.build()
    }

    #[test]
    fn validate_accepts_collected_dataset() {
        let mut d = MeasuredDataset::new(NodeKind::Router);
        let a = d.intern(ip("10.0.0.1"));
        let b = d.intern(ip("10.0.0.2"));
        d.add_alias(a, ip("10.0.0.1"));
        d.observe_link(a, b);
        d.observe_link(b, a); // duplicate: collapsed, stays valid
        assert_eq!(d.validate(), Ok(()));
        assert_eq!(d.validate_against(&tiny_topology()), Ok(()));
    }

    #[test]
    fn validate_rejects_corrupt_links() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("10.0.0.1"));
        let b = d.intern(ip("10.0.0.2"));
        d.observe_link(a, b);
        // Out-of-range endpoint.
        let mut bad = d.clone();
        bad.links.push((0, 9));
        assert_eq!(
            bad.validate(),
            Err(MeasureInvariant::LinkOutOfRange { link: (0, 9) })
        );
        // Self-loop smuggled past observe_link().
        let mut bad = d.clone();
        bad.links.push((1, 1));
        assert_eq!(
            bad.validate(),
            Err(MeasureInvariant::SelfLoopLink { node: 1 })
        );
        // Duplicate of an existing link.
        let mut bad = d.clone();
        bad.links.push((0, 1));
        assert_eq!(
            bad.validate(),
            Err(MeasureInvariant::DuplicateOrUnordered { link: (0, 1) })
        );
        // Endpoints out of canonical order.
        let mut bad = MeasuredDataset::new(NodeKind::Interface);
        bad.intern(ip("10.0.0.1"));
        bad.intern(ip("10.0.0.2"));
        bad.links.push((1, 0));
        assert_eq!(
            bad.validate(),
            Err(MeasureInvariant::DuplicateOrUnordered { link: (1, 0) })
        );
    }

    #[test]
    fn validate_rejects_index_desync() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        d.intern(ip("10.0.0.1"));
        d.intern(ip("10.0.0.2"));
        // Stale entry pointing at the wrong node.
        let mut bad = d.clone();
        bad.node_index.insert(ip("10.0.0.1"), 1);
        assert_eq!(
            bad.validate(),
            Err(MeasureInvariant::IndexDesync { ip: ip("10.0.0.1") })
        );
        // A node missing from a non-empty index.
        let mut bad = d.clone();
        bad.node_index.remove(&ip("10.0.0.2"));
        assert_eq!(
            bad.validate(),
            Err(MeasureInvariant::IndexDesync { ip: ip("10.0.0.2") })
        );
        // An entirely empty index models the post-deserialization state
        // and is fine.
        let mut fresh = d.clone();
        fresh.node_index.clear();
        assert_eq!(fresh.validate(), Ok(()));
    }

    #[test]
    fn validate_against_rejects_fabricated_addresses() {
        let topo = tiny_topology();
        // A node whose canonical IP the world never assigned.
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        d.intern(ip("10.0.0.1"));
        d.intern(ip("172.16.0.9"));
        assert_eq!(
            d.validate_against(&topo),
            Err(MeasureInvariant::UnknownAddress {
                ip: ip("172.16.0.9")
            })
        );
        // A fabricated alias on an otherwise real router.
        let mut d = MeasuredDataset::new(NodeKind::Router);
        let a = d.intern(ip("10.0.0.1"));
        d.add_alias(a, ip("172.16.0.9"));
        assert_eq!(
            d.validate_against(&topo),
            Err(MeasureInvariant::UnknownAddress {
                ip: ip("172.16.0.9")
            })
        );
    }

    #[test]
    fn remove_nothing_is_noop() {
        let mut d = MeasuredDataset::new(NodeKind::Interface);
        let a = d.intern(ip("1.0.0.1"));
        let b = d.intern(ip("1.0.0.2"));
        d.observe_link(a, b);
        let dropped = d.remove_nodes(&std::collections::HashSet::new());
        assert_eq!(dropped, 0);
        assert_eq!(d.num_nodes(), 2);
        assert_eq!(d.num_links(), 1);
    }
}
