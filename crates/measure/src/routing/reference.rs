//! Reference `BinaryHeap` Dijkstra.
//!
//! The original `RoutingOracle` solver, kept verbatim as the
//! differential-testing baseline for the bucket-queue implementation in
//! the parent module: `measure/tests/properties.rs` asserts the two
//! produce bit-identical `dist`/`parent` trees over random topologies.
//! This module is the one sanctioned `BinaryHeap` user in the workspace
//! (GT-LINT-011) — production paths must use the bucket queue.

use super::{INTER_COST, INTRA_COST};
use geotopo_topology::{RouterId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Runs the textbook heap-based Dijkstra from `source`, returning the
/// `(dist, parent)` arrays in the same encoding the oracle uses
/// (`u64::MAX` = unreachable, `parent[source] = None`).
pub fn solve(topology: &Topology, source: RouterId) -> (Vec<u64>, Vec<Option<RouterId>>) {
    let n = topology.num_routers();
    let mut dist = vec![u64::MAX; n];
    let mut parent: Vec<Option<RouterId>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[source.0 as usize] = 0;
    heap.push(Reverse((0, source.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for e in topology.neighbors(RouterId(u)) {
            let w = if topology.is_interdomain(e.link()) {
                INTER_COST
            } else {
                INTRA_COST
            };
            let nd = d + w;
            let v = e.neighbor();
            if nd < dist[v.0 as usize] {
                dist[v.0 as usize] = nd;
                parent[v.0 as usize] = Some(RouterId(u));
                heap.push(Reverse((nd, v.0)));
            }
        }
    }
    (dist, parent)
}
