//! Policy-aware shortest-path routing.
//!
//! Probe packets follow the network's actual forwarding paths, which are
//! not geographic shortest paths: interdomain hops are comparatively
//! expensive (BGP prefers staying inside a domain — a coarse model of
//! policy path inflation). We run Dijkstra per source with integer costs:
//! intradomain hop = 10, interdomain hop = 30.
//!
//! # Hot-path implementation
//!
//! With only two edge weights the frontier spans at most `INTER_COST`
//! cost units, so the priority queue is a ring of
//! `INTER_COST / INTRA_COST + 1 = 4` buckets (Dial's algorithm) instead
//! of a `BinaryHeap`: pushes and pops are O(1), and each drained bucket
//! is sorted by router index so routers settle in exactly the
//! `(dist, router)` order the heap produced — the `dist`/`parent`
//! arrays are bit-identical to [`reference::solve`], which the property
//! suite asserts. Edge weights come precomputed from the topology's CSR
//! adjacency ([`geotopo_topology::AdjEntry::is_interdomain`] is a bit
//! test, not a link-table lookup). A [`RoutingScratch`] carries the
//! bucket ring, a memo of already-solved sources, and solver counters
//! across sources so per-vantage loops stop reallocating.

pub mod reference;

use geotopo_topology::{RouterId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Per-hop cost of an intradomain link.
pub const INTRA_COST: u64 = 10;
/// Per-hop cost of an interdomain link.
pub const INTER_COST: u64 = 30;

/// Bucket-ring size: an entry pushed while settling distance `d` lands
/// at most `INTER_COST` past it, which spans
/// `INTER_COST / INTRA_COST + 1` distinct `INTRA_COST`-granular values.
const NUM_BUCKETS: usize = (INTER_COST / INTRA_COST) as usize + 1;

/// Solver counters, accumulated on the owning [`RoutingScratch`] and
/// absorbed into telemetry as `routing.*` by the collection stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Shortest-path trees actually computed (memo hits excluded).
    pub sources_solved: u64,
    /// Edges examined across all relaxation loops.
    pub edges_relaxed: u64,
    /// Entries pushed into the bucket ring.
    pub bucket_pushes: u64,
    /// Solves that reused an already-warm bucket ring (every solve on a
    /// scratch after its first).
    pub bucket_reuses: u64,
    /// Sources served from the scratch memo without re-solving.
    pub memo_hits: u64,
}

impl RoutingStats {
    /// Adds `other` into `self` (used to merge per-monitor tallies in
    /// monitor-index order, keeping totals thread-count invariant).
    pub fn absorb(&mut self, other: &RoutingStats) {
        self.sources_solved += other.sources_solved;
        self.edges_relaxed += other.edges_relaxed;
        self.bucket_pushes += other.bucket_pushes;
        self.bucket_reuses += other.bucket_reuses;
        self.memo_hits += other.memo_hits;
    }
}

/// Reusable solver state: the bucket ring, a memo of solved sources,
/// and the accumulated [`RoutingStats`]. One scratch per independent
/// unit of work (one per Skitter monitor job, one per Mercator
/// collection) keeps the counters deterministic at any thread count.
#[derive(Debug, Default)]
pub struct RoutingScratch {
    solved: HashMap<u32, RoutingOracle>,
    core: SolveState,
    /// Solver counters accumulated across every solve on this scratch.
    pub stats: RoutingStats,
}

/// The bucket ring and warm flag — the solver state the Dijkstra kernel
/// mutates, split from the memo map so [`RoutingScratch::oracle`] can
/// hold a map entry open while solving into it.
#[derive(Debug, Default)]
struct SolveState {
    buckets: [Vec<u32>; NUM_BUCKETS],
    warm: bool,
}

impl RoutingScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The oracle for `source`, memoized: the first request solves and
    /// caches, repeats are served from the memo and counted as hits.
    pub fn oracle(&mut self, topology: &Topology, source: RouterId) -> &RoutingOracle {
        match self.solved.entry(source.0) {
            Entry::Occupied(e) => {
                self.stats.memo_hits += 1;
                e.into_mut()
            }
            Entry::Vacant(e) => e.insert(RoutingOracle::solve(
                topology,
                source,
                &mut self.core,
                &mut self.stats,
            )),
        }
    }
}

/// A shortest-path forest from one source over a topology.
#[derive(Debug, Clone)]
pub struct RoutingOracle {
    source: RouterId,
    /// Parent of each router on its path from the source (`None` for the
    /// source itself and for unreachable routers).
    parent: Vec<Option<RouterId>>,
    /// Distance in cost units (`u64::MAX` = unreachable).
    dist: Vec<u64>,
}

impl RoutingOracle {
    /// Runs the bucket-queue Dijkstra from `source` with a throwaway
    /// scratch. Hot loops should share one via [`RoutingOracle::new_in`]
    /// or [`RoutingScratch::oracle`].
    pub fn new(topology: &Topology, source: RouterId) -> Self {
        let mut scratch = RoutingScratch::new();
        Self::new_in(topology, source, &mut scratch)
    }

    /// Runs the bucket-queue Dijkstra from `source`, reusing the
    /// scratch's bucket ring and accumulating its counters.
    ///
    /// The settle order — and therefore the `dist`/`parent` output —
    /// is identical to a `BinaryHeap` over `(dist, router)`: a drained
    /// bucket holds every live entry at its distance (weights are
    /// strictly positive, so settling one entry cannot improve another
    /// in the same bucket) and is sorted by router index before
    /// relaxation.
    pub fn new_in(topology: &Topology, source: RouterId, scratch: &mut RoutingScratch) -> Self {
        Self::solve(topology, source, &mut scratch.core, &mut scratch.stats)
    }

    /// The Dijkstra kernel behind [`RoutingOracle::new_in`] and
    /// [`RoutingScratch::oracle`], taking the scratch's parts separately
    /// so the memo map can stay borrowed while a miss solves.
    // analyze: hot-path-root
    fn solve(
        topology: &Topology,
        source: RouterId,
        core: &mut SolveState,
        stats: &mut RoutingStats,
    ) -> Self {
        let n = topology.num_routers();
        // analyze: allow(alloc): the oracle's owned distance array, one per solved source
        let mut dist = vec![u64::MAX; n];
        // analyze: allow(alloc): the oracle's owned parent array, one per solved source
        let mut parent: Vec<Option<RouterId>> = vec![None; n];
        stats.sources_solved += 1;
        if core.warm {
            stats.bucket_reuses += 1;
        } else {
            core.warm = true;
        }
        let buckets = &mut core.buckets;
        let (mut edges, mut pushes) = (0u64, 1u64);

        dist[source.0 as usize] = 0;
        buckets[0].push(source.0);
        let mut pending = 1usize;
        let mut cur = 0u64; // frontier distance, in INTRA_COST units
        const WEIGHT: [u64; 2] = [INTRA_COST, INTER_COST];
        while pending > 0 {
            let slot = (cur as usize) % NUM_BUCKETS;
            if buckets[slot].is_empty() {
                cur += 1;
                continue;
            }
            // Relaxations out of this bucket land at cur+1 or cur+3
            // (mod 4), never back in slot cur — taking the vec and
            // restoring it after the drain keeps its capacity warm.
            let mut batch = std::mem::take(&mut buckets[slot]);
            pending -= batch.len();
            batch.sort_unstable();
            let d = cur * INTRA_COST;
            for &u in &batch {
                if dist[u as usize] != d {
                    continue; // stale: improved after this entry was pushed
                }
                for e in topology.neighbors(RouterId(u)) {
                    edges += 1;
                    let nd = d + WEIGHT[e.is_interdomain() as usize];
                    let vi = e.neighbor().0 as usize;
                    if nd < dist[vi] {
                        dist[vi] = nd;
                        parent[vi] = Some(RouterId(u));
                        buckets[((nd / INTRA_COST) as usize) % NUM_BUCKETS].push(vi as u32);
                        pushes += 1;
                        pending += 1;
                    }
                }
            }
            batch.clear();
            buckets[slot] = batch;
            cur += 1;
        }
        stats.edges_relaxed += edges;
        stats.bucket_pushes += pushes;
        RoutingOracle {
            source,
            parent,
            dist,
        }
    }

    /// The source router.
    pub fn source(&self) -> RouterId {
        self.source
    }

    /// Whether `dst` is reachable from the source.
    pub fn reachable(&self, dst: RouterId) -> bool {
        self.dist[dst.0 as usize] != u64::MAX
    }

    /// Path cost to `dst`, if reachable.
    pub fn cost(&self, dst: RouterId) -> Option<u64> {
        match self.dist[dst.0 as usize] {
            u64::MAX => None,
            d => Some(d),
        }
    }

    /// Iterator over the routers from `dst` up the parent pointers to
    /// the source (inclusive, `dst` first); empty if unreachable.
    /// Allocation-free — the reusable-buffer trace walks build on it.
    pub fn walk_up(&self, dst: RouterId) -> WalkUp<'_> {
        WalkUp {
            oracle: self,
            cur: if self.reachable(dst) { Some(dst) } else { None },
        }
    }

    /// Fills `buf` with the router path source → `dst` inclusive,
    /// reusing the buffer's capacity. Returns `false` (leaving `buf`
    /// empty) if `dst` is unreachable.
    pub fn path_into(&self, dst: RouterId, buf: &mut Vec<RouterId>) -> bool {
        buf.clear();
        if !self.reachable(dst) {
            return false;
        }
        buf.extend(self.walk_up(dst));
        buf.reverse();
        debug_assert_eq!(buf[0], self.source);
        true
    }

    /// The router path source → `dst` inclusive, or `None` if
    /// unreachable.
    pub fn path(&self, dst: RouterId) -> Option<Vec<RouterId>> {
        let mut path = Vec::new();
        if self.path_into(dst, &mut path) {
            Some(path)
        } else {
            None
        }
    }
}

/// Iterator over parent pointers from a destination to the source; see
/// [`RoutingOracle::walk_up`].
#[derive(Debug, Clone)]
pub struct WalkUp<'a> {
    oracle: &'a RoutingOracle,
    cur: Option<RouterId>,
}

impl Iterator for WalkUp<'_> {
    type Item = RouterId;

    fn next(&mut self) -> Option<RouterId> {
        let here = self.cur?;
        self.cur = self.oracle.parent[here.0 as usize];
        Some(here)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_bgp::AsId;
    use geotopo_geo::GeoPoint;
    use geotopo_topology::TopologyBuilder;

    fn loc(i: usize) -> GeoPoint {
        GeoPoint::new(10.0 + i as f64 * 0.1, 10.0).unwrap()
    }

    #[test]
    fn path_on_a_line() {
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..5).map(|i| b.add_router(loc(i), AsId(1))).collect();
        for w in r.windows(2) {
            b.add_link_auto(w[0], w[1]).unwrap();
        }
        let t = b.build();
        let oracle = RoutingOracle::new(&t, r[0]);
        assert_eq!(oracle.path(r[4]).unwrap(), r);
        assert_eq!(oracle.cost(r[4]), Some(4 * INTRA_COST));
        assert_eq!(oracle.path(r[0]).unwrap(), vec![r[0]]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router(loc(0), AsId(1));
        let c = b.add_router(loc(1), AsId(1));
        let t = b.build();
        let oracle = RoutingOracle::new(&t, a);
        assert!(!oracle.reachable(c));
        assert_eq!(oracle.path(c), None);
        assert_eq!(oracle.cost(c), None);
        assert_eq!(oracle.walk_up(c).count(), 0);
    }

    #[test]
    fn avoids_interdomain_detour() {
        // a -(intra)- b -(intra)- d   versus   a -(inter)- c -(inter)- d:
        // the intra path has cost 20, the inter path 60.
        let mut b = TopologyBuilder::new();
        let a = b.add_router(loc(0), AsId(1));
        let bb = b.add_router(loc(1), AsId(1));
        let c = b.add_router(loc(2), AsId(2));
        let d = b.add_router(loc(3), AsId(1));
        b.add_link_auto(a, bb).unwrap();
        b.add_link_auto(bb, d).unwrap();
        b.add_link_auto(a, c).unwrap();
        b.add_link_auto(c, d).unwrap();
        let t = b.build();
        let oracle = RoutingOracle::new(&t, a);
        assert_eq!(oracle.path(d).unwrap(), vec![a, bb, d]);
    }

    #[test]
    fn interdomain_taken_when_shorter_overall() {
        // Direct interdomain link (cost 30) vs 5-hop intra detour (50).
        let mut b = TopologyBuilder::new();
        let a = b.add_router(loc(0), AsId(1));
        let z = b.add_router(loc(9), AsId(2));
        b.add_link_auto(a, z).unwrap();
        let mut chain = vec![a];
        for i in 1..5 {
            let r = b.add_router(loc(i), AsId(1));
            b.add_link_auto(*chain.last().unwrap(), r).unwrap();
            chain.push(r);
        }
        // Chain tail links interdomain to z as well (longer).
        b.add_link_auto(*chain.last().unwrap(), z).unwrap();
        let t = b.build();
        let oracle = RoutingOracle::new(&t, a);
        assert_eq!(oracle.path(z).unwrap(), vec![a, z]);
        assert_eq!(oracle.cost(z), Some(INTER_COST));
    }

    #[test]
    fn paths_form_a_tree() {
        // Every path is a prefix-consistent tree walk: parent pointers
        // never cycle.
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..30).map(|i| b.add_router(loc(i), AsId(1))).collect();
        for i in 1..30 {
            b.add_link_auto(r[i], r[i / 2]).unwrap();
        }
        let t = b.build();
        let oracle = RoutingOracle::new(&t, r[0]);
        for &dst in &r {
            let p = oracle.path(dst).unwrap();
            assert_eq!(p[0], r[0]);
            assert_eq!(*p.last().unwrap(), dst);
            assert!(p.len() <= 30);
        }
    }

    #[test]
    fn matches_reference_heap_solver() {
        // Mixed intra/interdomain mesh: dist and parent must agree with
        // the BinaryHeap reference bit-for-bit (the property suite
        // fuzzes this over random topologies; this pins a known shape).
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..12)
            .map(|i| b.add_router(loc(i), AsId((i % 3) as u32 + 1)))
            .collect();
        for i in 0..12usize {
            let _ = b.add_link_auto(r[i], r[(i + 1) % 12]);
            let _ = b.add_link_auto(r[i], r[(i + 5) % 12]);
        }
        let t = b.build();
        for src in 0..12u32 {
            let fast = RoutingOracle::new(&t, RouterId(src));
            let (dist, parent) = reference::solve(&t, RouterId(src));
            assert_eq!(fast.dist, dist, "dist diverged from source {src}");
            assert_eq!(fast.parent, parent, "parent diverged from source {src}");
        }
    }

    #[test]
    fn scratch_memoizes_and_counts() {
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..6).map(|i| b.add_router(loc(i), AsId(1))).collect();
        for w in r.windows(2) {
            b.add_link_auto(w[0], w[1]).unwrap();
        }
        let t = b.build();
        let mut scratch = RoutingScratch::new();
        let c1 = scratch.oracle(&t, r[0]).cost(r[5]);
        assert_eq!(scratch.stats.sources_solved, 1);
        assert_eq!(scratch.stats.memo_hits, 0);
        assert_eq!(scratch.stats.bucket_reuses, 0);
        let c2 = scratch.oracle(&t, r[0]).cost(r[5]);
        assert_eq!(c1, c2);
        assert_eq!(scratch.stats.sources_solved, 1, "memo hit re-solved");
        assert_eq!(scratch.stats.memo_hits, 1);
        scratch.oracle(&t, r[3]);
        assert_eq!(scratch.stats.sources_solved, 2);
        assert_eq!(scratch.stats.bucket_reuses, 1);
        assert!(scratch.stats.edges_relaxed > 0);
        assert!(scratch.stats.bucket_pushes >= scratch.stats.sources_solved);
    }

    #[test]
    fn path_into_reuses_buffer() {
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..5).map(|i| b.add_router(loc(i), AsId(1))).collect();
        for w in r.windows(2) {
            b.add_link_auto(w[0], w[1]).unwrap();
        }
        let t = b.build();
        let oracle = RoutingOracle::new(&t, r[0]);
        let mut buf = Vec::new();
        assert!(oracle.path_into(r[4], &mut buf));
        assert_eq!(buf, r);
        let cap = buf.capacity();
        assert!(oracle.path_into(r[2], &mut buf));
        assert_eq!(buf, &r[..3]);
        assert_eq!(buf.capacity(), cap, "buffer was reallocated");
        // Walk-up order is dst-first.
        let up: Vec<_> = oracle.walk_up(r[2]).collect();
        assert_eq!(up, vec![r[2], r[1], r[0]]);
    }
}
