//! Simulated topology measurement.
//!
//! The paper's two datasets come from two very different collectors, and
//! the differences matter for every downstream number:
//!
//! - **Skitter** (Section III-A): ~19 monitors worldwide send hop-limited
//!   probes to large destination lists. It observes *interfaces* (it
//!   cannot tell which interfaces share a router), its view is biased
//!   toward the union of shortest-path trees, and destination-list
//!   entries (mostly end hosts) are discarded before analysis.
//! - **Mercator**: a *single* source exploring a heuristically chosen
//!   address space, using loose source routing to find lateral links,
//!   and UDP-probe alias resolution to collapse interfaces into
//!   *routers* — imperfectly ("this technique suffers from numerous
//!   limitations").
//!
//! This crate reproduces both collection processes over a
//! [`geotopo_topology::generate::GroundTruth`] world:
//!
//! - [`routing`]: policy-aware shortest paths (interdomain hops cost
//!   extra, modelling BGP path inflation).
//! - [`probe`]: TTL-style forward-path tracing that records the
//!   *incoming interface* of each responding hop.
//! - [`skitter`] / [`mercator`]: the two collectors.
//! - [`dataset`]: the measured-graph representation both emit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod faults;
pub mod mercator;
pub mod policy;
pub mod probe;
pub mod routing;
pub mod skitter;

pub use dataset::{AnomalyStats, MeasureInvariant, MeasuredDataset, MonitorRecord, NodeKind};
pub use faults::{FaultConfig, FaultPlan, FaultSession, FaultStats, ProbeFate, StageFailure};
pub use policy::PolicyOracle;

/// Deterministic per-router RNG used by alias resolution (success is a
/// property of the router, stable across probes).
pub(crate) fn alias_rng(seed: u64, router: u32) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let mut z = seed
        .wrapping_add(u64::from(router).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0xA076_1D64_78BD_642F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    rand::rngs::StdRng::seed_from_u64(z ^ (z >> 31))
}
pub use mercator::{Mercator, MercatorConfig, MercatorOutput};
pub use probe::{TraceBuf, TracerouteSim};
pub use routing::{RoutingOracle, RoutingScratch, RoutingStats, WalkUp};
pub use skitter::{Skitter, SkitterConfig, SkitterOutput, DEST_CHUNK};
