//! Shared fixtures for the geotopo benchmark harness.
//!
//! Criterion benches share one lazily-built tiny pipeline output so that
//! per-analysis benches measure the analysis, not world generation.

use geotopo_core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
use std::sync::OnceLock;

/// The shared tiny pipeline output (seed 2002).
pub fn tiny_output() -> &'static PipelineOutput {
    static OUT: OnceLock<PipelineOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        Pipeline::new(PipelineConfig::tiny(2002))
            .run()
            .expect("tiny pipeline runs")
    })
}

/// A shared small pipeline output for heavier benches (seed 2002).
// analyze: allow(dead-pub): heavier companion to tiny_output, kept public for ad-hoc bench experiments
pub fn small_output() -> &'static PipelineOutput {
    static OUT: OnceLock<PipelineOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        Pipeline::new(PipelineConfig::small(2002))
            .run()
            .expect("small pipeline runs")
    })
}

/// Why a bench's thread-scaling gate cannot be enforced on this run.
///
/// The scaling gates compare a parallel run against the 1-thread run,
/// which only measures real speedup when (a) the host has at least as
/// many cores as the parallel worker count and (b) the committed
/// baseline was recorded on a host with the same core count — a 4-core
/// scaling curve checked against a 1-core recording gates noise, not
/// regressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalingGateSkip {
    /// The host has fewer cores than the parallel run's worker count.
    HostTooNarrow {
        /// Cores available on this host.
        host_cores: usize,
        /// Worker count of the parallel run.
        threads: usize,
    },
    /// The committed baseline was recorded on a host with a different
    /// core count.
    BaselineCoreMismatch {
        /// `host_cores` recorded in the committed baseline entry.
        baseline_cores: u64,
        /// Cores available on this host.
        host_cores: usize,
    },
}

impl std::fmt::Display for ScalingGateSkip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingGateSkip::HostTooNarrow {
                host_cores,
                threads,
            } => write!(
                f,
                "scaling gate skipped: host has {host_cores} core(s) < {threads} threads \
                 (enforced on multi-core CI)"
            ),
            ScalingGateSkip::BaselineCoreMismatch {
                baseline_cores,
                host_cores,
            } => write!(
                f,
                "scaling gate skipped: committed host_cores={baseline_cores} vs {host_cores} \
                 (re-record with `cargo xtask bench --update` on this host to enforce it)"
            ),
        }
    }
}

/// Decides whether a thread-scaling gate must be skipped, and why.
/// Returns `None` when the gate can be enforced. `baseline_cores` is the
/// `host_cores` field of the committed baseline entry (absent in
/// baselines that predate it — those enforce, preserving old behaviour).
pub fn scaling_gate_skip(
    host_cores: usize,
    par_threads: usize,
    baseline_cores: Option<u64>,
) -> Option<ScalingGateSkip> {
    if host_cores < par_threads {
        return Some(ScalingGateSkip::HostTooNarrow {
            host_cores,
            threads: par_threads,
        });
    }
    match baseline_cores {
        Some(b) if b != host_cores as u64 => Some(ScalingGateSkip::BaselineCoreMismatch {
            baseline_cores: b,
            host_cores,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::{scaling_gate_skip, ScalingGateSkip};

    #[test]
    fn fixtures_build() {
        assert!(super::tiny_output().datasets.len() == 4);
    }

    #[test]
    fn scaling_gate_enforced_on_comparable_hosts() {
        assert_eq!(scaling_gate_skip(4, 4, Some(4)), None);
        // Baselines without host_cores (pre-recording) still enforce.
        assert_eq!(scaling_gate_skip(4, 4, None), None);
    }

    #[test]
    fn scaling_gate_skipped_on_narrow_host() {
        let skip = scaling_gate_skip(1, 4, Some(1)).expect("narrow host skips");
        assert_eq!(
            skip,
            ScalingGateSkip::HostTooNarrow {
                host_cores: 1,
                threads: 4
            }
        );
        assert!(skip
            .to_string()
            .starts_with("scaling gate skipped: host has 1 core(s)"));
    }

    #[test]
    fn scaling_gate_skip_names_committed_core_count() {
        // The known-noisy case: the committed small baseline was
        // recorded single-core, the CI host is wider. The line must say
        // so explicitly instead of reading as a silent regression.
        let skip = scaling_gate_skip(4, 4, Some(1)).expect("core mismatch skips");
        let line = skip.to_string();
        assert!(
            line.contains("scaling gate skipped: committed host_cores=1 vs 4"),
            "unexpected skip line: {line}"
        );
    }

    #[test]
    fn narrow_host_takes_precedence_over_core_mismatch() {
        assert_eq!(
            scaling_gate_skip(2, 4, Some(8)),
            Some(ScalingGateSkip::HostTooNarrow {
                host_cores: 2,
                threads: 4
            })
        );
    }
}
