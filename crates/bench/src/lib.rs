//! Shared fixtures for the geotopo benchmark harness.
//!
//! Criterion benches share one lazily-built tiny pipeline output so that
//! per-analysis benches measure the analysis, not world generation.

use geotopo_core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
use std::sync::OnceLock;

/// The shared tiny pipeline output (seed 2002).
pub fn tiny_output() -> &'static PipelineOutput {
    static OUT: OnceLock<PipelineOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        Pipeline::new(PipelineConfig::tiny(2002))
            .run()
            .expect("tiny pipeline runs")
    })
}

/// A shared small pipeline output for heavier benches (seed 2002).
// analyze: allow(dead-pub): heavier companion to tiny_output, kept public for ad-hoc bench experiments
pub fn small_output() -> &'static PipelineOutput {
    static OUT: OnceLock<PipelineOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        Pipeline::new(PipelineConfig::small(2002))
            .run()
            .expect("small pipeline runs")
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_build() {
        assert!(super::tiny_output().datasets.len() == 4);
    }
}
