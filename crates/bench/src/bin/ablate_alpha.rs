//! Ablation: sweep the placement superlinearity α of the ground truth
//! and recover it through the full Figure 2 pipeline (measurement +
//! mapping + patch regression) — an end-to-end validation that the
//! Section IV estimator responds to the generative exponent.
//!
//! ```sh
//! cargo run --release -p geotopo-bench --bin ablate_alpha [routers] [seed]
//! ```

use geotopo_core::experiments;
use geotopo_core::pipeline::{MapperKind, Pipeline, PipelineConfig};
use geotopo_topology::generate::GroundTruthConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let routers: usize = args
        .get(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(12_000);
    let seed: u64 = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(2002);

    println!("generator α (all regions)  measured Fig-2 slope (US, Skitter)");
    for alpha in [1.0, 1.3, 1.6, 1.9, 2.2] {
        let mut world = GroundTruthConfig::at_scale(routers, seed);
        world.pop_resolution_arcmin = 30.0;
        for r in world.regions.iter_mut() {
            r.alpha = alpha;
        }
        let cfg = PipelineConfig {
            world,
            ..PipelineConfig::tiny(seed)
        };
        let out = Pipeline::new(cfg).run()?;
        let f2 = experiments::fig2(&out, MapperKind::IxMapper);
        let slope = f2.json["panels"]
            .as_array()
            .expect("panels")
            .iter()
            .find(|p| p["label"].as_str().unwrap_or("").contains("US (Skitter)"))
            .and_then(|p| p["fit"]["slope"].as_f64());
        match slope {
            Some(s) => println!("{alpha:>10.1}  {s:>8.3}"),
            None => println!("{alpha:>10.1}  (no fit)"),
        }
    }
    Ok(())
}
