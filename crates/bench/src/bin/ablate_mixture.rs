//! Ablation: sweep the ground truth's distance-sensitive link share and
//! observe the Table V "% links below the sensitivity limit" response.
//!
//! ```sh
//! cargo run --release -p geotopo-bench --bin ablate_mixture [routers] [seed]
//! ```
//!
//! If the Section V estimator works, the measured below-limit fraction
//! must rise monotonically with the generator's distance-sensitive share.

use geotopo_core::experiments;
use geotopo_core::pipeline::{MapperKind, Pipeline, PipelineConfig};
use geotopo_topology::generate::GroundTruthConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let routers: usize = args
        .get(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(12_000);
    let seed: u64 = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(2002);

    println!("share_ds  mean %<limit (IxMapper, all regions/datasets)");
    for share in [0.4, 0.55, 0.7, 0.8, 0.9] {
        let mut world = GroundTruthConfig::at_scale(routers, seed);
        world.pop_resolution_arcmin = 30.0;
        world.frac_distance_sensitive = share;
        world.frac_long_haul = ((1.0 - share) * 0.4).min(0.2);
        let cfg = PipelineConfig {
            world,
            ..PipelineConfig::tiny(seed)
        };
        let out = Pipeline::new(cfg).run()?;
        let t5 = experiments::table5(&out, MapperKind::IxMapper);
        let rows = t5.json["rows"].as_array().expect("rows array");
        let fracs: Vec<f64> = rows
            .iter()
            .filter_map(|r| r["row"]["frac_below"].as_f64())
            .collect();
        let mean = if fracs.is_empty() {
            f64::NAN
        } else {
            fracs.iter().sum::<f64>() / fracs.len() as f64
        };
        println!(
            "{share:>8.2}  {:.1}%  ({} regions fitted)",
            mean * 100.0,
            fracs.len()
        );
    }
    Ok(())
}
