//! Generator benches: the ground-truth world against every baseline the
//! paper discusses, plus `geogen` — and the ablation sweeps over the
//! design knobs DESIGN.md calls out (distance-sensitive share, placement
//! exponent α).

// Bench setup code: aborting on malformed fixtures is the right behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geotopo_geo::RegionSet;
use geotopo_topology::generate::{
    barabasi_albert, erdos_renyi, geogen, transit_stub, waxman, BarabasiAlbertConfig,
    ErdosRenyiConfig, GeoGenConfig, GroundTruth, GroundTruthConfig, TransitStubConfig,
    WaxmanConfig,
};
use std::hint::black_box;

const N: usize = 600;

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator_compare");
    g.sample_size(10);
    g.bench_function("waxman", |b| {
        let cfg = WaxmanConfig {
            n: N,
            alpha: 0.1,
            beta: 0.4,
            region: RegionSet::us(),
            seed: 1,
        };
        b.iter(|| waxman(black_box(&cfg)).unwrap())
    });
    g.bench_function("erdos_renyi", |b| {
        let cfg = ErdosRenyiConfig {
            n: N,
            p: 3.0 / N as f64,
            region: RegionSet::us(),
            seed: 1,
        };
        b.iter(|| erdos_renyi(black_box(&cfg)).unwrap())
    });
    g.bench_function("barabasi_albert", |b| {
        let cfg = BarabasiAlbertConfig {
            n: N,
            m: 2,
            region: RegionSet::us(),
            seed: 1,
        };
        b.iter(|| barabasi_albert(black_box(&cfg)).unwrap())
    });
    g.bench_function("transit_stub", |b| {
        let cfg = TransitStubConfig::default();
        b.iter(|| transit_stub(black_box(&cfg)).unwrap())
    });
    g.bench_function("geogen", |b| {
        let cfg = GeoGenConfig::us_default(N, 1);
        b.iter(|| geogen(black_box(&cfg)).unwrap())
    });
    g.finish();
}

/// Ablation: sweep the ground truth's distance-sensitive link share and
/// report generation cost (the Table-V response is asserted in the
/// integration suite; here the knob's performance impact is tracked).
fn bench_ablate_mixture(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_mixture");
    g.sample_size(10);
    for share in [0.5, 0.7, 0.9] {
        g.bench_with_input(BenchmarkId::from_parameter(share), &share, |b, &share| {
            let mut cfg = GroundTruthConfig::tiny(2002);
            cfg.frac_distance_sensitive = share;
            cfg.frac_long_haul = (1.0 - share) / 2.0;
            b.iter(|| GroundTruth::generate(black_box(cfg.clone())).unwrap())
        });
    }
    g.finish();
}

/// Ablation: sweep the placement exponent α.
fn bench_ablate_alpha(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_alpha");
    g.sample_size(10);
    for alpha in [1.0, 1.5, 2.0] {
        g.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let mut cfg = GroundTruthConfig::tiny(2002);
            for r in cfg.regions.iter_mut() {
                r.alpha = alpha;
            }
            b.iter(|| GroundTruth::generate(black_box(cfg.clone())).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_baselines,
    bench_ablate_mixture,
    bench_ablate_alpha
);
criterion_main!(benches);
