//! End-to-end pipeline benches: the cost of producing Table I's four
//! processed datasets, stage by stage.

// Bench setup code: aborting on malformed fixtures is the right behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use geotopo_bgp::{RouteTable, RouteTableConfig};
use geotopo_core::experiments;
use geotopo_core::pipeline::{Pipeline, PipelineConfig};
use geotopo_measure::{Mercator, MercatorConfig, Skitter, SkitterConfig};
use geotopo_topology::generate::{GroundTruth, GroundTruthConfig};
use std::hint::black_box;

fn bench_ground_truth(c: &mut Criterion) {
    c.bench_function("ground_truth/tiny", |b| {
        b.iter(|| GroundTruth::generate(black_box(GroundTruthConfig::tiny(2002))).unwrap())
    });
}

fn bench_collectors(c: &mut Criterion) {
    let gt = GroundTruth::generate(GroundTruthConfig::tiny(2002)).unwrap();
    c.bench_function("collect/skitter_tiny", |b| {
        let cfg = SkitterConfig::scaled(&gt, 7);
        b.iter(|| Skitter::collect(black_box(&gt), black_box(&cfg)))
    });
    c.bench_function("collect/mercator_tiny", |b| {
        let cfg = MercatorConfig::scaled(&gt, 7);
        b.iter(|| Mercator::collect(black_box(&gt), black_box(&cfg)))
    });
    c.bench_function("bgp/route_table_synthesis", |b| {
        let cfg = RouteTableConfig::default();
        b.iter(|| RouteTable::synthesize(black_box(&gt.allocations), black_box(&cfg)))
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("full_tiny_table1", |b| {
        b.iter(|| {
            let out = Pipeline::new(PipelineConfig::tiny(2002)).run().unwrap();
            experiments::table1(black_box(&out))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ground_truth,
    bench_collectors,
    bench_full_pipeline
);
criterion_main!(benches);
