//! Query-snapshot serving bench: bulk hitlist throughput at each
//! requested worker count, plus the regression gate behind
//! `cargo xtask bench --bench query --check`.
//!
//! ```sh
//! cargo bench -p geotopo-bench --bench query -- \
//!     [--scale NAME] [--threads 1,4] [--iters N] [--hitlist N] \
//!     [--json PATH] [--check BASELINE] [--min-speedup X] [--tolerance X]
//! ```
//!
//! A plain harness like `pipeline_stages`: the pipeline is built once
//! per scale (untimed), its frozen [`geotopo_query::QuerySnapshot`] is
//! then served a hitlist — the world's interfaces cycled to `--hitlist`
//! addresses — through the engine's `parallel_map` executor, and the
//! best-of-`--iters` wall time becomes the recorded lookups/s. Entries
//! merge into the JSON file by scale, so one committed baseline
//! (`BENCH_query.json`) carries several world sizes.
//!
//! `--check BASELINE` gates two properties:
//!
//! 1. **No single-thread throughput regression** — fresh 1-thread
//!    lookups/s must not fall below the baseline's by more than
//!    `--tolerance` (default 0.5: at most ~1.5x slower; absolute rates
//!    move across machines, the baseline pins the order of magnitude).
//! 2. **Thread scaling** — lookups/s at the highest worker count must
//!    be at least `--min-speedup` (default 1.5) times the 1-thread
//!    rate. Lookups are CPU-bound and share no mutable state, so the
//!    scaling should be near-linear; the gate is skipped (loudly) when
//!    the host has fewer cores than the worker count or the baseline
//!    was recorded on a host with a different core count.

// Bench code: aborting on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use geotopo_core::engine::resolve_threads;
use geotopo_core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
use geotopo_core::query::bulk_lookup;
use geotopo_core::telemetry::Telemetry;
use std::net::Ipv4Addr;
use std::process::ExitCode;
use std::time::Instant;

const SEED: u64 = 2002;

struct Run {
    threads: usize,
    /// Best wall time for one full hitlist resolution, seconds.
    best_s: f64,
    /// Hitlist addresses served per second at that best time.
    lookups_per_s: f64,
}

fn config_for(scale: &str) -> PipelineConfig {
    match scale {
        "tiny" => PipelineConfig::tiny(SEED),
        "small" => PipelineConfig::small(SEED),
        "default" => PipelineConfig::default_scale(SEED),
        "large" => PipelineConfig::large(SEED),
        "paper" => PipelineConfig::paper(SEED),
        other => panic!("unknown --scale {other:?} (tiny|small|default|large|paper)"),
    }
}

fn measure(out: &PipelineOutput, hitlist: &[Ipv4Addr], threads: usize, iters: usize) -> Run {
    let telemetry = Telemetry::new();
    let mut best_s = f64::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        let answers = bulk_lookup(&out.query, hitlist, threads, &telemetry);
        best_s = best_s.min(start.elapsed().as_secs_f64());
        assert_eq!(answers.len(), hitlist.len());
        std::hint::black_box(&answers);
    }
    Run {
        threads,
        best_s,
        lookups_per_s: hitlist.len() as f64 / best_s.max(1e-12),
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale").unwrap_or_else(|| "small".into());
    let json_path = arg_value(&args, "--json").unwrap_or_else(|| "target/query.json".into());
    let baseline_path = arg_value(&args, "--check");
    let min_speedup: f64 = arg_value(&args, "--min-speedup")
        .map(|s| s.parse().expect("--min-speedup takes a number"))
        .unwrap_or(1.5);
    let tolerance: f64 = arg_value(&args, "--tolerance")
        .map(|s| s.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.5);
    let iters: usize = arg_value(&args, "--iters")
        .map(|s| s.parse().expect("--iters takes a count"))
        .unwrap_or(5);
    let hitlist_n: usize = arg_value(&args, "--hitlist")
        .map(|s| s.parse().expect("--hitlist takes an address count"))
        .unwrap_or(400_000);
    let threads: Vec<usize> = match arg_value(&args, "--threads") {
        Some(list) => list
            .split(',')
            .map(|t| {
                let t: usize = t.trim().parse().expect("--threads takes e.g. 1,4");
                if t == 0 {
                    resolve_threads(0)
                } else {
                    t
                }
            })
            .collect(),
        None => {
            let par = resolve_threads(0);
            if par > 1 {
                vec![1, par]
            } else {
                vec![1]
            }
        }
    };

    // Build once, untimed: the bench measures serving, not production.
    let build = Instant::now();
    let out = Pipeline::new(config_for(&scale)).run().unwrap();
    let interfaces: Vec<Ipv4Addr> = out
        .ground_truth
        .topology
        .interfaces()
        .map(|(_, iface)| iface.ip)
        .collect();
    let hitlist: Vec<Ipv4Addr> = interfaces.iter().copied().cycle().take(hitlist_n).collect();
    println!(
        "query (scale = {scale}, seed = {SEED}, best of {iters}): snapshot of {} \
         addresses built in {:.1}s, hitlist of {}",
        out.query.len(),
        build.elapsed().as_secs_f64(),
        hitlist.len()
    );

    let runs: Vec<Run> = threads
        .iter()
        .map(|&t| measure(&out, &hitlist, t, iters))
        .collect();
    for run in &runs {
        println!(
            "  threads = {}: {:.4}s per hitlist, {:.0} lookups/s",
            run.threads, run.best_s, run.lookups_per_s
        );
    }
    if let (Some(a), Some(b)) = (runs.first(), runs.last()) {
        if a.threads != b.threads {
            println!(
                "  serving speedup: {:.2}x ({} workers over {})",
                b.lookups_per_s / a.lookups_per_s,
                b.threads,
                a.threads
            );
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let entry = serde_json::json!({
        "seed": SEED,
        "iters": iters,
        "host_cores": cores,
        "hitlist": hitlist.len(),
        "snapshot_addresses": out.query.len(),
        "runs": runs
            .iter()
            .map(|r| {
                serde_json::json!({
                    "threads": r.threads,
                    "best_s": r.best_s,
                    "lookups_per_s": r.lookups_per_s,
                })
            })
            .collect::<Vec<_>>(),
    });
    // Merge this scale's entry into whatever the file already holds.
    let mut entries: Vec<(String, serde_json::Value)> = std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|t| serde_json::from_str::<serde_json::Value>(&t).ok())
        .as_ref()
        .and_then(|v| v.get("entries"))
        .and_then(serde_json::Value::as_object)
        .cloned()
        .unwrap_or_default();
    entries.retain(|(k, _)| k != &scale);
    entries.push((scale.clone(), entry));
    let doc = serde_json::json!({
        "bench": "query",
        "entries": serde_json::Value::Object(entries),
    });
    if let Some(parent) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&json_path, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
    println!("  results written to {json_path} (entry: {scale})");

    match baseline_path {
        Some(p) => check(&runs, &scale, &p, min_speedup, tolerance),
        None => ExitCode::SUCCESS,
    }
}

/// The `--check` gate; exit 1 on a regression so CI fails the job.
fn check(
    runs: &[Run],
    scale: &str,
    baseline_path: &str,
    min_speedup: f64,
    tolerance: f64,
) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench check: cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench check: baseline {baseline_path} is not JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let entry = &baseline["entries"][scale];
    if entry.is_null() {
        eprintln!("bench check: baseline {baseline_path} has no entry for scale {scale:?}");
        return ExitCode::from(2);
    }
    let base_rate_1 = entry["runs"]
        .as_array()
        .and_then(|rs| rs.iter().find(|r| r["threads"] == 1))
        .and_then(|r| r["lookups_per_s"].as_f64());
    let Some(base_rate_1) = base_rate_1 else {
        eprintln!("bench check: baseline entry {scale:?} has no 1-thread lookups_per_s");
        return ExitCode::from(2);
    };

    let mut failed = false;
    let seq = runs.iter().find(|r| r.threads == 1);
    let par = runs.iter().rfind(|r| r.threads > 1);

    // Gate 1: no single-thread throughput regression.
    if let Some(seq) = seq {
        let floor = base_rate_1 / (1.0 + tolerance);
        if seq.lookups_per_s < floor {
            eprintln!(
                "bench check: FAIL 1-thread throughput {:.0}/s fell below baseline \
                 {base_rate_1:.0}/s by more than {:.0}%",
                seq.lookups_per_s,
                tolerance * 100.0
            );
            failed = true;
        } else {
            println!(
                "bench check: 1-thread throughput {:.0}/s within {:.0}% of \
                 baseline {base_rate_1:.0}/s",
                seq.lookups_per_s,
                tolerance * 100.0
            );
        }
    }

    // Gate 2: thread scaling, when the host can express it and the
    // baseline is from a comparable host.
    if let (Some(seq), Some(par)) = (seq, par) {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let base_cores = entry["host_cores"].as_u64();
        if let Some(skip) = geotopo_bench::scaling_gate_skip(cores, par.threads, base_cores) {
            println!("bench check: {skip}");
        } else {
            let speedup = par.lookups_per_s / seq.lookups_per_s;
            if speedup < min_speedup {
                eprintln!(
                    "bench check: FAIL serving speedup {speedup:.2}x at \
                     {} threads < required {min_speedup:.2}x",
                    par.threads
                );
                failed = true;
            } else {
                println!(
                    "bench check: serving speedup {speedup:.2}x at {} threads \
                     (>= {min_speedup:.2}x)",
                    par.threads
                );
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        println!("bench check: ok against {baseline_path} (entry: {scale})");
        ExitCode::SUCCESS
    }
}
