//! Stage-graph scheduler bench: per-stage and end-to-end wall time at
//! each requested worker count, plus the measurement-stage regression
//! gate behind `cargo xtask bench --check`.
//!
//! ```sh
//! cargo bench -p geotopo-bench --bench pipeline_stages -- \
//!     [--scale NAME] [--threads 1,4] [--iters N] [--json PATH] \
//!     [--check BASELINE] [--min-speedup X] [--tolerance X]
//! ```
//!
//! Unlike the Criterion benches this is a plain harness: the engine
//! already measures each stage (its `StageReport`s), so the bench only
//! has to run the pipeline at the requested thread counts, aggregate
//! the reports, and persist a JSON baseline (default
//! `target/pipeline_stages.json`) for regression comparison.
//!
//! `--scale` picks the world size (tiny|small|default|large|paper;
//! default `small`). The JSON file holds one entry per scale under
//! `"entries"`, and writing a new run *merges* into the existing file,
//! so the committed baseline can carry both the fast `small` entry and
//! the memory-stress `large` entry without one run clobbering the
//! other. Each run also records the process peak RSS (from the engine's
//! per-stage reports), which is what the `large` entry exists to pin.
//!
//! `--check BASELINE` loads a committed baseline (`BENCH_measure.json`
//! at the repo root), selects its entry for the scale being run, and
//! gates on three properties of the fresh run:
//!
//! 1. **Thread scaling** — the measurement stage (`collect-skitter` +
//!    `collect-mercator` wall time) at the highest thread count must be
//!    at least `--min-speedup` (default 2.0) times faster than at one
//!    thread. Monitor campaigns are CPU-bound, so this assertion is
//!    only meaningful when the host actually has that parallelism; the
//!    gate is skipped with a loud note when the host has fewer cores
//!    than the requested thread count, *or* when the baseline was
//!    recorded on a host with a different core count (comparing a
//!    4-core scaling curve against a 1-core recording gates noise, not
//!    regressions).
//! 2. **No single-thread regression** — the fresh one-thread
//!    measurement time *and* end-to-end wall time must not exceed the
//!    baseline's by more than `--tolerance` (default 0.5, i.e. +50%;
//!    generous because absolute milliseconds move across machines — the
//!    committed baseline mainly pins the *shape* of the run). The
//!    end-to-end gate pins the interior-parallel stage rebuild: a
//!    serial regression anywhere in the graph fails it even if the
//!    probe collectors stay fast.
//! 3. **No peak-RSS regression** — when both the baseline entry and the
//!    fresh run carry a nonzero peak RSS, the fresh peak must not
//!    exceed the baseline's by more than the same tolerance. This is
//!    the memory gate for the `large` scale: the packed topology core
//!    keeps a ~100k-router world within the committed footprint.

// Bench code: aborting on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use geotopo_core::engine::{resolve_threads, StageReport};
use geotopo_core::pipeline::{Pipeline, PipelineConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

const SEED: u64 = 2002;

/// Stages that make up "the measurement stage" for gating purposes:
/// the two probe collectors the hot-path work landed in.
const MEASURE_STAGES: &[&str] = &["collect-skitter", "collect-mercator"];

struct Run {
    threads: usize,
    /// Best end-to-end wall time over the iterations, seconds.
    total_s: f64,
    /// Per-stage best wall time, milliseconds.
    stages_ms: BTreeMap<String, f64>,
    /// Highest per-stage peak RSS observed, bytes (0 = unsupported).
    peak_rss_bytes: u64,
}

impl Run {
    /// Combined wall time of the measurement stages, milliseconds.
    fn measure_ms(&self) -> f64 {
        MEASURE_STAGES
            .iter()
            .filter_map(|s| self.stages_ms.get(*s))
            .sum()
    }
}

fn config_for(scale: &str) -> PipelineConfig {
    match scale {
        "tiny" => PipelineConfig::tiny(SEED),
        "small" => PipelineConfig::small(SEED),
        "default" => PipelineConfig::default_scale(SEED),
        "large" => PipelineConfig::large(SEED),
        "paper" => PipelineConfig::paper(SEED),
        other => panic!("unknown --scale {other:?} (tiny|small|default|large|paper)"),
    }
}

fn measure(scale: &str, threads: usize, iters: usize) -> Run {
    let mut total_s = f64::MAX;
    let mut stages_ms: BTreeMap<String, f64> = BTreeMap::new();
    let mut peak_rss_bytes = 0u64;
    for _ in 0..iters {
        let start = Instant::now();
        let out = Pipeline::new(config_for(scale))
            .with_threads(threads)
            .run()
            .unwrap();
        total_s = total_s.min(start.elapsed().as_secs_f64());
        for r in &out.reports {
            let best = stages_ms.entry(r.stage.clone()).or_insert(f64::MAX);
            *best = best.min(r.wall_ms);
            peak_rss_bytes = peak_rss_bytes.max(r.peak_rss_bytes);
        }
        record_reports(&out.reports);
    }
    Run {
        threads,
        total_s,
        stages_ms,
        peak_rss_bytes,
    }
}

/// Keeps the reports alive past the timing read (and out of the
/// optimizer's reach).
fn record_reports(reports: &[StageReport]) {
    std::hint::black_box(reports.len());
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg_value(&args, "--scale").unwrap_or_else(|| "small".into());
    let json_path =
        arg_value(&args, "--json").unwrap_or_else(|| "target/pipeline_stages.json".into());
    let baseline_path = arg_value(&args, "--check");
    let min_speedup: f64 = arg_value(&args, "--min-speedup")
        .map(|s| s.parse().expect("--min-speedup takes a number"))
        .unwrap_or(2.0);
    let tolerance: f64 = arg_value(&args, "--tolerance")
        .map(|s| s.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.5);
    // The large/paper worlds are minutes-long; one iteration pins the
    // footprint without tripling the wall clock.
    let default_iters = if matches!(scale.as_str(), "large" | "paper") {
        1
    } else {
        3
    };
    let iters: usize = arg_value(&args, "--iters")
        .map(|s| s.parse().expect("--iters takes a count"))
        .unwrap_or(default_iters);
    let threads: Vec<usize> = match arg_value(&args, "--threads") {
        Some(list) => list
            .split(',')
            .map(|t| {
                let t: usize = t.trim().parse().expect("--threads takes e.g. 1,4");
                if t == 0 {
                    resolve_threads(0)
                } else {
                    t
                }
            })
            .collect(),
        None => {
            let par = resolve_threads(0);
            if par > 1 {
                vec![1, par]
            } else {
                vec![1]
            }
        }
    };

    let runs: Vec<Run> = threads.iter().map(|&t| measure(&scale, t, iters)).collect();

    println!("pipeline_stages (scale = {scale}, seed = {SEED}, best of {iters})");
    for run in &runs {
        println!(
            "  threads = {}: {:.3}s end-to-end, measurement {:.2} ms, peak RSS {:.1} MiB",
            run.threads,
            run.total_s,
            run.measure_ms(),
            run.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        );
        for (stage, ms) in &run.stages_ms {
            println!("    {stage:>24}  {ms:>9.2} ms");
        }
    }
    if let (Some(a), Some(b)) = (runs.first(), runs.last()) {
        if a.threads != b.threads {
            println!(
                "  measurement-stage speedup: {:.2}x ({} workers over {})",
                a.measure_ms() / b.measure_ms(),
                b.threads,
                a.threads
            );
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let entry = serde_json::json!({
        "seed": SEED,
        "iters": iters,
        // Contextualizes the thread-scaling rows: a 4-thread run on a
        // 1-core host records oversubscription, not speedup.
        "host_cores": cores,
        "peak_rss_bytes": runs.iter().map(|r| r.peak_rss_bytes).max().unwrap_or(0),
        "runs": runs
            .iter()
            .map(|r| {
                serde_json::json!({
                    "threads": r.threads,
                    "total_s": r.total_s,
                    "measure_ms": r.measure_ms(),
                    "peak_rss_bytes": r.peak_rss_bytes,
                    "stages_ms": r.stages_ms,
                })
            })
            .collect::<Vec<_>>(),
    });
    // Merge this scale's entry into whatever the file already holds, so
    // a `large` recording does not clobber the committed `small` one.
    let mut entries: Vec<(String, serde_json::Value)> = std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|t| serde_json::from_str::<serde_json::Value>(&t).ok())
        .as_ref()
        .and_then(|v| v.get("entries"))
        .and_then(serde_json::Value::as_object)
        .cloned()
        .unwrap_or_default();
    entries.retain(|(k, _)| k != &scale);
    entries.push((scale.clone(), entry));
    let doc = serde_json::json!({
        "bench": "pipeline_stages",
        "entries": serde_json::Value::Object(entries),
    });
    if let Some(parent) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&json_path, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
    println!("  results written to {json_path} (entry: {scale})");

    match baseline_path {
        Some(p) => check(&runs, &scale, &p, min_speedup, tolerance),
        None => ExitCode::SUCCESS,
    }
}

/// The `--check` gate. Returns failure (exit 1) on a regression so
/// `cargo bench` — and through it `cargo xtask bench --check` — fails
/// the CI job.
fn check(
    runs: &[Run],
    scale: &str,
    baseline_path: &str,
    min_speedup: f64,
    tolerance: f64,
) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench check: cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench check: baseline {baseline_path} is not JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let entry = &baseline["entries"][scale];
    if entry.is_null() {
        eprintln!("bench check: baseline {baseline_path} has no entry for scale {scale:?}");
        return ExitCode::from(2);
    }
    let base_measure_1 = entry["runs"]
        .as_array()
        .and_then(|rs| rs.iter().find(|r| r["threads"] == 1))
        .and_then(|r| r["measure_ms"].as_f64());
    let Some(base_measure_1) = base_measure_1 else {
        eprintln!("bench check: baseline entry {scale:?} has no 1-thread measure_ms");
        return ExitCode::from(2);
    };

    let mut failed = false;
    let seq = runs.iter().find(|r| r.threads == 1);
    let par = runs.iter().rfind(|r| r.threads > 1);

    // Gate 1: thread scaling of the measurement stage, when the host
    // can actually express it AND the baseline is from a comparable
    // host (a curve recorded on a different core count pins nothing).
    if let (Some(seq), Some(par)) = (seq, par) {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let base_cores = entry["host_cores"].as_u64();
        if let Some(skip) = geotopo_bench::scaling_gate_skip(cores, par.threads, base_cores) {
            println!("bench check: {skip}");
        } else {
            let speedup = seq.measure_ms() / par.measure_ms();
            if speedup < min_speedup {
                eprintln!(
                    "bench check: FAIL measurement-stage speedup {speedup:.2}x at \
                     {} threads < required {min_speedup:.2}x",
                    par.threads
                );
                failed = true;
            } else {
                println!(
                    "bench check: measurement-stage speedup {speedup:.2}x at {} threads \
                     (>= {min_speedup:.2}x)",
                    par.threads
                );
            }
        }
    }

    // Gate 2: no single-thread regression against the committed
    // baseline — both the measurement stages and the end-to-end wall
    // time. The total gate is the tighter one now that every hot stage
    // interior is chunked: a serial regression anywhere in the graph
    // shows up in total_s even if the probe collectors stay fast.
    if let Some(seq) = seq {
        let limit = base_measure_1 * (1.0 + tolerance);
        if seq.measure_ms() > limit {
            eprintln!(
                "bench check: FAIL 1-thread measurement {:.2} ms exceeds baseline \
                 {base_measure_1:.2} ms by more than {:.0}%",
                seq.measure_ms(),
                tolerance * 100.0
            );
            failed = true;
        } else {
            println!(
                "bench check: 1-thread measurement {:.2} ms within {:.0}% of \
                 baseline {base_measure_1:.2} ms",
                seq.measure_ms(),
                tolerance * 100.0
            );
        }
        let base_total_1 = entry["runs"]
            .as_array()
            .and_then(|rs| rs.iter().find(|r| r["threads"] == 1))
            .and_then(|r| r["total_s"].as_f64());
        if let Some(base_total_1) = base_total_1 {
            let limit = base_total_1 * (1.0 + tolerance);
            if seq.total_s > limit {
                eprintln!(
                    "bench check: FAIL 1-thread end-to-end {:.3} s exceeds baseline \
                     {base_total_1:.3} s by more than {:.0}%",
                    seq.total_s,
                    tolerance * 100.0
                );
                failed = true;
            } else {
                println!(
                    "bench check: 1-thread end-to-end {:.3} s within {:.0}% of \
                     baseline {base_total_1:.3} s",
                    seq.total_s,
                    tolerance * 100.0
                );
            }
        }
    }

    // Gate 3: no peak-RSS regression (the memory gate the `large` entry
    // exists for). Peak RSS is a process-wide high-water mark, so the
    // fresh maximum over all runs is compared against the baseline's.
    let fresh_rss = runs.iter().map(|r| r.peak_rss_bytes).max().unwrap_or(0);
    let base_rss = entry["peak_rss_bytes"].as_u64().unwrap_or(0);
    if fresh_rss > 0 && base_rss > 0 {
        let limit = (base_rss as f64 * (1.0 + tolerance)) as u64;
        let mib = 1024.0 * 1024.0;
        if fresh_rss > limit {
            eprintln!(
                "bench check: FAIL peak RSS {:.1} MiB exceeds baseline {:.1} MiB \
                 by more than {:.0}%",
                fresh_rss as f64 / mib,
                base_rss as f64 / mib,
                tolerance * 100.0
            );
            failed = true;
        } else {
            println!(
                "bench check: peak RSS {:.1} MiB within {:.0}% of baseline {:.1} MiB",
                fresh_rss as f64 / mib,
                tolerance * 100.0,
                base_rss as f64 / mib
            );
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        println!("bench check: ok against {baseline_path} (entry: {scale})");
        ExitCode::SUCCESS
    }
}
