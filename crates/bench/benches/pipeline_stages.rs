//! Stage-graph scheduler bench: per-stage and end-to-end wall time at
//! one worker vs the machine's available parallelism.
//!
//! ```sh
//! cargo bench -p geotopo-bench --bench pipeline_stages [-- --json PATH]
//! ```
//!
//! Unlike the Criterion benches this is a plain harness: the engine
//! already measures each stage (its `StageReport`s), so the bench only
//! has to run the pipeline at both thread counts, aggregate the
//! reports, and persist a JSON baseline (default
//! `target/pipeline_stages.json`) for regression comparison.

// Bench code: aborting on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use geotopo_core::engine::{resolve_threads, StageReport};
use geotopo_core::pipeline::{Pipeline, PipelineConfig};
use std::collections::BTreeMap;
use std::time::Instant;

const ITERS: usize = 3;
const SEED: u64 = 2002;

struct Run {
    threads: usize,
    /// Best end-to-end wall time over the iterations, seconds.
    total_s: f64,
    /// Per-stage best wall time, milliseconds.
    stages_ms: BTreeMap<String, f64>,
}

fn measure(threads: usize) -> Run {
    let mut total_s = f64::MAX;
    let mut stages_ms: BTreeMap<String, f64> = BTreeMap::new();
    for _ in 0..ITERS {
        let start = Instant::now();
        let out = Pipeline::new(PipelineConfig::small(SEED))
            .with_threads(threads)
            .run()
            .unwrap();
        total_s = total_s.min(start.elapsed().as_secs_f64());
        for r in &out.reports {
            let best = stages_ms.entry(r.stage.clone()).or_insert(f64::MAX);
            *best = best.min(r.wall_ms);
        }
        record_reports(&out.reports);
    }
    Run {
        threads,
        total_s,
        stages_ms,
    }
}

/// Keeps the reports alive past the timing read (and out of the
/// optimizer's reach).
fn record_reports(reports: &[StageReport]) {
    std::hint::black_box(reports.len());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/pipeline_stages.json".into());

    let par_threads = resolve_threads(0);
    let seq = measure(1);
    let runs = if par_threads > 1 {
        vec![seq, measure(par_threads)]
    } else {
        vec![seq]
    };

    println!("pipeline_stages (scale = small, seed = {SEED}, best of {ITERS})");
    for run in &runs {
        println!(
            "  threads = {}: {:.3}s end-to-end",
            run.threads, run.total_s
        );
        for (stage, ms) in &run.stages_ms {
            println!("    {stage:>24}  {ms:>9.2} ms");
        }
    }
    if let [a, b] = runs.as_slice() {
        println!(
            "  speedup: {:.2}x ({} workers over 1)",
            a.total_s / b.total_s,
            b.threads
        );
    }

    let baseline = serde_json::json!({
        "bench": "pipeline_stages",
        "scale": "small",
        "seed": SEED,
        "iters": ITERS,
        "runs": runs
            .iter()
            .map(|r| {
                serde_json::json!({
                    "threads": r.threads,
                    "total_s": r.total_s,
                    "stages_ms": r.stages_ms,
                })
            })
            .collect::<Vec<_>>(),
    });
    if let Some(parent) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&json_path, serde_json::to_string_pretty(&baseline).unwrap()).unwrap();
    println!("  baseline written to {json_path}");
}
