//! Stage-graph scheduler bench: per-stage and end-to-end wall time at
//! each requested worker count, plus the measurement-stage regression
//! gate behind `cargo xtask bench --check`.
//!
//! ```sh
//! cargo bench -p geotopo-bench --bench pipeline_stages -- \
//!     [--threads 1,4] [--json PATH] [--check BASELINE] [--min-speedup X]
//! ```
//!
//! Unlike the Criterion benches this is a plain harness: the engine
//! already measures each stage (its `StageReport`s), so the bench only
//! has to run the pipeline at the requested thread counts, aggregate
//! the reports, and persist a JSON baseline (default
//! `target/pipeline_stages.json`) for regression comparison.
//!
//! `--check BASELINE` loads a committed baseline (`BENCH_measure.json`
//! at the repo root) and gates on two properties of the fresh run:
//!
//! 1. **Thread scaling** — the measurement stage (`collect-skitter` +
//!    `collect-mercator` wall time) at the highest thread count must be
//!    at least `--min-speedup` (default 2.0) times faster than at one
//!    thread. Monitor campaigns are CPU-bound, so this assertion is
//!    only meaningful when the host actually has that parallelism; on
//!    hosts with fewer cores than the requested thread count the
//!    scaling gate is skipped with a loud note (CI runs on multi-core
//!    runners where it is enforced).
//! 2. **No single-thread regression** — the fresh one-thread
//!    measurement time must not exceed the baseline's by more than
//!    `--tolerance` (default 0.5, i.e. +50%; generous because absolute
//!    milliseconds move across machines — the committed baseline mainly
//!    pins the *shape* of the run).

// Bench code: aborting on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use geotopo_core::engine::{resolve_threads, StageReport};
use geotopo_core::pipeline::{Pipeline, PipelineConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

const ITERS: usize = 3;
const SEED: u64 = 2002;

/// Stages that make up "the measurement stage" for gating purposes:
/// the two probe collectors the hot-path work landed in.
const MEASURE_STAGES: &[&str] = &["collect-skitter", "collect-mercator"];

struct Run {
    threads: usize,
    /// Best end-to-end wall time over the iterations, seconds.
    total_s: f64,
    /// Per-stage best wall time, milliseconds.
    stages_ms: BTreeMap<String, f64>,
}

impl Run {
    /// Combined wall time of the measurement stages, milliseconds.
    fn measure_ms(&self) -> f64 {
        MEASURE_STAGES
            .iter()
            .filter_map(|s| self.stages_ms.get(*s))
            .sum()
    }
}

fn measure(threads: usize) -> Run {
    let mut total_s = f64::MAX;
    let mut stages_ms: BTreeMap<String, f64> = BTreeMap::new();
    for _ in 0..ITERS {
        let start = Instant::now();
        let out = Pipeline::new(PipelineConfig::small(SEED))
            .with_threads(threads)
            .run()
            .unwrap();
        total_s = total_s.min(start.elapsed().as_secs_f64());
        for r in &out.reports {
            let best = stages_ms.entry(r.stage.clone()).or_insert(f64::MAX);
            *best = best.min(r.wall_ms);
        }
        record_reports(&out.reports);
    }
    Run {
        threads,
        total_s,
        stages_ms,
    }
}

/// Keeps the reports alive past the timing read (and out of the
/// optimizer's reach).
fn record_reports(reports: &[StageReport]) {
    std::hint::black_box(reports.len());
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let json_path =
        arg_value(&args, "--json").unwrap_or_else(|| "target/pipeline_stages.json".into());
    let baseline_path = arg_value(&args, "--check");
    let min_speedup: f64 = arg_value(&args, "--min-speedup")
        .map(|s| s.parse().expect("--min-speedup takes a number"))
        .unwrap_or(2.0);
    let tolerance: f64 = arg_value(&args, "--tolerance")
        .map(|s| s.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.5);
    let threads: Vec<usize> = match arg_value(&args, "--threads") {
        Some(list) => list
            .split(',')
            .map(|t| {
                let t: usize = t.trim().parse().expect("--threads takes e.g. 1,4");
                if t == 0 {
                    resolve_threads(0)
                } else {
                    t
                }
            })
            .collect(),
        None => {
            let par = resolve_threads(0);
            if par > 1 {
                vec![1, par]
            } else {
                vec![1]
            }
        }
    };

    let runs: Vec<Run> = threads.iter().map(|&t| measure(t)).collect();

    println!("pipeline_stages (scale = small, seed = {SEED}, best of {ITERS})");
    for run in &runs {
        println!(
            "  threads = {}: {:.3}s end-to-end, measurement {:.2} ms",
            run.threads,
            run.total_s,
            run.measure_ms()
        );
        for (stage, ms) in &run.stages_ms {
            println!("    {stage:>24}  {ms:>9.2} ms");
        }
    }
    if let (Some(a), Some(b)) = (runs.first(), runs.last()) {
        if a.threads != b.threads {
            println!(
                "  measurement-stage speedup: {:.2}x ({} workers over {})",
                a.measure_ms() / b.measure_ms(),
                b.threads,
                a.threads
            );
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let baseline = serde_json::json!({
        "bench": "pipeline_stages",
        "scale": "small",
        "seed": SEED,
        "iters": ITERS,
        // Contextualizes the thread-scaling rows: a 4-thread run on a
        // 1-core host records oversubscription, not speedup.
        "host_cores": cores,
        "runs": runs
            .iter()
            .map(|r| {
                serde_json::json!({
                    "threads": r.threads,
                    "total_s": r.total_s,
                    "measure_ms": r.measure_ms(),
                    "stages_ms": r.stages_ms,
                })
            })
            .collect::<Vec<_>>(),
    });
    if let Some(parent) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&json_path, serde_json::to_string_pretty(&baseline).unwrap()).unwrap();
    println!("  results written to {json_path}");

    match baseline_path {
        Some(p) => check(&runs, &p, min_speedup, tolerance),
        None => ExitCode::SUCCESS,
    }
}

/// The `--check` gate. Returns failure (exit 1) on a regression so
/// `cargo bench` — and through it `cargo xtask bench --check` — fails
/// the CI job.
fn check(runs: &[Run], baseline_path: &str, min_speedup: f64, tolerance: f64) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench check: cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench check: baseline {baseline_path} is not JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let base_measure_1 = baseline["runs"]
        .as_array()
        .and_then(|rs| rs.iter().find(|r| r["threads"] == 1))
        .and_then(|r| r["measure_ms"].as_f64());
    let Some(base_measure_1) = base_measure_1 else {
        eprintln!("bench check: baseline has no 1-thread measure_ms entry");
        return ExitCode::from(2);
    };

    let mut failed = false;
    let seq = runs.iter().find(|r| r.threads == 1);
    let par = runs.iter().rfind(|r| r.threads > 1);

    // Gate 1: thread scaling of the measurement stage, when the host
    // can actually express it.
    if let (Some(seq), Some(par)) = (seq, par) {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        if cores < par.threads {
            println!(
                "bench check: host has {cores} core(s) < {} threads; \
                 scaling gate skipped (enforced on multi-core CI)",
                par.threads
            );
        } else {
            let speedup = seq.measure_ms() / par.measure_ms();
            if speedup < min_speedup {
                eprintln!(
                    "bench check: FAIL measurement-stage speedup {speedup:.2}x at \
                     {} threads < required {min_speedup:.2}x",
                    par.threads
                );
                failed = true;
            } else {
                println!(
                    "bench check: measurement-stage speedup {speedup:.2}x at {} threads \
                     (>= {min_speedup:.2}x)",
                    par.threads
                );
            }
        }
    }

    // Gate 2: no single-thread regression against the committed
    // baseline.
    if let Some(seq) = seq {
        let limit = base_measure_1 * (1.0 + tolerance);
        if seq.measure_ms() > limit {
            eprintln!(
                "bench check: FAIL 1-thread measurement {:.2} ms exceeds baseline \
                 {base_measure_1:.2} ms by more than {:.0}%",
                seq.measure_ms(),
                tolerance * 100.0
            );
            failed = true;
        } else {
            println!(
                "bench check: 1-thread measurement {:.2} ms within {:.0}% of \
                 baseline {base_measure_1:.2} ms",
                seq.measure_ms(),
                tolerance * 100.0
            );
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        println!("bench check: ok against {baseline_path}");
        ExitCode::SUCCESS
    }
}
