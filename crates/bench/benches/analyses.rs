//! One bench per paper table/figure analysis, over a shared pipeline
//! output — these measure the *analysis* cost, world generation is
//! amortized by the fixture.

use criterion::{criterion_group, criterion_main, Criterion};
use geotopo_bench::tiny_output;
use geotopo_core::experiments;
use geotopo_core::pipeline::{Collector, MapperKind};
use geotopo_core::section5::{distance_preference, distance_preference_with_threshold, RegionBins};
use geotopo_core::section6;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let out = tiny_output();
    c.bench_function("table1/dataset_sizes", |b| {
        b.iter(|| experiments::table1(black_box(out)))
    });
    c.bench_function("table3/economic_regions", |b| {
        b.iter(|| experiments::table3(black_box(out)))
    });
    c.bench_function("table4/homogeneity", |b| {
        b.iter(|| experiments::table4(black_box(out)))
    });
    c.bench_function("table5/sensitivity_limits", |b| {
        b.iter(|| experiments::table5(black_box(out), MapperKind::IxMapper))
    });
    c.bench_function("table6/domain_links", |b| {
        b.iter(|| experiments::table6(black_box(out)))
    });
}

fn bench_figures(c: &mut Criterion) {
    let out = tiny_output();
    c.bench_function("fig1/ascii_maps", |b| {
        b.iter(|| experiments::fig1(black_box(out)))
    });
    let mut g = c.benchmark_group("fig2");
    g.sample_size(20);
    g.bench_function("population_regression", |b| {
        b.iter(|| experiments::fig2(black_box(out), MapperKind::IxMapper))
    });
    g.finish();
    let mut g = c.benchmark_group("fig4_5_6");
    g.sample_size(20);
    g.bench_function("distance_preference_all_regions", |b| {
        b.iter(|| experiments::fig4(black_box(out), MapperKind::IxMapper))
    });
    g.finish();
    c.bench_function("fig7/as_size_ccdfs", |b| {
        b.iter(|| experiments::fig7(black_box(out)))
    });
    c.bench_function("fig8/as_scatter_correlations", |b| {
        b.iter(|| experiments::fig8(black_box(out)))
    });
    c.bench_function("fig9/convex_hull_cdfs", |b| {
        b.iter(|| experiments::fig9(black_box(out)))
    });
    c.bench_function("fig10/size_vs_hull", |b| {
        b.iter(|| experiments::fig10(black_box(out)))
    });
    c.bench_function("fractal/box_counting", |b| {
        b.iter(|| experiments::fractal_dimension(black_box(out)))
    });
}

fn bench_as_measures(c: &mut Criterion) {
    let out = tiny_output();
    let ds = &out
        .dataset(MapperKind::IxMapper, Collector::Skitter)
        .dataset;
    c.bench_function("section6/as_measures", |b| {
        b.iter(|| section6::as_measures(black_box(ds)))
    });
}

/// The pairs-estimator ablation: exact O(n²) vs grid convolution on the
/// same dataset (the accuracy side is asserted in tests; this measures
/// the speed tradeoff).
fn bench_pairs_estimator(c: &mut Criterion) {
    let out = tiny_output();
    let ds = &out
        .dataset(MapperKind::IxMapper, Collector::Skitter)
        .dataset;
    let bins = &RegionBins::paper()[0]; // US
    let mut g = c.benchmark_group("ablate_pairs_estimator");
    g.sample_size(10);
    g.bench_function("exact", |b| {
        b.iter(|| distance_preference(black_box(ds), black_box(bins), true))
    });
    g.bench_function("grid_convolution", |b| {
        b.iter(|| distance_preference_with_threshold(black_box(ds), black_box(bins), false, 0))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_figures,
    bench_as_measures,
    bench_pairs_estimator
);
criterion_main!(benches);
