//! Substrate micro-benches: the primitives every experiment leans on.

// Bench setup code: aborting on malformed fixtures is the right behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use geotopo_bgp::{AsId, Ipv4Prefix, PrefixTrie};
use geotopo_geo::{
    box_counting_dimension, boxcount::default_scales, convex_hull, haversine_miles,
    AlbersProjection, GeoPoint, RegionSet,
};
use geotopo_geomap::{Gazetteer, GeoMapper, IxMapper, MapContext, OrgDb};
use geotopo_population::SyntheticPopulation;
use geotopo_stats::{fit_line, AliasTable, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn rand_points(n: usize, seed: u64) -> Vec<GeoPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            GeoPoint::new(
                rng.random_range(25.0..50.0),
                rng.random_range(-150.0..-45.0),
            )
            .unwrap()
        })
        .collect()
}

fn bench_geo(c: &mut Criterion) {
    let pts = rand_points(10_000, 1);
    c.bench_function("geo/haversine_10k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for w in pts.windows(2) {
                acc += haversine_miles(&w[0], &w[1]);
            }
            black_box(acc)
        })
    });
    let proj = AlbersProjection::world();
    c.bench_function("geo/albers_project_10k", |b| {
        b.iter(|| {
            let planar: Vec<_> = pts.iter().map(|p| proj.project(p)).collect();
            black_box(planar)
        })
    });
    let planar: Vec<_> = pts.iter().map(|p| proj.project(p)).collect();
    c.bench_function("geo/convex_hull_10k", |b| {
        b.iter(|| convex_hull(black_box(&planar)))
    });
    c.bench_function("geo/box_counting_10k", |b| {
        b.iter(|| box_counting_dimension(&RegionSet::us(), black_box(&pts), &default_scales()))
    });
}

fn bench_bgp(c: &mut Criterion) {
    let mut trie = PrefixTrie::new();
    let mut rng = StdRng::seed_from_u64(2);
    for i in 0..50_000u32 {
        let bits: u32 = rng.random();
        let len = rng.random_range(8..=24);
        let p = Ipv4Prefix::containing(Ipv4Addr::from(bits), len).unwrap();
        trie.insert(p, AsId(i));
    }
    let probes: Vec<Ipv4Addr> = (0..10_000)
        .map(|_| Ipv4Addr::from(rng.random::<u32>()))
        .collect();
    c.bench_function("bgp/lpm_10k_lookups_50k_routes", |b| {
        b.iter(|| {
            let mut hits = 0;
            for &ip in &probes {
                if trie.lookup(ip).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    let xs: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 1.5 * x + 7.0).collect();
    c.bench_function("stats/fit_line_100k", |b| {
        b.iter(|| fit_line(black_box(&xs), black_box(&ys)).unwrap())
    });
    let zipf = Zipf::new(10_000, 1.2).unwrap();
    c.bench_function("stats/zipf_sample_10k", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc += zipf.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    let weights: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
    let alias = AliasTable::new(&weights).unwrap();
    c.bench_function("stats/alias_sample_10k", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc += alias.sample(&mut rng);
            }
            black_box(acc)
        })
    });
}

fn bench_population_and_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("population");
    g.sample_size(10);
    g.bench_function("synthesize_us", |b| {
        let cfg = SyntheticPopulation::developed(RegionSet::us(), 299e6);
        b.iter(|| cfg.generate(black_box(5)).unwrap())
    });
    g.finish();

    let pop = SyntheticPopulation::developed(RegionSet::us(), 299e6)
        .generate(5)
        .unwrap();
    let mut gaz = Gazetteer::builtin();
    gaz.extend_from_population(&pop, 8_000.0);
    let mut orgs = OrgDb::new();
    orgs.insert(AsId(1), "isp0001", GeoPoint::new(40.7, -74.0).unwrap());
    let ix = IxMapper::with_gazetteer(9, std::sync::Arc::new(orgs), std::sync::Arc::new(gaz));
    let ctx = MapContext::new(GeoPoint::new(40.0, -100.0).unwrap(), AsId(1));
    c.bench_function("geomap/ixmapper_map_1k", |b| {
        b.iter(|| {
            let mut located = 0;
            for i in 0..1_000u32 {
                if ix.map(Ipv4Addr::from(0x0A00_0000 + i), &ctx).is_some() {
                    located += 1;
                }
            }
            black_box(located)
        })
    });
}

criterion_group!(
    benches,
    bench_geo,
    bench_bgp,
    bench_stats,
    bench_population_and_mapping
);
criterion_main!(benches);
