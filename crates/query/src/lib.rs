//! Read-side query service over the pipeline's artifacts.
//!
//! The pipeline produces its artifacts for batch experiments; this crate
//! freezes them into a [`QuerySnapshot`] that answers the interactive
//! question the paper's tooling keeps needing: *for this address, where
//! does the tool place it, which city is that, who originates it, and
//! how specific was the route?*
//!
//! A snapshot is built once ([`QuerySnapshot::freeze`]) while the mapper
//! is still in scope — every per-address mapping outcome (which may
//! allocate: hostname synthesis builds strings) is resolved eagerly and
//! stored in a flat table sorted by address. After the freeze,
//! [`QuerySnapshot::lookup`] is allocation-free: a binary search over
//! the frozen records plus a longest-prefix walk of the shared route
//! table. That makes the snapshot safe to share across threads
//! (everything is immutable behind `Arc`s) and cheap enough to sit on a
//! hot serving path.
//!
//! Bulk resolution ([`QuerySnapshot::lookup_hitlist_with`]) splits the
//! hitlist into fixed-size chunks and hands the chunk jobs to a
//! caller-supplied executor, then re-merges results in input order. The
//! chunk size is a constant — never derived from the worker count — so
//! the merged output is byte-identical at any thread count.

use geotopo_bgp::{AsId, RouteTable};
use geotopo_geo::GeoPoint;
use geotopo_geomap::{Gazetteer, GeoMapper, MapContext};
use serde::Serialize;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Chunk size for bulk hitlist resolution. A constant (not a function of
/// the worker count) so chunk boundaries — and therefore every chunk's
/// output — are identical no matter how the chunks are scheduled.
pub const HITLIST_CHUNK: usize = 256;

/// One frozen per-address mapping record: the tool's outcome for this
/// address, resolved at freeze time.
#[derive(Debug, Clone, Copy)]
struct AddressRecord {
    /// Address bits (the sort key).
    ip: u32,
    /// The tool's estimated coordinates, if it resolved the address.
    location: Option<GeoPoint>,
    /// Gazetteer index of the city nearest the estimate.
    city: Option<u32>,
    /// Distance from the estimate to that city, in miles.
    city_miles: f64,
    /// Which source in the tool's fallback chain answered.
    source: &'static str,
    /// Whether the tool fell back past the head of its chain.
    fallback: bool,
}

/// One query answer: location estimate, nearest gazetteer city, BGP
/// origin, and full provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QueryAnswer {
    /// The queried address (as raw bits, so answers serialize compactly
    /// and deterministically).
    pub ip: u32,
    /// Whether the address was part of the frozen world (an interface
    /// the pipeline mapped). Unknown addresses still get a BGP origin
    /// but carry no mapping outcome.
    pub known: bool,
    /// The mapping tool's estimated coordinates.
    pub location: Option<GeoPoint>,
    /// Gazetteer index of the city nearest the estimate (resolve with
    /// [`QuerySnapshot::city`]).
    pub city: Option<u32>,
    /// Distance from the estimate to that city, in miles (0 when there
    /// is no city).
    pub city_miles: f64,
    /// Originating AS per the route table ([`AsId::UNMAPPED`] when no
    /// prefix covers the address).
    pub origin: AsId,
    /// Length of the longest matching prefix, when one exists.
    pub matched_len: Option<u8>,
    /// Which source in the tool's fallback chain answered (`"none"` for
    /// unknown or unresolved addresses).
    pub source: &'static str,
    /// Whether the tool fell back past the head of its chain.
    pub fallback: bool,
}

/// Aggregate counts over a snapshot's frozen records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
// analyze: allow(dead-pub): return type of the pub stats() used cross-crate; callers read fields without naming the type
pub struct QueryStats {
    /// Total frozen addresses.
    pub addresses: usize,
    /// Addresses the tool resolved to coordinates.
    pub resolved: usize,
    /// Resolved addresses that needed a fallback source.
    pub fallbacks: usize,
}

/// An immutable, thread-safe view of one (mapper, route table,
/// gazetteer) artifact triple, frozen for serving.
pub struct QuerySnapshot {
    /// Per-address outcomes, sorted by `ip` for binary search.
    records: Vec<AddressRecord>,
    /// Tool name the records were frozen from ("IxMapper"/"EdgeScape").
    mapper: &'static str,
    table: Arc<RouteTable>,
    gazetteer: Arc<Gazetteer>,
}

impl std::fmt::Debug for QuerySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySnapshot")
            .field("mapper", &self.mapper)
            .field("records", &self.records.len())
            .field("routes", &self.table.len())
            .field("cities", &self.gazetteer.len())
            .finish()
    }
}

impl QuerySnapshot {
    /// Freezes one snapshot: maps every address through `mapper` (the
    /// only step that may allocate), resolves each estimate to its
    /// nearest gazetteer city, and stores the outcomes sorted by
    /// address. Duplicate addresses keep their first occurrence.
    pub fn freeze(
        addresses: impl IntoIterator<Item = (Ipv4Addr, MapContext)>,
        mapper: &dyn GeoMapper,
        table: Arc<RouteTable>,
        gazetteer: Arc<Gazetteer>,
    ) -> Self {
        // Freeze-time memo for the nearest-city search: estimates are
        // overwhelmingly city centres (hostname and feed answers), so
        // keying on the estimate's exact coordinate bits collapses the
        // dominant per-address cost to one search per distinct estimate
        // — bit-identical to searching every time, because only exact
        // key matches are served from the memo.
        let mut near_memo: std::collections::HashMap<(u64, u64), Option<(u32, f64)>> =
            std::collections::HashMap::new();
        let mut records: Vec<AddressRecord> = addresses
            .into_iter()
            .map(|(ip, ctx)| {
                let outcome = mapper.map_resolved(ip, &ctx);
                let near = outcome.location.as_ref().and_then(|loc| {
                    *near_memo
                        .entry((loc.lat().to_bits(), loc.lon().to_bits()))
                        .or_insert_with(|| gazetteer.nearest_idx(loc))
                });
                AddressRecord {
                    ip: u32::from(ip),
                    location: outcome.location,
                    city: near.map(|(i, _)| i),
                    city_miles: near.map_or(0.0, |(_, d)| d),
                    source: outcome.source,
                    fallback: outcome.fallback,
                }
            })
            .collect();
        records.sort_by_key(|r| r.ip);
        records.dedup_by_key(|r| r.ip);
        QuerySnapshot {
            records,
            mapper: mapper.name(),
            table,
            gazetteer,
        }
    }

    /// Answers one address. Allocation-free: a binary search over the
    /// frozen records plus a longest-prefix walk of the route table.
    // analyze: hot-path-root
    pub fn lookup(&self, ip: Ipv4Addr) -> QueryAnswer {
        let bits = u32::from(ip);
        let (origin, matched_len) = match self.table.origin_with_len(ip) {
            Some((asn, len)) => (asn, Some(len)),
            None => (AsId::UNMAPPED, None),
        };
        match self.records.binary_search_by_key(&bits, |r| r.ip) {
            Ok(i) => {
                let r = &self.records[i];
                QueryAnswer {
                    ip: bits,
                    known: true,
                    location: r.location,
                    city: r.city,
                    city_miles: r.city_miles,
                    origin,
                    matched_len,
                    source: r.source,
                    fallback: r.fallback,
                }
            }
            Err(_) => QueryAnswer {
                ip: bits,
                known: false,
                location: None,
                city: None,
                city_miles: 0.0,
                origin,
                matched_len,
                source: "none",
                fallback: false,
            },
        }
    }

    /// Resolves a batch sequentially, in input order.
    pub fn lookup_batch(&self, addrs: &[Ipv4Addr]) -> Vec<QueryAnswer> {
        addrs.iter().map(|&ip| self.lookup(ip)).collect()
    }

    /// Resolves a hitlist through a caller-supplied chunk executor and
    /// merges the chunk outputs back in input order.
    ///
    /// The executor receives the chunk count and a job closure; it must
    /// return one output per chunk index, in index order (the engine's
    /// `parallel_map` contract). Because chunk boundaries come from the
    /// fixed [`HITLIST_CHUNK`] and the merge is a flatten in index
    /// order, the result is byte-identical at any thread count.
    pub fn lookup_hitlist_with<E>(&self, addrs: &[Ipv4Addr], exec: E) -> Vec<QueryAnswer>
    where
        E: FnOnce(
            usize,
            &(dyn Fn(usize) -> Vec<QueryAnswer> + Send + Sync),
        ) -> Vec<Vec<QueryAnswer>>,
    {
        if addrs.is_empty() {
            return Vec::new();
        }
        let n_chunks = addrs.len().div_ceil(HITLIST_CHUNK);
        let job = move |c: usize| {
            let lo = c * HITLIST_CHUNK;
            let hi = usize::min(lo + HITLIST_CHUNK, addrs.len());
            self.lookup_batch(&addrs[lo..hi])
        };
        let chunks = exec(n_chunks, &job);
        debug_assert_eq!(chunks.len(), n_chunks, "executor dropped chunks");
        let mut out = Vec::with_capacity(addrs.len());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }

    /// The tool the records were frozen from.
    pub fn mapper(&self) -> &'static str {
        self.mapper
    }

    /// The gazetteer city behind an answer's `city` index.
    pub fn city(&self, answer: &QueryAnswer) -> Option<&geotopo_geomap::City> {
        answer
            .city
            .and_then(|i| self.gazetteer.cities().get(i as usize))
    }

    /// Number of frozen addresses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate resident size of the frozen record table (the shared
    /// route table and gazetteer are counted by their own stages).
    pub fn mem_bytes(&self) -> usize {
        self.records.len() * std::mem::size_of::<AddressRecord>()
    }

    /// Aggregate counts over the frozen records.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            addresses: self.records.len(),
            resolved: self.records.iter().filter(|r| r.location.is_some()).count(),
            fallbacks: self
                .records
                .iter()
                .filter(|r| r.location.is_some() && r.fallback)
                .count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_bgp::alloc::{AsAllocation, PrefixAllocator};
    use geotopo_bgp::{RouteTable, RouteTableConfig};
    use geotopo_geo::haversine_miles;

    /// A deterministic stub tool: resolves even host octets to the true
    /// location, drops odd ones.
    struct EvenMapper;

    impl GeoMapper for EvenMapper {
        fn name(&self) -> &'static str {
            "EvenMapper"
        }

        fn map(&self, ip: Ipv4Addr, ctx: &MapContext) -> Option<GeoPoint> {
            (u32::from(ip) % 2 == 0).then_some(ctx.true_location)
        }
    }

    fn test_world() -> (Vec<(Ipv4Addr, MapContext)>, Arc<RouteTable>, Arc<Gazetteer>) {
        let mut a = PrefixAllocator::new();
        let allocs: Vec<AsAllocation> = (1..=3)
            .map(|i| AsAllocation::for_as(&mut a, AsId(i), 500).expect("alloc"))
            .collect();
        let table = RouteTable::synthesize(
            &allocs,
            &RouteTableConfig {
                coverage: 1.0,
                more_specific_prob: 0.2,
                seed: 11,
            },
        );
        let gazetteer = Arc::new(Gazetteer::builtin());
        let cities = gazetteer.cities();
        let addrs: Vec<(Ipv4Addr, MapContext)> = allocs
            .iter()
            .enumerate()
            .flat_map(|(i, al)| {
                let asn = al.asn;
                let home = cities[i % cities.len()].location;
                al.prefixes
                    .iter()
                    .filter_map(move |p| p.nth(1))
                    .map(move |ip| (ip, MapContext::new(home, asn)))
            })
            .collect();
        (addrs, Arc::new(table), gazetteer)
    }

    #[test]
    fn lookup_reports_mapping_origin_and_city() {
        let (addrs, table, gazetteer) = test_world();
        let snap =
            QuerySnapshot::freeze(addrs.clone(), &EvenMapper, table.clone(), gazetteer.clone());
        assert_eq!(snap.mapper(), "EvenMapper");
        assert_eq!(snap.len(), addrs.len());
        assert!(snap.mem_bytes() > 0);
        for (ip, ctx) in &addrs {
            let ans = snap.lookup(*ip);
            assert!(ans.known);
            assert_eq!(ans.origin, table.origin(*ip));
            assert_eq!(ans.origin, ctx.asn, "synthesized table covers every prefix");
            assert!(ans.matched_len.is_some());
            if u32::from(*ip) % 2 == 0 {
                let loc = ans.location.expect("even hosts resolve");
                // lint: allow(float_eq): frozen copy of the exact same value
                #[allow(clippy::float_cmp)]
                {
                    assert!(loc.lat() == ctx.true_location.lat());
                }
                let city = snap.city(&ans).expect("estimate has a nearest city");
                let d = haversine_miles(&loc, &city.location);
                assert!((d - ans.city_miles).abs() < 1e-9);
            } else {
                assert_eq!(ans.location, None);
                assert_eq!(ans.city, None);
                assert_eq!(ans.source, "none");
            }
        }
    }

    #[test]
    fn unknown_addresses_still_get_an_origin() {
        let (addrs, table, gazetteer) = test_world();
        let snap = QuerySnapshot::freeze(addrs, &EvenMapper, table.clone(), gazetteer);
        let stranger = Ipv4Addr::new(203, 0, 113, 77);
        let ans = snap.lookup(stranger);
        assert!(!ans.known);
        assert_eq!(ans.location, None);
        assert_eq!(ans.origin, table.origin(stranger));
        assert_eq!(ans.source, "none");
    }

    #[test]
    fn stats_count_resolutions_and_fallbacks() {
        let (addrs, table, gazetteer) = test_world();
        let snap = QuerySnapshot::freeze(addrs.clone(), &EvenMapper, table, gazetteer);
        let stats = snap.stats();
        assert_eq!(stats.addresses, addrs.len());
        let evens = addrs
            .iter()
            .filter(|(ip, _)| u32::from(*ip) % 2 == 0)
            .count();
        assert_eq!(stats.resolved, evens);
        assert_eq!(
            stats.fallbacks, 0,
            "the default map_resolved never falls back"
        );
    }

    #[test]
    fn duplicate_addresses_freeze_once() {
        let (mut addrs, table, gazetteer) = test_world();
        let n = addrs.len();
        let dup = addrs[0];
        addrs.push(dup);
        let snap = QuerySnapshot::freeze(addrs, &EvenMapper, table, gazetteer);
        assert_eq!(snap.len(), n);
    }

    #[test]
    fn hitlist_merge_preserves_input_order_across_executors() {
        let (addrs, table, gazetteer) = test_world();
        let snap = QuerySnapshot::freeze(addrs.clone(), &EvenMapper, table, gazetteer);
        // A hitlist longer than one chunk, deliberately unsorted.
        let mut hitlist: Vec<Ipv4Addr> = addrs
            .iter()
            .map(|(ip, _)| *ip)
            .cycle()
            .take(3 * HITLIST_CHUNK + 17)
            .collect();
        hitlist.reverse();

        let sequential = snap.lookup_batch(&hitlist);
        // In-order executor (what a single-threaded run does).
        let merged = snap.lookup_hitlist_with(&hitlist, |n, job| (0..n).map(job).collect());
        assert_eq!(merged, sequential);
        // Reversed completion order: the merge must still be in input
        // order because slots are indexed, not appended.
        let scrambled = snap.lookup_hitlist_with(&hitlist, |n, job| {
            let mut slots: Vec<Option<Vec<QueryAnswer>>> = (0..n).map(|_| None).collect();
            for c in (0..n).rev() {
                slots[c] = Some(job(c));
            }
            slots.into_iter().map(|s| s.expect("filled")).collect()
        });
        assert_eq!(scrambled, sequential);
        assert_eq!(
            snap.lookup_hitlist_with(&[], |n, job| (0..n).map(job).collect()),
            vec![]
        );
    }
}
