//! Property-based tests for statistical invariants.

use geotopo_stats::{ccdf_points, fit_line, pearson, spearman, BinnedRatio, Ecdf, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ecdf_is_monotone(sample in prop::collection::vec(-1e6f64..1e6, 1..200), probe in -1e6f64..1e6) {
        let e = Ecdf::new(sample);
        let a = e.cdf(probe);
        let b = e.cdf(probe + 1.0);
        prop_assert!(a <= b);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((e.cdf(f64::MAX) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_ccdf_complement(sample in prop::collection::vec(0f64..1e3, 1..100), x in 0f64..1e3) {
        let e = Ecdf::new(sample);
        prop_assert!((e.cdf(x) + e.ccdf(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf(sample in prop::collection::vec(0f64..1e3, 1..100), q in 0.01f64..1.0) {
        let e = Ecdf::new(sample);
        let v = e.quantile(q).unwrap();
        // At least a q-fraction of the sample is <= v.
        prop_assert!(e.cdf(v) + 1e-12 >= q);
    }

    #[test]
    fn ccdf_points_are_valid_probabilities(sample in prop::collection::vec(1f64..1e6, 1..150)) {
        for (_, p) in ccdf_points(&sample) {
            prop_assert!(p > 0.0 && p < 1.0 + 1e-12);
        }
    }

    #[test]
    fn fit_recovers_any_line(slope in -100f64..100.0, intercept in -1e3f64..1e3) {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
    }

    #[test]
    fn pearson_in_unit_interval(
        xs in prop::collection::vec(-1e3f64..1e3, 3..50),
        noise in prop::collection::vec(-1e3f64..1e3, 3..50)
    ) {
        let n = xs.len().min(noise.len());
        if let Some(r) = pearson(&xs[..n], &noise[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        }
    }

    #[test]
    fn spearman_invariant_to_monotone_transform(
        xs in prop::collection::vec(-50f64..50.0, 5..40),
        ys in prop::collection::vec(-50f64..50.0, 5..40)
    ) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let s1 = spearman(xs, ys);
        // exp() is strictly monotone, so ranks are unchanged.
        let ys_t: Vec<f64> = ys.iter().map(|y| y.exp()).collect();
        let s2 = spearman(xs, &ys_t);
        match (s1, s2) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (None, None) => {}
            other => prop_assert!(false, "mismatch {other:?}"),
        }
    }

    #[test]
    fn summary_bounds(sample in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::of(&sample).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn binned_ratio_values_bounded_by_counts(
        events in prop::collection::vec((0f64..100.0, 1u64..50, 0u64..50), 1..50)
    ) {
        let mut br = BinnedRatio::new(10.0, 10);
        for (d, den, num) in events {
            // Never more links than pairs in a bin.
            let num = num.min(den);
            br.add_den_n(d, den);
            br.add_num_n(d, num);
        }
        for bin in br.ratios() {
            if let Some(v) = bin.value {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        let c = br.cumulated();
        for w in c.points.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }
}
