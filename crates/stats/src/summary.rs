//! Scalar summary statistics.

use serde::{Deserialize, Serialize};

/// Summary statistics over a finite sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of (finite) observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (lower of the two middle values for even n).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics; non-finite values are ignored.
    /// Returns `None` for an effectively empty sample.
    pub fn of(sample: &[f64]) -> Option<Summary> {
        let mut vals: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = vals.len();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: vals[0],
            median: vals[(n - 1) / 2],
            max: vals[n - 1],
        })
    }
}

/// Mean of a sample, ignoring non-finite values. `None` if empty.
pub fn mean(sample: &[f64]) -> Option<f64> {
    let vals: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact expected values; bitwise float equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[f64::NAN]).is_none());
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn nonfinite_ignored() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn even_length_median_is_lower_middle() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }
}
