//! Empirical distributions: CDFs, complementary CDFs, histograms.
//!
//! Figure 7 plots log-log complementary distributions (`P[X > x]`) of AS
//! size measures; Figure 9 plots CDFs (`P[X ≤ x]`) of AS convex-hull areas.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over a sample.
///
/// Construction sorts the sample once; queries are `O(log n)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. Non-finite values are dropped.
    pub fn new(mut sample: Vec<f64>) -> Self {
        sample.retain(|v| v.is_finite());
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Ecdf { sorted: sample }
    }

    /// Number of (finite) sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P[X ≤ x]`. Returns 0 for an empty sample.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `P[X > x]`.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Empirical quantile for `q ∈ [0, 1]` (inverse CDF, lower
    /// interpolation). Returns `None` on an empty sample or out-of-range q.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[idx - 1])
    }

    /// The full series of `(x, P[X ≤ x])` steps, one per distinct value —
    /// the data behind a CDF plot like Figure 9.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let v = self.sorted[i];
            let j = self.sorted.partition_point(|&w| w <= v);
            out.push((v, j as f64 / n));
            i = j;
        }
        out
    }

    /// Minimum sample value.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample value.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

/// Complementary CDF points `(x, P[X > x])` for a positive-valued sample,
/// one point per distinct value, suitable for the log-log CCDF plots of
/// Figure 7. The final point (largest value, probability 0) is omitted so
/// every returned probability is positive and log-plottable.
pub fn ccdf_points(sample: &[f64]) -> Vec<(f64, f64)> {
    let mut vals: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = vals.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < vals.len() {
        let v = vals[i];
        let j = vals.partition_point(|&w| w <= v);
        let p_gt = (vals.len() - j) as f64 / n;
        if p_gt > 0.0 {
            out.push((v, p_gt));
        }
        i = j;
    }
    out
}

/// A fixed-width histogram over `[0, max)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    /// Number of observations that fell at or beyond `max`.
    pub overflow: u64,
    /// Number of negative or non-finite observations rejected.
    pub rejected: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width` covering
    /// `[0, bins · bin_width)`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not positive/finite or `bins` is zero —
    /// these are programming errors, not data errors.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width.is_finite() && bin_width > 0.0, "bad bin width");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            rejected: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.add_n(value, 1);
    }

    /// Adds `n` identical observations (used by the grid-convolution
    /// pair-count estimator where a cell pair contributes `n1·n2` pairs).
    pub fn add_n(&mut self, value: f64, n: u64) {
        if !value.is_finite() || value < 0.0 {
            self.rejected += n;
            return;
        }
        let idx = (value / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += n;
        } else {
            self.overflow += n;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Midpoint of bin `i`.
    pub fn bin_mid(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * self.bin_width
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        i as f64 * self.bin_width
    }

    /// Total in-range count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact expected values; bitwise float equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn ecdf_basic() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.ccdf(2.0), 0.5);
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.cdf(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.min(), None);
    }

    #[test]
    fn ecdf_drops_nonfinite() {
        let e = Ecdf::new(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.5), Some(50.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(100.0));
        assert_eq!(e.quantile(1.5), None);
    }

    #[test]
    fn ecdf_with_ties() {
        let e = Ecdf::new(vec![5.0, 5.0, 5.0, 10.0]);
        assert_eq!(e.cdf(5.0), 0.75);
        let pts = e.cdf_points();
        assert_eq!(pts, vec![(5.0, 0.75), (10.0, 1.0)]);
    }

    #[test]
    fn cdf_points_monotone() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0, 8.0]);
        let pts = e.cdf_points();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn ccdf_points_positive_and_decreasing() {
        let sample: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let pts = ccdf_points(&sample);
        assert_eq!(pts.len(), 999); // largest value omitted (P=0)
        for w in pts.windows(2) {
            assert!(w[0].1 > w[1].1);
        }
        assert!((pts[0].1 - 0.999).abs() < 1e-12);
    }

    #[test]
    fn ccdf_points_with_ties() {
        let pts = ccdf_points(&[1.0, 1.0, 2.0]);
        assert_eq!(pts, vec![(1.0, 1.0 / 3.0)]);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(10.0, 5);
        h.add(0.0);
        h.add(9.999);
        h.add(10.0);
        h.add(49.999);
        h.add(50.0);
        h.add(-1.0);
        h.add(f64::NAN);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.rejected, 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_add_n() {
        let mut h = Histogram::new(1.0, 3);
        h.add_n(1.5, 100);
        assert_eq!(h.counts(), &[0, 100, 0]);
    }

    #[test]
    fn histogram_bin_geometry() {
        let h = Histogram::new(35.0, 100);
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_mid(0), 17.5);
        assert_eq!(h.bin_lo(99), 99.0 * 35.0);
    }

    #[test]
    #[should_panic(expected = "bad bin width")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(0.0, 10);
    }
}
