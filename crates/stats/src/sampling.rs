//! Random samplers for the synthetic substrates.
//!
//! The ground-truth Internet generator needs heavy-tailed building blocks:
//! Zipf-ranked city and AS sizes (the long-tail AS size distributions of
//! Figure 7), exponential link-length preference (the Waxman form of
//! Figure 5), Poisson router counts per patch, and weighted discrete
//! sampling (placing routers proportional to population). All samplers
//! take a caller-provided `Rng`, so every simulation is seedable and
//! reproducible.

use rand::Rng;

/// Bounded Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P[k] ∝ k^(−s)`. Sampling is `O(log n)` via binary search on a
/// precomputed cumulative table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a bounded Zipf sampler.
    ///
    /// # Errors
    ///
    /// Returns `None` if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Option<Self> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return None;
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Some(Zipf { cumulative })
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cumulative.partition_point(|&c| c < u) + 1
    }

    /// Probability of rank `k` (1-based). Zero outside `1..=n`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cumulative.len() {
            return 0.0;
        }
        if k == 1 {
            self.cumulative[0]
        } else {
            self.cumulative[k - 1] - self.cumulative[k - 2]
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }
}

/// Pareto (power-law tail) distribution with scale `xm > 0` and shape
/// `alpha > 0`: `P[X > x] = (xm/x)^alpha` for `x ≥ xm`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto sampler; `None` on invalid parameters.
    pub fn new(xm: f64, alpha: f64) -> Option<Self> {
        if xm <= 0.0 || alpha <= 0.0 || !xm.is_finite() || !alpha.is_finite() {
            return None;
        }
        Some(Pareto { xm, alpha })
    }

    /// Draws a value ≥ xm by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1-U in (0,1] avoids division by zero.
        let u: f64 = 1.0 - rng.random::<f64>();
        self.xm / u.powf(1.0 / self.alpha)
    }
}

/// Exponential distribution with rate `λ > 0` (mean `1/λ`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential sampler; `None` if `rate` is not positive.
    pub fn new(rate: f64) -> Option<Self> {
        if rate <= 0.0 || !rate.is_finite() {
            return None;
        }
        Some(Exponential { rate })
    }

    /// Draws a value by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln() / self.rate
    }
}

/// Poisson distribution. Uses Knuth's product method for small means and
/// a rounded-normal approximation for large means (fine for the count
/// fields the generators need).
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson sampler; `None` if `lambda` is negative/non-finite.
    pub fn new(lambda: f64) -> Option<Self> {
        if lambda < 0.0 || !lambda.is_finite() {
            return None;
        }
        Some(Poisson { lambda })
    }

    /// Draws a count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // lint: allow(float_eq): a zero rate draws exactly zero
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until below e^{-λ}.
            let limit = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.random::<f64>();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation N(λ, λ), rounded, clamped at zero.
            let (u1, u2): (f64, f64) = (rng.random(), rng.random());
            let z = (-2.0 * (1.0 - u1).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = self.lambda + self.lambda.sqrt() * z;
            v.max(0.0).round() as u64
        }
    }
}

/// Walker alias table for O(1) weighted discrete sampling.
///
/// Given non-negative weights `w_i`, draws index `i` with probability
/// `w_i / Σw`. Used to place routers proportional to patch population.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table. Returns `None` if `weights` is empty, any
    /// weight is negative/non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            total += w;
        }
        if total <= 0.0 {
            return None;
        }
        let scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = work[s];
            alias[s] = l;
            work[l] = (work[l] + work[s]) - 1.0;
            if work[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Some(AliasTable { prob, alias })
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact expected values; bitwise float equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn zipf_rank_one_most_likely() {
        let z = Zipf::new(100, 1.0).unwrap();
        let mut rng = rng();
        let mut counts = vec![0u64; 101];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        // Rank 1 should get ~1/H_100 ≈ 19.3% of the mass at s=1.
        let frac = counts[1] as f64 / 50_000.0;
        assert!((frac - 0.193).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.5).unwrap();
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(51), 0.0);
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        for k in 1..=10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_invalid_params() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(10, -1.0).is_none());
        assert!(Zipf::new(10, f64::NAN).is_none());
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let p = Pareto::new(2.0, 1.5).unwrap();
        let mut rng = rng();
        let mut above_4 = 0;
        let n = 100_000;
        for _ in 0..n {
            let v = p.sample(&mut rng);
            assert!(v >= 2.0);
            if v > 4.0 {
                above_4 += 1;
            }
        }
        // P[X > 4] = (2/4)^1.5 ≈ 0.3536
        let frac = above_4 as f64 / n as f64;
        assert!((frac - 0.3536).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn exponential_mean() {
        let e = Exponential::new(0.5).unwrap();
        let mut rng = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_small_lambda_mean_and_variance() {
        let p = Poisson::new(3.0).unwrap();
        let mut rng = rng();
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| p.sample(&mut rng) as f64).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 3.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let p = Poisson::new(400.0).unwrap();
        let mut rng = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 400.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let p = Poisson::new(0.0).unwrap();
        let mut rng = rng();
        assert_eq!(p.sample(&mut rng), 0);
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = rng();
        let mut counts = [0u64; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let want = w / 10.0;
            let got = counts[i] as f64 / n as f64;
            assert!((got - want).abs() < 0.01, "i={i} got {got} want {want}");
        }
    }

    #[test]
    fn alias_table_zero_weight_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = rng();
        for _ in 0..10_000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_table_invalid() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[-1.0, 2.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let z = Zipf::new(1000, 1.2).unwrap();
        let a: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
