//! Least-squares line fitting.
//!
//! The paper's figures annotate fitted lines of three kinds:
//!
//! - Figure 2: `log10(count)` vs `log10(population)` — a log-log fit whose
//!   slope is the superlinearity exponent α (1.2–1.75 in the paper).
//! - Figure 5: `ln(f(d))` vs `d` — a semi-log fit whose slope is the
//!   exponential decay rate of the Waxman form `β exp(−d/(αL))`.
//! - Figure 6: `F(d)` vs `d` — a plain linear fit testing
//!   distance-independence of the large-`d` regime.

use serde::{Deserialize, Serialize};

/// Result of an ordinary least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
    /// Standard error of the slope estimate.
    pub slope_stderr: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Formats the fit like the paper's figure annotations, e.g.
    /// `y = 1.20x-4.82`.
    pub fn equation(&self) -> String {
        if self.intercept < 0.0 {
            format!("y = {:.3}x{:.3}", self.slope, self.intercept)
        } else {
            format!("y = {:.3}x+{:.3}", self.slope, self.intercept)
        }
    }
}

/// Error from a regression routine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two usable points.
    TooFewPoints,
    /// All x-values identical (vertical line).
    DegenerateX,
    /// Input lengths differ.
    LengthMismatch,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewPoints => write!(f, "need at least 2 points to fit a line"),
            FitError::DegenerateX => write!(f, "all x values identical"),
            FitError::LengthMismatch => write!(f, "x and y slices have different lengths"),
        }
    }
}

impl std::error::Error for FitError {}

/// Ordinary least-squares fit of `y` on `x`.
///
/// Non-finite pairs are skipped (log transforms upstream may produce
/// `-inf` for zero counts; the paper's plots likewise drop empty patches).
///
/// # Errors
///
/// [`FitError::LengthMismatch`] if slices differ in length,
/// [`FitError::TooFewPoints`] if fewer than two finite pairs remain,
/// [`FitError::DegenerateX`] if all x are equal.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Result<LinearFit, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    let pairs: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .collect();
    let n = pairs.len();
    if n < 2 {
        return Err(FitError::TooFewPoints);
    }
    let nf = n as f64;
    let mean_x = pairs.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = pairs.iter().map(|p| p.1).sum::<f64>() / nf;
    let sxx: f64 = pairs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    // lint: allow(float_eq): exact-zero degeneracy guard before division
    if sxx == 0.0 {
        return Err(FitError::DegenerateX);
    }
    let sxy: f64 = pairs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let syy: f64 = pairs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_res: f64 = pairs
        .iter()
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r2 = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy }; // lint: allow(float_eq): exact-zero guard before division
    let slope_stderr = if n > 2 {
        (ss_res / (nf - 2.0) / sxx).sqrt()
    } else {
        0.0
    };
    Ok(LinearFit {
        slope,
        intercept,
        r2,
        slope_stderr,
        n,
    })
}

/// Log-log fit: regresses `log10(y)` on `log10(x)`, skipping non-positive
/// values. The slope is the power-law exponent (Figure 2's α).
pub fn fit_loglog(xs: &[f64], ys: &[f64]) -> Result<LinearFit, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    let (lx, ly): (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.log10(), y.log10()))
        .unzip();
    fit_line(&lx, &ly)
}

/// Semi-log fit: regresses `ln(y)` on `x`, skipping non-positive `y`.
/// A linear result on these axes means `y = exp(intercept)·exp(slope·x)`
/// (Figure 5's exponential distance decay).
pub fn fit_semilog(xs: &[f64], ys: &[f64]) -> Result<LinearFit, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    let (fx, fy): (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x.is_finite() && y > 0.0)
        .map(|(&x, &y)| (x, y.ln()))
        .unzip();
    fit_line(&fx, &fy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x - 2.0).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!((fit.slope - 3.5).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-10);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!(fit.slope_stderr < 1e-10);
    }

    #[test]
    fn noisy_line_reasonable() {
        // Deterministic pseudo-noise.
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + 1.0 + ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.02, "slope {}", fit.slope);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn too_few_points() {
        assert_eq!(
            fit_line(&[1.0], &[2.0]).unwrap_err(),
            FitError::TooFewPoints
        );
        assert_eq!(fit_line(&[], &[]).unwrap_err(), FitError::TooFewPoints);
    }

    #[test]
    fn degenerate_x_detected() {
        assert_eq!(
            fit_line(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).unwrap_err(),
            FitError::DegenerateX
        );
    }

    #[test]
    fn length_mismatch_detected() {
        assert_eq!(
            fit_line(&[1.0, 2.0], &[1.0]).unwrap_err(),
            FitError::LengthMismatch
        );
    }

    #[test]
    fn nonfinite_pairs_skipped() {
        let xs = [1.0, 2.0, f64::NAN, 3.0];
        let ys = [2.0, 4.0, 100.0, 6.0];
        let fit = fit_line(&xs, &ys).unwrap();
        assert_eq!(fit.n, 3);
        assert!((fit.slope - 2.0).abs() < 1e-12);
    }

    #[test]
    fn loglog_recovers_power_law() {
        // y = 5 x^1.6
        let xs: Vec<f64> = (1..100).map(|i| i as f64 * 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x.powf(1.6)).collect();
        let fit = fit_loglog(&xs, &ys).unwrap();
        assert!((fit.slope - 1.6).abs() < 1e-9, "slope {}", fit.slope);
        assert!((fit.intercept - 5f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn loglog_skips_zeros() {
        let xs = [0.0, 10.0, 100.0, 1000.0];
        let ys = [5.0, 10.0, 100.0, 1000.0];
        let fit = fit_loglog(&xs, &ys).unwrap();
        assert_eq!(fit.n, 3);
        assert!((fit.slope - 1.0).abs() < 1e-9);
    }

    #[test]
    fn semilog_recovers_exponential_decay() {
        // f(d) = 0.006 exp(-0.0069 d) — the paper's US Mercator fit shape.
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 2.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.006 * (-0.0069 * x).exp()).collect();
        let fit = fit_semilog(&xs, &ys).unwrap();
        assert!((fit.slope + 0.0069).abs() < 1e-9, "slope {}", fit.slope);
        assert!((fit.intercept - 0.006f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn equation_formatting_matches_paper_style() {
        let fit = LinearFit {
            slope: 1.2,
            intercept: -4.82,
            r2: 0.9,
            slope_stderr: 0.01,
            n: 100,
        };
        assert_eq!(fit.equation(), "y = 1.200x-4.820");
    }

    #[test]
    fn predict_evaluates_line() {
        let fit = fit_line(&[0.0, 1.0], &[1.0, 3.0]).unwrap();
        assert!((fit.predict(2.0) - 5.0).abs() < 1e-12);
    }
}
