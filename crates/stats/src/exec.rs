//! Interior-parallelism seam: a minimal chunk-execution trait.
//!
//! Stage interiors that want data parallelism express their work as
//! `n` independent index jobs and hand them to a [`ChunkExec`]. The
//! contract mirrors `engine::parallel_map` (which implements it in
//! `geotopo-core`): results come back **in index order**, so a caller
//! that merges them with a left fold gets bytes identical to running
//! the jobs serially — regardless of how many worker threads the
//! executor actually used. Chunk *boundaries* are the caller's
//! responsibility and must be derived from fixed constants (never from
//! the thread count), which is what keeps outputs and telemetry
//! byte-identical across `{1, N}` threads.
//!
//! The trait lives in `geotopo-stats` — the lowest crate both
//! `geotopo-topology` and `geotopo-measure` already depend on — so
//! generator and collector interiors can take `&impl ChunkExec`
//! without a dependency on the engine.

/// Executes `n` independent index jobs and returns their results in
/// index order.
///
/// Implementations may run jobs concurrently and in any schedule, but
/// the returned `Vec` must satisfy `out[i] == job(i)`; callers rely on
/// that ordering for deterministic merges.
pub trait ChunkExec: Sync {
    /// Run `job(0..n)` and collect the results in index order.
    fn dispatch<T: Send>(&self, n: usize, job: &(dyn Fn(usize) -> T + Sync)) -> Vec<T>;
}

/// The trivial executor: runs every job on the calling thread, in
/// order. This is both the fallback for single-threaded configurations
/// and the reference implementation parallel executors must match
/// byte-for-byte.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExec;

impl ChunkExec for SerialExec {
    fn dispatch<T: Send>(&self, n: usize, job: &(dyn Fn(usize) -> T + Sync)) -> Vec<T> {
        (0..n).map(job).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_exec_runs_in_index_order() {
        let out = SerialExec.dispatch(5, &|i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn serial_exec_handles_zero_jobs() {
        let out: Vec<u8> = SerialExec.dispatch(0, &|_| 0);
        assert!(out.is_empty());
    }
}
