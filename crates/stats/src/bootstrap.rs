//! Bootstrap confidence intervals for regression slopes.
//!
//! The paper annotates fitted slopes (Figure 2's α, Figure 5's decay)
//! without error bars; reproducing responsibly means knowing how tight
//! those estimates are. Pair-resampling bootstrap gives percentile
//! intervals without distributional assumptions.

use crate::regression::{fit_line, LinearFit};
use rand::Rng;

/// A bootstrap percentile confidence interval for a fitted slope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlopeCi {
    /// Point estimate (fit on the full sample).
    pub slope: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Resamples that produced a valid fit.
    pub resamples: usize,
}

/// Pair-resampling bootstrap CI for the slope of `y ~ x`.
///
/// `level` is the two-sided confidence level (e.g. 0.95). Returns `None`
/// if the full-sample fit fails or fewer than 10 resamples fit.
pub fn bootstrap_slope_ci<R: Rng + ?Sized>(
    xs: &[f64],
    ys: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> Option<SlopeCi> {
    let full: LinearFit = fit_line(xs, ys).ok()?;
    let n = xs.len().min(ys.len());
    if n < 3 || !(0.0..1.0).contains(&level) {
        return None;
    }
    let mut slopes = Vec::with_capacity(resamples);
    let mut bx = vec![0.0; n];
    let mut by = vec![0.0; n];
    for _ in 0..resamples {
        for i in 0..n {
            let k = rng.random_range(0..n);
            bx[i] = xs[k];
            by[i] = ys[k];
        }
        if let Ok(fit) = fit_line(&bx, &by) {
            slopes.push(fit.slope);
        }
    }
    if slopes.len() < 10 {
        return None;
    }
    slopes.sort_by(|a, b| a.partial_cmp(b).expect("finite slopes"));
    let tail = (1.0 - level) / 2.0;
    let lo_idx = ((slopes.len() as f64) * tail).floor() as usize;
    let hi_idx = (((slopes.len() as f64) * (1.0 - tail)).ceil() as usize)
        .min(slopes.len())
        .saturating_sub(1);
    Some(SlopeCi {
        slope: full.slope,
        lo: slopes[lo_idx],
        hi: slopes[hi_idx],
        resamples: slopes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_line_has_tight_interval() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let ci = bootstrap_slope_ci(&xs, &ys, 200, 0.95, &mut rng).unwrap();
        assert!((ci.slope - 2.0).abs() < 1e-9);
        assert!((ci.hi - ci.lo) < 1e-6, "interval [{}, {}]", ci.lo, ci.hi);
    }

    #[test]
    fn noisy_line_interval_contains_truth() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..300).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.5 * x + rng.random_range(-3.0..3.0))
            .collect();
        let ci = bootstrap_slope_ci(&xs, &ys, 400, 0.95, &mut rng).unwrap();
        assert!(ci.lo < 1.5 && 1.5 < ci.hi, "[{}, {}]", ci.lo, ci.hi);
        assert!(ci.hi - ci.lo < 0.2, "interval too wide");
    }

    #[test]
    fn interval_widens_with_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let mk = |noise: f64, rng: &mut StdRng| -> Vec<f64> {
            xs.iter()
                .map(|x| x + rng.random_range(-noise..noise))
                .collect()
        };
        let quiet = mk(0.5, &mut rng);
        let loud = mk(8.0, &mut rng);
        let ci_q = bootstrap_slope_ci(&xs, &quiet, 300, 0.95, &mut rng).unwrap();
        let ci_l = bootstrap_slope_ci(&xs, &loud, 300, 0.95, &mut rng).unwrap();
        assert!(ci_l.hi - ci_l.lo > ci_q.hi - ci_q.lo);
    }

    #[test]
    fn degenerate_inputs_none() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(bootstrap_slope_ci(&[1.0, 2.0], &[1.0, 2.0], 100, 0.95, &mut rng).is_none());
        assert!(bootstrap_slope_ci(&[], &[], 100, 0.95, &mut rng).is_none());
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!(bootstrap_slope_ci(&xs, &xs, 100, 1.5, &mut rng).is_none());
    }
}
