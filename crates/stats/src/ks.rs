//! Two-sample Kolmogorov–Smirnov test.
//!
//! The paper argues its "principle results are consistent across both
//! mapping tools" by re-plotting everything under EdgeScape. The KS
//! statistic lets us make that robustness check quantitative: compare
//! the link-length (or hull-area, or AS-size) distributions produced
//! under the two mappers and test whether they could come from the same
//! underlying distribution.

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic: the supremum distance between the two ECDFs.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution approximation).
    pub p_value: f64,
    /// Effective sample size `n·m/(n+m)`.
    pub effective_n: f64,
}

/// Two-sample KS test. Non-finite values are dropped. Returns `None`
/// if either sample is empty after filtering.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Option<KsResult> {
    let mut xa: Vec<f64> = a.iter().copied().filter(|v| v.is_finite()).collect();
    let mut xb: Vec<f64> = b.iter().copied().filter(|v| v.is_finite()).collect();
    if xa.is_empty() || xb.is_empty() {
        return None;
    }
    xa.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    xb.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let (n, m) = (xa.len(), xb.len());
    // Walk both sorted samples, tracking the ECDF gap.
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d = 0.0f64;
    while i < n && j < m {
        let x = xa[i].min(xb[j]);
        while i < n && xa[i] <= x {
            i += 1;
        }
        while j < m && xb[j] <= x {
            j += 1;
        }
        let gap = (i as f64 / n as f64 - j as f64 / m as f64).abs();
        if gap > d {
            d = gap;
        }
    }
    let effective_n = (n as f64 * m as f64) / (n + m) as f64;
    let lambda = (effective_n.sqrt() + 0.12 + 0.11 / effective_n.sqrt()) * d;
    Some(KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        effective_n,
    })
}

/// Kolmogorov survival function Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    // Tests assert exact expected values; bitwise float equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let r = ks_two_sample(&a, &a).unwrap();
        assert!(r.statistic < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| 1000.0 + i as f64).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn same_distribution_high_p() {
        // Two deterministic interleaved samples of the same uniform grid.
        let a: Vec<f64> = (0..1000).map(|i| (2 * i) as f64).collect();
        let b: Vec<f64> = (0..1000).map(|i| (2 * i + 1) as f64).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.p_value > 0.5, "p {} stat {}", r.p_value, r.statistic);
    }

    #[test]
    fn shifted_distribution_low_p() {
        let a: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..1000).map(|i| i as f64 + 200.0).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.p_value < 0.01, "p {}", r.p_value);
    }

    #[test]
    fn empty_or_nonfinite_is_none() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[f64::NAN], &[1.0]).is_none());
    }

    #[test]
    fn kolmogorov_q_bounds() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.5) > kolmogorov_q(1.0));
        assert!(kolmogorov_q(3.0) < 1e-6);
    }
}
