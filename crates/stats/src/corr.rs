//! Correlation coefficients.
//!
//! Figure 8 compares three measures of AS size pairwise ("each pair of
//! measures shows correlation ... the strongest correlation (tightest
//! scatterplot) appears to be that between number of interfaces and number
//! of locations"). We quantify the scatterplots with Pearson correlation
//! (on log-transformed measures, matching the log-log axes) and Spearman
//! rank correlation (robust to the heavy tails).

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` if lengths differ, fewer than two finite pairs exist,
/// or either marginal has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() {
        return None;
    }
    let pairs: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .collect();
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (x, y) in &pairs {
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
        sxy += (x - mx) * (y - my);
    }
    // lint: allow(float_eq): exact-zero degeneracy guard before division
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson correlation of mid-ranks
/// (ties receive the average of the ranks they span).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() {
        return None;
    }
    let keep: Vec<usize> = (0..xs.len())
        .filter(|&i| xs[i].is_finite() && ys[i].is_finite())
        .collect();
    if keep.len() < 2 {
        return None;
    }
    let fx: Vec<f64> = keep.iter().map(|&i| xs[i]).collect();
    let fy: Vec<f64> = keep.iter().map(|&i| ys[i]).collect();
    let rx = midranks(&fx);
    let ry = midranks(&fy);
    pearson(&rx, &ry)
}

/// Assigns mid-ranks (1-based; ties share the average rank).
fn midranks(vals: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..vals.len()).collect();
    idx.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite values"));
    let mut ranks = vec![0.0; vals.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        // Ties are *exactly* equal values; approximate grouping would
        // change the rank statistic.
        #[allow(clippy::float_cmp)]
        while j + 1 < idx.len() && vals[idx[j + 1]] == vals[idx[i]] {
            j += 1;
        }
        // Positions i..=j share the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_near_zero() {
        // Symmetric pattern with zero linear association.
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let ys = [4.0, 1.0, 0.0, 1.0, 4.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 1e-12);
    }

    #[test]
    fn spearman_captures_monotone_nonlinear() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        // Pearson is dragged below 1 by the curvature; Spearman is exactly 1.
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 0.99);
    }

    #[test]
    fn handles_ties_in_ranks() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let s = spearman(&xs, &ys).unwrap();
        assert!(s > 0.9 && s <= 1.0, "s = {s}");
    }

    #[test]
    fn degenerate_cases_none() {
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None); // zero x-variance
        assert_eq!(pearson(&[1.0], &[1.0]), None); // too few
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None); // mismatch
        assert_eq!(spearman(&[1.0], &[2.0]), None);
    }

    #[test]
    fn nonfinite_pairs_dropped() {
        let xs = [1.0, 2.0, f64::NAN, 3.0];
        let ys = [2.0, 4.0, 5.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn midranks_with_ties() {
        let r = midranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn correlation_is_symmetric() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        let ys = [2.0, 1.0, 4.0, 3.0, 5.0];
        assert!((pearson(&xs, &ys).unwrap() - pearson(&ys, &xs).unwrap()).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() - spearman(&ys, &xs).unwrap()).abs() < 1e-12);
    }
}
