//! Statistics for the `geotopo` workspace.
//!
//! Every quantitative method the paper applies lives here:
//!
//! - [`regression`]: least-squares line fits, including the log-log fits of
//!   Figure 2 (router density vs population density) and the semi-log fits
//!   of Figure 5 (exponential distance decay, Waxman form).
//! - [`dist`]: empirical CDFs (Figure 9), complementary CDFs on log-log
//!   axes (Figure 7), and histograms.
//! - [`corr`]: Pearson and Spearman correlation (Figure 8 scatterplots).
//! - [`summary`]: means, medians, quantiles (Table VI link lengths).
//! - [`sampling`]: the heavy-tail samplers the synthetic substrates need —
//!   bounded Zipf, Pareto, exponential, Poisson, and a Walker alias table
//!   for weighted discrete sampling (population-proportional placement).
//! - [`binned`]: the binned ratio estimator behind the empirical distance
//!   preference function `f(d)` of Section V, and its cumulation `F(d)`.
//! - [`exec`]: the [`ChunkExec`] interior-parallelism seam stage hot
//!   loops shard their work through (the engine supplies the parallel
//!   implementation; [`SerialExec`] is the reference).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binned;
pub mod bootstrap;
pub mod corr;
pub mod dist;
pub mod exec;
pub mod ks;
pub mod regression;
pub mod sampling;
pub mod summary;

pub use binned::{BinnedRatio, CumulatedSeries};
pub use bootstrap::{bootstrap_slope_ci, SlopeCi};
pub use corr::{pearson, spearman};
pub use dist::{ccdf_points, Ecdf, Histogram};
pub use exec::{ChunkExec, SerialExec};
pub use ks::{ks_two_sample, KsResult};
pub use regression::{fit_line, fit_loglog, fit_semilog, LinearFit};
pub use sampling::{AliasTable, Exponential, Pareto, Poisson, Zipf};
pub use summary::Summary;
