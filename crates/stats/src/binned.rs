//! Binned ratio estimation — the machinery behind the paper's empirical
//! distance preference function (Section V, equation 1):
//!
//! ```text
//!            # links with length in [d, d+b)
//! f̂(d) = ─────────────────────────────────────
//!          # node pairs with distance in [d, d+b)
//! ```
//!
//! A [`BinnedRatio`] accumulates the numerator (links) and denominator
//! (node pairs) into aligned fixed-width bins and yields the per-bin ratio
//! series (Figure 4), the small-`d` semi-log view (Figure 5), and the
//! cumulated series `F(d) = Σ_{d'<d} f(d')` for the large-`d` regime
//! (Figure 6).

use crate::dist::Histogram;
use serde::{Deserialize, Serialize};

/// Paired histograms producing a per-bin ratio estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinnedRatio {
    numerator: Histogram,
    denominator: Histogram,
}

/// One bin of the estimated function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
// analyze: allow(dead-pub): returned by ratios(); callers read fields without naming the type
pub struct RatioBin {
    /// Lower edge of the bin (the paper plots f(d) at multiples of b).
    pub d: f64,
    /// Estimated ratio; `None` when the denominator is empty.
    pub value: Option<f64>,
    /// Numerator count in the bin.
    pub num: u64,
    /// Denominator count in the bin.
    pub den: u64,
}

/// A cumulated series `F(d)` with its supporting points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CumulatedSeries {
    /// `(d, F(d))` points, one per bin edge.
    pub points: Vec<(f64, f64)>,
}

impl BinnedRatio {
    /// Creates aligned numerator/denominator histograms with `bins` bins
    /// of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `bin_width` or zero `bins` (programming
    /// errors).
    pub fn new(bin_width: f64, bins: usize) -> Self {
        BinnedRatio {
            numerator: Histogram::new(bin_width, bins),
            denominator: Histogram::new(bin_width, bins),
        }
    }

    /// Records one numerator observation (a link of length `d`).
    pub fn add_num(&mut self, d: f64) {
        self.numerator.add(d);
    }

    /// Records `n` numerator observations at `d`.
    pub fn add_num_n(&mut self, d: f64, n: u64) {
        self.numerator.add_n(d, n);
    }

    /// Records one denominator observation (a node pair at distance `d`).
    pub fn add_den(&mut self, d: f64) {
        self.denominator.add(d);
    }

    /// Records `n` denominator observations at `d` (grid-convolution path).
    pub fn add_den_n(&mut self, d: f64, n: u64) {
        self.denominator.add_n(d, n);
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        self.numerator.bin_width()
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.numerator.bins()
    }

    /// The estimated ratio series, one entry per bin.
    pub fn ratios(&self) -> Vec<RatioBin> {
        (0..self.bins())
            .map(|i| {
                let num = self.numerator.counts()[i];
                let den = self.denominator.counts()[i];
                RatioBin {
                    d: self.numerator.bin_lo(i),
                    value: if den > 0 {
                        Some(num as f64 / den as f64)
                    } else {
                        None
                    },
                    num,
                    den,
                }
            })
            .collect()
    }

    /// Cumulated series `F(d) = Σ_{d' < d} f(d')` over all bins with a
    /// defined estimate. `F` is evaluated at each bin's *upper* edge.
    /// Bins with an empty denominator contribute no point: `f` is
    /// undefined there, so repeating the accumulated value would plot a
    /// flat segment Figure 6 never measured (visible as spurious plateaus
    /// across sparse large-`d` gaps).
    pub fn cumulated(&self) -> CumulatedSeries {
        let mut acc = 0.0;
        let mut points = Vec::with_capacity(self.bins());
        for bin in self.ratios() {
            if let Some(v) = bin.value {
                acc += v;
                points.push((bin.d + self.bin_width(), acc));
            }
        }
        CumulatedSeries { points }
    }

    /// Mean ratio over bins `from..to` (for estimating the flat large-`d`
    /// level that Table V intersects with the exponential fit).
    pub fn mean_ratio_in(&self, from: usize, to: usize) -> Option<f64> {
        let bins = self.ratios();
        let vals: Vec<f64> = bins
            .get(from..to.min(bins.len()))?
            .iter()
            .filter_map(|b| b.value)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Total numerator observations that fell in range.
    pub(crate) fn num_total(&self) -> u64 {
        self.numerator.total()
    }

    /// Total denominator observations that fell in range.
    pub fn den_total(&self) -> u64 {
        self.denominator.total()
    }

    /// Numerator observations with `d` below `limit` as a fraction of all
    /// in-range numerator observations (the "% links < limit" column of
    /// Table V). `None` if no numerator observations are in range.
    pub fn num_fraction_below(&self, limit: f64) -> Option<f64> {
        let total = self.num_total();
        if total == 0 {
            return None;
        }
        let mut below = 0u64;
        for i in 0..self.bins() {
            if self.numerator.bin_lo(i) + self.bin_width() <= limit {
                below += self.numerator.counts()[i];
            } else if self.numerator.bin_lo(i) < limit {
                // Partial bin: attribute proportionally.
                let frac = (limit - self.numerator.bin_lo(i)) / self.bin_width();
                below += (self.numerator.counts()[i] as f64 * frac).round() as u64;
            }
        }
        Some(below as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact expected values; bitwise float equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn ratio_basic() {
        let mut br = BinnedRatio::new(10.0, 3);
        // Bin 0: 2 links out of 8 pairs -> 0.25.
        for _ in 0..2 {
            br.add_num(5.0);
        }
        br.add_den_n(5.0, 8);
        // Bin 1: no pairs -> None.
        br.add_num(15.0);
        // Bin 2: pairs but no links -> 0.
        br.add_den_n(25.0, 4);
        let r = br.ratios();
        assert_eq!(r[0].value, Some(0.25));
        assert_eq!(r[1].value, None);
        assert_eq!(r[2].value, Some(0.0));
        assert_eq!(r[0].d, 0.0);
        assert_eq!(r[1].d, 10.0);
    }

    #[test]
    fn cumulated_is_monotone() {
        let mut br = BinnedRatio::new(1.0, 10);
        for i in 0..10 {
            br.add_num_n(i as f64 + 0.5, (10 - i) as u64);
            br.add_den_n(i as f64 + 0.5, 100);
        }
        let c = br.cumulated();
        for w in c.points.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        // F at the last edge = sum of all f values = (10+9+...+1)/100.
        let want = 55.0 / 100.0;
        assert!((c.points.last().unwrap().1 - want).abs() < 1e-12);
    }

    #[test]
    fn constant_f_gives_linear_cumulation() {
        let mut br = BinnedRatio::new(1.0, 50);
        for i in 0..50 {
            br.add_num_n(i as f64 + 0.5, 3);
            br.add_den_n(i as f64 + 0.5, 300);
        }
        let c = br.cumulated();
        // F(d) = 0.01 * d exactly.
        for (d, f) in &c.points {
            assert!((f - 0.01 * d).abs() < 1e-9, "d={d} f={f}");
        }
    }

    #[test]
    fn cumulated_skips_empty_denominator_bins() {
        // Bins 0 and 2 have estimates; bin 1 is an interior gap (no node
        // pair at that distance). The gap must yield no point at all —
        // not a repeat of the running total at the gap's edge.
        let mut br = BinnedRatio::new(10.0, 3);
        br.add_num_n(5.0, 2);
        br.add_den_n(5.0, 10); // bin 0: f = 0.2
        br.add_num(15.0); // bin 1: numerator only -> undefined
        br.add_num_n(25.0, 3);
        br.add_den_n(25.0, 10); // bin 2: f = 0.3
        let c = br.cumulated();
        assert_eq!(c.points.len(), 2, "undefined bin produced a point");
        assert_eq!(c.points[0], (10.0, 0.2));
        assert_eq!(c.points[1], (30.0, 0.5));
        assert!(
            c.points.iter().all(|(d, _)| *d != 20.0),
            "a point was emitted at the gap's upper edge"
        );
    }

    #[test]
    fn mean_ratio_in_range() {
        let mut br = BinnedRatio::new(1.0, 4);
        br.add_num_n(0.5, 1);
        br.add_den_n(0.5, 10); // 0.1
        br.add_num_n(1.5, 3);
        br.add_den_n(1.5, 10); // 0.3
        assert_eq!(br.mean_ratio_in(0, 2), Some(0.2));
        assert_eq!(br.mean_ratio_in(2, 4), None); // empty bins
    }

    #[test]
    fn mean_ratio_in_degenerate_windows() {
        let mut br = BinnedRatio::new(1.0, 4);
        for i in 0..4 {
            br.add_num_n(i as f64 + 0.5, 1);
            br.add_den_n(i as f64 + 0.5, 10);
        }
        // Inverted window (from > to): no bins, not a panic.
        assert_eq!(br.mean_ratio_in(3, 1), None);
        // Start past the end: out of range entirely.
        assert_eq!(br.mean_ratio_in(4, 8), None);
        assert_eq!(br.mean_ratio_in(17, 20), None);
        // End past the last bin clamps instead of failing.
        assert_eq!(br.mean_ratio_in(2, 100), Some(0.1));
        // Empty window at a valid index.
        assert_eq!(br.mean_ratio_in(2, 2), None);
    }

    #[test]
    fn fraction_below_limit() {
        let mut br = BinnedRatio::new(10.0, 10);
        // 8 links below 50, 2 links above.
        for d in [5.0, 15.0, 25.0, 35.0, 45.0, 5.0, 15.0, 25.0] {
            br.add_num(d);
        }
        br.add_num(75.0);
        br.add_num(85.0);
        let f = br.num_fraction_below(50.0).unwrap();
        assert!((f - 0.8).abs() < 1e-12, "{f}");
        assert_eq!(BinnedRatio::new(1.0, 2).num_fraction_below(1.0), None);
    }

    #[test]
    fn fraction_below_partial_bin() {
        let mut br = BinnedRatio::new(10.0, 10);
        br.add_num_n(5.0, 100); // bin [0,10)
        let f = br.num_fraction_below(5.0).unwrap();
        assert!((f - 0.5).abs() < 1e-12, "{f}");
    }

    #[test]
    fn exponential_decay_recoverable_via_semilog_fit() {
        // End-to-end: fill bins following f(d) = 0.01 exp(-d/100) and
        // recover the decay rate with the Figure-5 fit.
        let mut br = BinnedRatio::new(5.0, 60);
        for i in 0..60 {
            let d = i as f64 * 5.0;
            let f = 0.01 * (-d / 100.0).exp();
            let den = 1_000_000u64;
            br.add_den_n(d + 2.5, den);
            br.add_num_n(d + 2.5, (f * den as f64).round() as u64);
        }
        let bins = br.ratios();
        let xs: Vec<f64> = bins.iter().map(|b| b.d).collect();
        let ys: Vec<f64> = bins.iter().map(|b| b.value.unwrap_or(0.0)).collect();
        let fit = crate::regression::fit_semilog(&xs, &ys).unwrap();
        assert!((fit.slope + 0.01).abs() < 5e-4, "slope {}", fit.slope);
    }
}
