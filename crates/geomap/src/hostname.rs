//! Router hostname conventions: synthesis and parsing.
//!
//! "ISPs usually adhere to a strict naming convention for each of their
//! routers in which some sense of geographical location (such as city
//! name or airport codes) is specified. For instance,
//! `0.so-5-2-0.XL1.NYC8.ALTER.NET` maps to New York City."
//! (Section III-B.)
//!
//! The [`HostnameOracle`] stands in for the DNS PTR zone of our synthetic
//! Internet: given an interface's true location and AS it deterministically
//! produces the hostname that AS would assign. A fraction of ASes do not
//! use geographic naming (parsers then fall through to other sources).

use crate::gazetteer::Gazetteer;
use crate::orgdb::OrgDb;
use crate::MapContext;
use geotopo_geo::GeoPoint;
use rand::Rng;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Synthesizes and parses hostname conventions.
#[derive(Debug, Clone)]
pub struct HostnameOracle {
    gazetteer: Arc<Gazetteer>,
    /// Probability an interface's hostname embeds a geographic code.
    pub geo_naming_prob: f64,
    /// Seed distinguishing this synthetic DNS zone.
    pub seed: u64,
}

impl HostnameOracle {
    /// Creates an oracle over the built-in gazetteer with the paper-tuned
    /// geographic-naming share.
    pub fn new(seed: u64) -> Self {
        Self::with_gazetteer(seed, Arc::new(Gazetteer::builtin()))
    }

    /// Creates an oracle over an explicit (e.g. population-densified)
    /// gazetteer, shared rather than copied — the pipeline hands the
    /// same `Arc` to every mapping tool.
    pub fn with_gazetteer(seed: u64, gazetteer: Arc<Gazetteer>) -> Self {
        HostnameOracle {
            gazetteer,
            geo_naming_prob: 0.90,
            seed,
        }
    }

    /// The gazetteer in use.
    pub fn gazetteer(&self) -> &Gazetteer {
        &self.gazetteer
    }

    /// The hostname the owning AS assigns to this interface, or `None`
    /// when no reverse DNS exists (small probability).
    ///
    /// Geographic form: `so-X-Y-0.crZ.<CODE><n>.<org>.net`
    /// Non-geographic form: `coreN.<org>.net`
    pub fn hostname(&self, ip: Ipv4Addr, ctx: &MapContext, orgs: &OrgDb) -> Option<String> {
        let mut rng = crate::ip_rng(self.seed, ip);
        // 2% of interfaces have no PTR record at all.
        if rng.random::<f64>() < 0.02 {
            return None;
        }
        let org = orgs
            .get(ctx.asn)
            .map(|r| r.name.clone())
            .unwrap_or_else(|| format!("as{}", ctx.asn.0));
        let slot: u8 = rng.random_range(0..8);
        let port: u8 = rng.random_range(0..4);
        let unit: u8 = rng.random_range(1..5);
        if rng.random::<f64>() < self.geo_naming_prob {
            let (city, _) = self
                .gazetteer
                .nearest_hinted(&ctx.true_location, ctx.nearest_hint)?;
            let pop: u8 = rng.random_range(1..10);
            Some(format!(
                "so-{slot}-{port}-0.cr{unit}.{}{pop}.{org}.net",
                city.code
            ))
        } else {
            Some(format!("core{unit}.{org}.net"))
        }
    }

    /// Parses a hostname back to coordinates by locating a gazetteer code
    /// token — the primary technique of IxMapper. City-granularity: the
    /// answer is the city centre.
    pub fn parse(&self, hostname: &str) -> Option<GeoPoint> {
        for label in hostname.split('.') {
            // Codes appear as `<CODE><digit>` or bare `<CODE>`; curated
            // codes are 3 letters, synthetic ones 5.
            let trimmed = label.trim_end_matches(|c: char| c.is_ascii_digit());
            if (3..=5).contains(&trimmed.len()) && trimmed.chars().all(|c| c.is_ascii_alphabetic())
            {
                if let Some(city) = self.gazetteer.by_code(trimmed) {
                    return Some(city.location);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_bgp::AsId;

    fn ctx(lat: f64, lon: f64) -> MapContext {
        MapContext::new(GeoPoint::new(lat, lon).unwrap(), AsId(42))
    }

    fn orgs() -> OrgDb {
        let mut db = OrgDb::new();
        db.insert(AsId(42), "isp0042", GeoPoint::new(40.0, -74.0).unwrap());
        db
    }

    #[test]
    fn geographic_hostnames_roundtrip_to_city() {
        let oracle = HostnameOracle::new(1);
        let orgs = orgs();
        let near_boston = ctx(42.4, -71.1);
        let mut resolved = 0;
        let mut total = 0;
        for i in 0..200u32 {
            let ip = Ipv4Addr::from(0x0A000000 + i);
            if let Some(h) = oracle.hostname(ip, &near_boston, &orgs) {
                total += 1;
                if let Some(p) = oracle.parse(&h) {
                    resolved += 1;
                    // Must resolve to Boston's centre.
                    let d = geotopo_geo::haversine_miles(&p, &near_boston.true_location);
                    assert!(d < 40.0, "resolved {d} miles away via {h}");
                }
            }
        }
        // ~90% geographic naming.
        let frac = resolved as f64 / total as f64;
        assert!((frac - 0.9).abs() < 0.08, "geo fraction {frac}");
    }

    #[test]
    fn hostname_is_deterministic_per_ip() {
        let oracle = HostnameOracle::new(9);
        let orgs = orgs();
        let c = ctx(35.68, 139.69);
        let ip = "1.2.3.4".parse().unwrap();
        assert_eq!(
            oracle.hostname(ip, &c, &orgs),
            oracle.hostname(ip, &c, &orgs)
        );
    }

    #[test]
    fn hostname_embeds_org_name() {
        let oracle = HostnameOracle::new(2);
        let orgs = orgs();
        let c = ctx(40.7, -74.0);
        let h = oracle
            .hostname("9.9.9.9".parse().unwrap(), &c, &orgs)
            .unwrap();
        assert!(h.contains("isp0042"), "{h}");
        assert!(h.ends_with(".net"));
    }

    #[test]
    fn unknown_as_gets_fallback_name() {
        let oracle = HostnameOracle::new(3);
        let db = OrgDb::new();
        let c = MapContext::new(GeoPoint::new(40.7, -74.0).unwrap(), AsId(777));
        let h = oracle
            .hostname("8.8.8.8".parse().unwrap(), &c, &db)
            .unwrap();
        assert!(h.contains("as777"), "{h}");
    }

    #[test]
    fn parse_real_world_style_name() {
        let oracle = HostnameOracle::new(4);
        // The paper's example convention, adapted to our codes.
        let p = oracle.parse("0.so-5-2-0.XL1.NYC8.alter.net").unwrap();
        let nyc = GeoPoint::new(40.71, -74.01).unwrap();
        assert!(geotopo_geo::haversine_miles(&p, &nyc) < 1.0);
    }

    #[test]
    fn parse_rejects_nongeographic() {
        let oracle = HostnameOracle::new(5);
        assert!(oracle.parse("core3.isp0042.net").is_none());
        assert!(oracle.parse("").is_none());
        assert!(oracle.parse("www.example.com").is_none());
    }
}
