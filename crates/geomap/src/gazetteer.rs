//! City gazetteer.
//!
//! Hostname-based mapping works because ISPs embed city names or airport
//! codes in router hostnames. This gazetteer is the vocabulary both
//! sides share: the hostname synthesizer picks the nearest city's code,
//! and the parsers resolve codes back to coordinates. City-granularity
//! accuracy is therefore inherent, exactly as in [28].

use geotopo_geo::{haversine_miles, GeoPoint};
use geotopo_population::PopulationGrid;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One gazetteer city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// Human name.
    pub name: String,
    /// Hostname location code (3–4 uppercase letters).
    pub code: String,
    /// City-centre coordinates.
    pub location: GeoPoint,
}

/// The gazetteer: the curated real-city core, optionally densified with
/// synthetic towns derived from a population raster (real hostname
/// conventions name thousands of towns, not just hub airports).
///
/// Nearest-city queries use a 1° bucket index with expanding-ring
/// search, so lookups stay fast with tens of thousands of entries.
#[derive(Debug, Clone)]
pub struct Gazetteer {
    cities: Vec<City>,
    by_code: HashMap<String, u32>,
    buckets: HashMap<(i16, i16), Vec<u32>>,
}

macro_rules! city {
    ($name:literal, $code:literal, $lat:expr, $lon:expr) => {
        City {
            name: $name.to_string(),
            code: $code.to_string(),
            location: GeoPoint::new_unchecked($lat, $lon),
        }
    };
}

impl Default for Gazetteer {
    fn default() -> Self {
        Self::builtin()
    }
}

impl Gazetteer {
    /// The built-in world gazetteer (~140 cities across the paper's
    /// study regions).
    pub fn builtin() -> Self {
        let cities = vec![
            // --- United States & Canada (the paper's US box) ---
            city!("New York", "NYC", 40.71, -74.01),
            city!("Los Angeles", "LAX", 34.05, -118.24),
            city!("Chicago", "CHI", 41.88, -87.63),
            city!("Houston", "HOU", 29.76, -95.37),
            city!("Phoenix", "PHX", 33.45, -112.07),
            city!("Philadelphia", "PHL", 39.95, -75.17),
            city!("San Antonio", "SAT", 29.42, -98.49),
            city!("San Diego", "SAN", 32.72, -117.16),
            city!("Dallas", "DFW", 32.78, -96.80),
            city!("San Jose", "SJC", 37.34, -121.89),
            city!("Austin", "AUS", 30.27, -97.74),
            city!("Jacksonville", "JAX", 30.33, -81.66),
            city!("San Francisco", "SFO", 37.77, -122.42),
            city!("Columbus", "CMH", 39.96, -83.00),
            city!("Charlotte", "CLT", 35.23, -80.84),
            city!("Indianapolis", "IND", 39.77, -86.16),
            city!("Seattle", "SEA", 47.61, -122.33),
            city!("Denver", "DEN", 39.74, -104.99),
            city!("Washington", "WDC", 38.91, -77.04),
            city!("Boston", "BOS", 42.36, -71.06),
            city!("Nashville", "BNA", 36.16, -86.78),
            city!("Detroit", "DTW", 42.33, -83.05),
            city!("Portland", "PDX", 45.52, -122.68),
            city!("Las Vegas", "LAS", 36.17, -115.14),
            city!("Memphis", "MEM", 35.15, -90.05),
            city!("Baltimore", "BWI", 39.29, -76.61),
            city!("Milwaukee", "MKE", 43.04, -87.91),
            city!("Albuquerque", "ABQ", 35.08, -106.65),
            city!("Kansas City", "MCI", 39.10, -94.58),
            city!("Atlanta", "ATL", 33.75, -84.39),
            city!("Miami", "MIA", 25.76, -80.19),
            city!("Minneapolis", "MSP", 44.98, -93.27),
            city!("New Orleans", "MSY", 29.95, -90.07),
            city!("Cleveland", "CLE", 41.50, -81.69),
            city!("Tampa", "TPA", 27.95, -82.46),
            city!("Pittsburgh", "PIT", 40.44, -80.00),
            city!("St. Louis", "STL", 38.63, -90.20),
            city!("Cincinnati", "CVG", 39.10, -84.51),
            city!("Orlando", "MCO", 28.54, -81.38),
            city!("Salt Lake City", "SLC", 40.76, -111.89),
            city!("Raleigh", "RDU", 35.78, -78.64),
            city!("Richmond", "RIC", 37.54, -77.44),
            city!("Sacramento", "SMF", 38.58, -121.49),
            city!("Oklahoma City", "OKC", 35.47, -97.52),
            city!("Buffalo", "BUF", 42.89, -78.88),
            city!("Toronto", "YYZ", 43.65, -79.38),
            city!("Montreal", "YUL", 45.50, -73.57),
            city!("Vancouver", "YVR", 49.28, -123.12),
            city!("Ottawa", "YOW", 45.42, -75.70),
            // --- Europe (the paper's Europe box) ---
            city!("London", "LON", 51.51, -0.13),
            city!("Paris", "PAR", 48.86, 2.35),
            city!("Amsterdam", "AMS", 52.37, 4.90),
            city!("Frankfurt", "FRA", 50.11, 8.68),
            city!("Berlin", "BER", 52.52, 13.41),
            city!("Munich", "MUC", 48.14, 11.58),
            city!("Hamburg", "HAM", 53.55, 9.99),
            city!("Brussels", "BRU", 50.85, 4.35),
            city!("Zurich", "ZRH", 47.37, 8.54),
            city!("Geneva", "GVA", 46.20, 6.14),
            city!("Milan", "MIL", 45.46, 9.19),
            city!("Vienna", "VIE", 48.21, 16.37),
            city!("Prague", "PRG", 50.08, 14.44),
            city!("Copenhagen", "CPH", 55.68, 12.57),
            city!("Dublin", "DUB", 53.35, -6.26),
            city!("Manchester", "MAN", 53.48, -2.24),
            city!("Birmingham", "BHX", 52.48, -1.89),
            city!("Edinburgh", "EDI", 55.95, -3.19),
            city!("Lyon", "LYS", 45.76, 4.84),
            city!("Marseille", "MRS", 43.30, 5.37),
            city!("Barcelona", "BCN", 41.39, 2.17),
            city!("Turin", "TRN", 45.07, 7.69),
            city!("Stuttgart", "STR", 48.78, 9.18),
            city!("Cologne", "CGN", 50.94, 6.96),
            city!("Dusseldorf", "DUS", 51.23, 6.77),
            city!("Rotterdam", "RTM", 51.92, 4.48),
            city!("Antwerp", "ANR", 51.22, 4.40),
            city!("Luxembourg", "LUX", 49.61, 6.13),
            city!("Strasbourg", "SXB", 48.57, 7.75),
            city!("Leipzig", "LEJ", 51.34, 12.37),
            city!("Venice", "VCE", 45.44, 12.32),
            city!("Bologna", "BLQ", 44.49, 11.34),
            // --- Japan ---
            city!("Tokyo", "TYO", 35.68, 139.69),
            city!("Osaka", "OSA", 34.69, 135.50),
            city!("Nagoya", "NGO", 35.18, 136.91),
            city!("Sapporo", "CTS", 43.06, 141.35),
            city!("Fukuoka", "FUK", 33.59, 130.40),
            city!("Kyoto", "UKY", 35.01, 135.77),
            city!("Yokohama", "YOK", 35.44, 139.64),
            city!("Kobe", "UKB", 34.69, 135.20),
            city!("Sendai", "SDJ", 38.27, 140.87),
            city!("Hiroshima", "HIJ", 34.39, 132.46),
            city!("Kawasaki", "KWS", 35.53, 139.70),
            city!("Saitama", "STM", 35.86, 139.65),
            // --- Africa ---
            city!("Cairo", "CAI", 30.04, 31.24),
            city!("Lagos", "LOS", 6.52, 3.38),
            city!("Johannesburg", "JNB", -26.20, 28.05),
            city!("Cape Town", "CPT", -33.92, 18.42),
            city!("Nairobi", "NBO", -1.29, 36.82),
            city!("Casablanca", "CMN", 33.57, -7.59),
            city!("Accra", "ACC", 5.60, -0.19),
            city!("Tunis", "TUN", 36.81, 10.18),
            city!("Algiers", "ALG", 36.75, 3.06),
            city!("Addis Ababa", "ADD", 9.02, 38.75),
            city!("Dakar", "DKR", 14.72, -17.47),
            city!("Abidjan", "ABJ", 5.36, -4.01),
            // --- South America ---
            city!("Sao Paulo", "SAO", -23.55, -46.63),
            city!("Buenos Aires", "BUE", -34.60, -58.38),
            city!("Rio de Janeiro", "RIO", -22.91, -43.17),
            city!("Lima", "LIM", -12.05, -77.04),
            city!("Bogota", "BOG", 4.71, -74.07),
            city!("Santiago", "SCL", -33.45, -70.67),
            city!("Caracas", "CCS", 10.49, -66.88),
            city!("Quito", "UIO", -0.18, -78.47),
            city!("Montevideo", "MVD", -34.90, -56.16),
            city!("Porto Alegre", "POA", -30.03, -51.23),
            // --- Mexico & Central America ---
            city!("Mexico City", "MEX", 19.43, -99.13),
            city!("Guadalajara", "GDL", 20.67, -103.35),
            city!("Monterrey", "MTY", 25.69, -100.32),
            city!("Guatemala City", "GUA", 14.63, -90.51),
            city!("San Salvador", "SAL", 13.69, -89.22),
            city!("Panama City", "PTY", 8.98, -79.52),
            city!("San Jose CR", "SJO", 9.93, -84.08),
            city!("Havana", "HAV", 23.11, -82.37),
            // --- Australia ---
            city!("Sydney", "SYD", -33.87, 151.21),
            city!("Melbourne", "MEL", -37.81, 144.96),
            city!("Brisbane", "BNE", -27.47, 153.03),
            city!("Perth", "PER", -31.95, 115.86),
            city!("Adelaide", "ADL", -34.93, 138.60),
            city!("Canberra", "CBR", -35.28, 149.13),
        ];
        Gazetteer::from_cities(cities)
    }

    /// Builds a gazetteer from an explicit city list (later entries with
    /// duplicate codes are dropped).
    pub(crate) fn from_cities(cities: Vec<City>) -> Self {
        let mut g = Gazetteer {
            cities: Vec::with_capacity(cities.len()),
            by_code: HashMap::new(),
            buckets: HashMap::new(),
        };
        for c in cities {
            g.push(c);
        }
        g
    }

    fn push(&mut self, city: City) -> bool {
        let code = city.code.to_ascii_uppercase();
        if self.by_code.contains_key(&code) {
            return false;
        }
        let idx = self.cities.len() as u32;
        self.by_code.insert(code, idx);
        self.buckets
            .entry(bucket_of(&city.location))
            .or_default()
            .push(idx);
        self.cities.push(city);
        true
    }

    /// Densifies the gazetteer with synthetic towns: one per raster cell
    /// whose population is at least `min_cell_pop`, placed at the cell
    /// centre. Synthetic codes are generated (`ZAAAA`, `ZAAAB`, ...) and
    /// never collide with the curated core. Stops silently if the
    /// 456,976-code synthetic space fills up.
    ///
    /// `min_cell_pop` is an absolute per-cell threshold: scale it with
    /// the raster's cell area (a 30-arcmin cell holds 4× the people of a
    /// 15-arcmin one at the same density).
    pub fn extend_from_population(&mut self, grid: &PopulationGrid, min_cell_pop: f64) -> usize {
        const CAPACITY: u32 = 26 * 26 * 26 * 26;
        let mut added = 0usize;
        let mut counter = 0u32;
        for cell in grid.grid().cells() {
            let pop = grid.cells()[grid.grid().flat_index(cell)];
            if pop < min_cell_pop {
                continue;
            }
            let center = grid.grid().cell_center(cell);
            if !grid.region().contains(&center) {
                continue;
            }
            // Synthetic code: 'Z' + 4 base-26 digits (the curated core
            // has no Z-initial codes, so no collisions with it).
            loop {
                if counter >= CAPACITY {
                    return added;
                }
                let code = format!(
                    "Z{}{}{}{}",
                    (b'A' + ((counter / 17_576) % 26) as u8) as char,
                    (b'A' + ((counter / 676) % 26) as u8) as char,
                    (b'A' + ((counter / 26) % 26) as u8) as char,
                    (b'A' + (counter % 26) as u8) as char
                );
                counter += 1;
                let city = City {
                    name: format!("town-{code}"),
                    code,
                    location: center,
                };
                if self.push(city) {
                    added += 1;
                    break;
                }
            }
        }
        added
    }

    /// All cities.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// Whether the gazetteer is empty.
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// The gazetteer city nearest to `p` with its distance in miles.
    pub fn nearest(&self, p: &GeoPoint) -> Option<(&City, f64)> {
        self.nearest_idx(p)
            .map(|(i, d)| (&self.cities[i as usize], d))
    }

    /// [`Gazetteer::nearest`] with an optional memoized answer: a
    /// `Some` hint (a prior [`Gazetteer::nearest_idx`] result for `p`
    /// against *this* gazetteer) is served without searching, `None`
    /// falls back to the full expanding-ring scan. The mapping hot
    /// paths call this with per-router hints so co-located interfaces
    /// pay for one search, not one each.
    pub fn nearest_hinted(&self, p: &GeoPoint, hint: Option<(u32, f64)>) -> Option<(&City, f64)> {
        match hint {
            Some((i, d)) => Some((&self.cities[i as usize], d)),
            None => self.nearest(p),
        }
    }

    /// Index (into [`Gazetteer::cities`]) and distance in miles of the
    /// single nearest city — the allocation-free core of
    /// [`Gazetteer::nearest`], shaped for the query snapshot's hot
    /// lookup path: one best candidate is tracked through the expanding
    /// ring scan, no candidate vector is built. Ties break toward the
    /// lower index.
    // analyze: hot-path-root
    pub fn nearest_idx(&self, p: &GeoPoint) -> Option<(u32, f64)> {
        if self.cities.is_empty() {
            return None;
        }
        let (pr, pc) = bucket_of(p);
        let mut best: Option<(u32, f64)> = None;
        for ring in 0i16..=181 {
            for dr in -ring..=ring {
                for dc in -ring..=ring {
                    if dr.abs() != ring && dc.abs() != ring {
                        continue; // boundary only; interior already done
                    }
                    let Some(bucket) = self.buckets.get(&(pr + dr, wrap_col(pc + dc))) else {
                        continue;
                    };
                    for &i in bucket {
                        let d = haversine_miles(p, &self.cities[i as usize].location);
                        let better = match best {
                            None => true,
                            Some((bi, bd)) => match d.total_cmp(&bd) {
                                std::cmp::Ordering::Less => true,
                                std::cmp::Ordering::Equal => i < bi,
                                std::cmp::Ordering::Greater => false,
                            },
                        };
                        if better {
                            best = Some((i, d));
                        }
                    }
                }
            }
            if let Some((_, bd)) = best {
                // Same termination bound as nearest_k: a city in an
                // unscanned bucket is more than `ring` degrees away.
                if bd <= ring_bound_miles(ring) {
                    return best;
                }
            }
        }
        best
    }

    /// The `k`-th nearest city (0 = nearest).
    pub fn kth_nearest(&self, p: &GeoPoint, k: usize) -> Option<&City> {
        self.nearest_k(p, k + 1)
            .get(k)
            .map(|&(i, _)| &self.cities[i as usize])
    }

    /// The `k` nearest cities as (index, distance), closest first, via
    /// expanding-ring bucket search. Each ring scans only its boundary
    /// buckets; the search stops once the k-th best hit provably beats
    /// anything an unscanned bucket could hold.
    fn nearest_k(&self, p: &GeoPoint, k: usize) -> Vec<(u32, f64)> {
        if self.cities.is_empty() || k == 0 {
            return Vec::new();
        }
        let (pr, pc) = bucket_of(p);
        let mut best: Vec<(u32, f64)> = Vec::new();
        for ring in 0i16..=181 {
            for dr in -ring..=ring {
                for dc in -ring..=ring {
                    if dr.abs() != ring && dc.abs() != ring {
                        continue; // boundary only; interior already done
                    }
                    if let Some(bucket) = self.buckets.get(&(pr + dr, wrap_col(pc + dc))) {
                        for &i in bucket {
                            let d = haversine_miles(p, &self.cities[i as usize].location);
                            best.push((i, d));
                        }
                    }
                }
            }
            if best.len() >= k {
                sort_dedup_candidates(&mut best);
                if best.len() >= k && best[k - 1].1 <= ring_bound_miles(ring) {
                    best.truncate(k);
                    return best;
                }
            }
        }
        sort_dedup_candidates(&mut best);
        best.truncate(k);
        best
    }

    /// Looks up a city by its code (case-insensitive).
    pub fn by_code(&self, code: &str) -> Option<&City> {
        self.by_code
            .get(&code.to_ascii_uppercase())
            .map(|&i| &self.cities[i as usize])
    }
}

/// 1°×1° bucket key. Column 180 (a point at exactly +180° longitude)
/// wraps to -180: probe columns are normalized into [-180, 179] by
/// [`wrap_col`], so a city stored under column 180 would be invisible
/// to every query — the antimeridian bug this normalization fixes.
fn bucket_of(p: &GeoPoint) -> (i16, i16) {
    (p.lat().floor() as i16, wrap_col(p.lon().floor() as i16))
}

/// Normalizes a (possibly ring-offset) bucket column into [-180, 179],
/// wrapping across the date line.
fn wrap_col(mut col: i16) -> i16 {
    if col < -180 {
        col += 360;
    } else if col >= 180 {
        col -= 360;
    }
    col
}

/// The expanding-ring termination bound: a city in a bucket the ring
/// has not scanned differs by more than `ring` bucket indices, i.e. by
/// more than `ring` degrees of latitude or longitude. The tightest mile
/// bound is the longitude one at high latitude; 0.25 covers |lat| ≤ 75.5°.
fn ring_bound_miles(ring: i16) -> f64 {
    69.0 * f64::from(ring) * 0.25
}

/// Sorts candidates by (distance, index) and drops duplicate indices:
/// once the ring radius exceeds 180 columns the date-line wrap makes
/// two `dc` offsets land on the same bucket, so a boundary scan can
/// visit one bucket twice — without the dedup, `nearest_k` could hand
/// back the same city in two result slots.
fn sort_dedup_candidates(best: &mut Vec<(u32, f64)>) {
    best.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("finite") // lint: allow(unwrap): haversine of valid coordinates is finite
            .then_with(|| a.0.cmp(&b.0))
    });
    best.dedup_by_key(|e| e.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_is_reasonably_sized() {
        let g = Gazetteer::builtin();
        assert!(g.len() >= 100, "only {} cities", g.len());
    }

    #[test]
    fn codes_are_unique() {
        let g = Gazetteer::builtin();
        let mut codes: Vec<_> = g.cities().iter().map(|c| c.code.clone()).collect();
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(before, codes.len(), "duplicate codes");
    }

    #[test]
    fn nearest_boston_suburb_is_boston() {
        let g = Gazetteer::builtin();
        let cambridge = GeoPoint::new(42.37, -71.11).unwrap();
        let (c, d) = g.nearest(&cambridge).unwrap();
        assert_eq!(c.code, "BOS");
        assert!(d < 10.0);
    }

    #[test]
    fn nearest_handles_europe_and_japan() {
        let g = Gazetteer::builtin();
        let versailles = GeoPoint::new(48.80, 2.13).unwrap();
        assert_eq!(g.nearest(&versailles).unwrap().0.code, "PAR");
        let chiba = GeoPoint::new(35.61, 140.11).unwrap();
        let near_tokyo = g.nearest(&chiba).unwrap().0.code.clone();
        assert!(near_tokyo == "TYO" || near_tokyo == "KWS", "{near_tokyo}");
    }

    #[test]
    fn by_code_roundtrip() {
        let g = Gazetteer::builtin();
        for c in g.cities() {
            assert_eq!(g.by_code(&c.code).unwrap().name, c.name);
        }
        assert!(g.by_code("XXX").is_none());
        assert!(g.by_code("nyc").is_some());
    }

    #[test]
    fn kth_nearest_ordering() {
        let g = Gazetteer::builtin();
        let p = GeoPoint::new(40.0, -75.0).unwrap();
        let first = g.kth_nearest(&p, 0).unwrap();
        let second = g.kth_nearest(&p, 1).unwrap();
        assert_ne!(first.code, second.code);
        let d1 = geotopo_geo::haversine_miles(&first.location, &p);
        let d2 = geotopo_geo::haversine_miles(&second.location, &p);
        assert!(d1 <= d2);
        assert!(g.kth_nearest(&p, 10_000).is_none());
    }

    #[test]
    fn city_coordinates_are_valid() {
        for c in Gazetteer::builtin().cities() {
            assert!((-90.0..=90.0).contains(&c.location.lat()));
        }
    }

    #[test]
    fn antimeridian_query_finds_city_across_date_line() {
        let g = Gazetteer::from_cities(vec![
            city!("West of line", "WST", 0.0, 179.5),
            city!("Far away", "FAR", 50.0, 0.0),
        ]);
        // Just east of the date line: the nearest city sits ~50 miles
        // away on the *other* side of ±180°, not a third of the globe
        // away at Greenwich.
        let p = GeoPoint::new(0.0, -179.8).unwrap();
        let (c, d) = g.nearest(&p).unwrap();
        assert_eq!(c.code, "WST");
        assert!(d < 100.0, "{d} miles");
    }

    #[test]
    fn city_at_exactly_180_longitude_is_reachable() {
        // Pre-fix, bucket_of stored this city under column 180, which
        // the probe normalization can never address: the city existed
        // but no query could find it.
        let g = Gazetteer::from_cities(vec![city!("Date line", "DTL", 10.0, 180.0)]);
        for lon in [179.0, -179.0, 180.0] {
            let p = GeoPoint::new(10.0, lon).unwrap();
            let (c, _) = g
                .nearest(&p)
                .unwrap_or_else(|| panic!("no city from lon {lon}"));
            assert_eq!(c.code, "DTL");
        }
    }

    #[test]
    fn worldwide_ring_wrap_returns_no_duplicates() {
        // Query on the far side of the globe from a two-city gazetteer:
        // the expanding ring wraps all 360 columns, where the same
        // bucket used to be scanned twice per ring and nearest_k(p, 2)
        // returned one city in both slots.
        let g = Gazetteer::from_cities(vec![
            city!("A", "AAA", 0.0, 10.0),
            city!("B", "BBB", 0.3, 10.2),
        ]);
        let p = GeoPoint::new(0.0, -170.0).unwrap();
        let pair = g.nearest_k(&p, 2);
        assert_eq!(pair.len(), 2, "second city lost");
        assert_ne!(pair[0].0, pair[1].0, "duplicate city in nearest_k");
    }

    #[test]
    fn nearest_idx_memo_is_bit_identical_across_antimeridian_and_poles() {
        // The mapping stages and the query snapshot's freeze memo serve
        // `nearest_hinted` with a cached `nearest_idx` answer instead of
        // re-searching. That cache is only sound if the memoized (city,
        // distance) pair is *bit*-identical to what the unmemoized scan
        // returns — including at the antimeridian and pole geometries
        // whose bucket addressing was fixed in an earlier revision.
        let g = Gazetteer::from_cities(vec![
            city!("West of line", "WST", 0.0, 179.5),
            city!("Date line", "DTL", 10.0, 180.0),
            city!("Near north pole", "NPL", 89.6, -45.0),
            city!("Near south pole", "SPL", -89.4, 120.0),
            city!("Far away", "FAR", 50.0, 0.0),
        ]);
        let probes = [
            (0.0, -179.8),  // just east of the date line, city to the west
            (10.0, 179.0),  // city stored at exactly 180° longitude
            (10.0, -179.0), // same city, approached from the east
            (10.0, 180.0),  // probe itself at 180°
            (90.0, 0.0),    // north pole: all longitudes coincide
            (89.9, 135.0),  // near-pole probe far from the city's lon
            (-90.0, 0.0),   // south pole
            (-89.8, -60.0), // near south pole, opposite longitude
        ];
        for (lat, lon) in probes {
            let p = GeoPoint::new(lat, lon).unwrap();
            let (city, d) = g.nearest(&p).unwrap();
            let memo = g.nearest_idx(&p);
            let (hinted, hd) = g.nearest_hinted(&p, memo).unwrap();
            assert_eq!(
                city.code, hinted.code,
                "memoized city diverged at ({lat}, {lon})"
            );
            assert_eq!(
                d.to_bits(),
                hd.to_bits(),
                "memoized distance not bit-identical at ({lat}, {lon}): {d} vs {hd}"
            );
            // A `None` hint must fall back to the exact same search.
            let (fallback, fd) = g.nearest_hinted(&p, None).unwrap();
            assert_eq!(city.code, fallback.code);
            assert_eq!(d.to_bits(), fd.to_bits());
        }
    }

    #[test]
    fn nearest_idx_agrees_with_nearest_k() {
        let g = Gazetteer::builtin();
        for (lat, lon) in [
            (42.37, -71.11),
            (0.0, -170.0),
            (-33.0, 151.0),
            (10.0, 180.0),
            (48.80, 2.13),
        ] {
            let p = GeoPoint::new(lat, lon).unwrap();
            let (i, d) = g.nearest_idx(&p).unwrap();
            let k = g.nearest_k(&p, 1)[0];
            assert_eq!(i, k.0, "index diverged at ({lat}, {lon})");
            assert!((d - k.1).abs() < 1e-9);
        }
    }
}
