//! The IxMapper-like geolocation service.
//!
//! "IxMapper always tries to use hostname based mapping, defaulting to
//! DNS LOC records if available and finally to whois records"
//! (Section III-B). The paper reports ~1–1.5% of nodes unmappable by
//! IxMapper; the default parameters land in that band.

use crate::dnsloc::DnsLocDb;
use crate::hostname::HostnameOracle;
use crate::orgdb::OrgDb;
use crate::{GeoMapper, MapContext, MapOutcome};
use geotopo_geo::GeoPoint;
use rand::Rng;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Simulated IxMapper.
#[derive(Debug, Clone)]
pub struct IxMapper {
    hostnames: HostnameOracle,
    loc_db: DnsLocDb,
    orgs: Arc<OrgDb>,
    /// Probability the whois fallback succeeds for a given address.
    pub whois_success: f64,
    /// Probability a successfully parsed hostname is nonetheless wrong
    /// (stale naming after router moves): maps to a random other city.
    pub stale_hostname_prob: f64,
    seed: u64,
}

impl IxMapper {
    /// Creates the service over a whois registry and the built-in
    /// gazetteer.
    pub fn new(seed: u64, orgs: OrgDb) -> Self {
        Self::with_gazetteer(seed, Arc::new(orgs), Arc::new(crate::Gazetteer::builtin()))
    }

    /// Creates the service over an explicit gazetteer (the pipeline
    /// passes a population-densified one). Registry and gazetteer are
    /// `Arc`-shared with the other tools, not cloned per mapper.
    pub fn with_gazetteer(seed: u64, orgs: Arc<OrgDb>, gazetteer: Arc<crate::Gazetteer>) -> Self {
        IxMapper {
            hostnames: HostnameOracle::with_gazetteer(seed ^ 0x1A, gazetteer),
            loc_db: DnsLocDb::new(seed ^ 0x2B),
            orgs,
            whois_success: 0.90,
            stale_hostname_prob: 0.01,
            seed,
        }
    }

    /// The hostname oracle (shared with tests and the pipeline).
    pub fn hostnames(&self) -> &HostnameOracle {
        &self.hostnames
    }
}

impl GeoMapper for IxMapper {
    fn name(&self) -> &'static str {
        "IxMapper"
    }

    fn map(&self, ip: Ipv4Addr, ctx: &MapContext) -> Option<GeoPoint> {
        self.map_resolved(ip, ctx).location
    }

    fn map_resolved(&self, ip: Ipv4Addr, ctx: &MapContext) -> MapOutcome {
        let mut rng = crate::ip_rng(self.seed ^ 0x3C, ip);
        // 1. Hostname-based mapping.
        if let Some(hostname) = self.hostnames.hostname(ip, ctx, &self.orgs) {
            if let Some(city_loc) = self.hostnames.parse(&hostname) {
                if rng.random::<f64>() < self.stale_hostname_prob {
                    // Stale record: a different city entirely. Still the
                    // hostname source answering — degraded, not a
                    // fallback.
                    let idx = rng.random_range(0..self.hostnames.gazetteer().len());
                    return MapOutcome {
                        location: Some(self.hostnames.gazetteer().cities()[idx].location),
                        source: "hostname-stale",
                        fallback: false,
                    };
                }
                return MapOutcome {
                    location: Some(city_loc),
                    source: "hostname",
                    fallback: false,
                };
            }
        }
        // 2. DNS LOC.
        if let Some(loc) = self.loc_db.lookup(ip, ctx) {
            return MapOutcome {
                location: Some(loc),
                source: "dns-loc",
                fallback: true,
            };
        }
        // 3. Whois: the organization's registered headquarters.
        if rng.random::<f64>() < self.whois_success {
            if let Some(rec) = self.orgs.get(ctx.asn) {
                return MapOutcome {
                    location: Some(rec.headquarters),
                    source: "whois",
                    fallback: true,
                };
            }
        }
        MapOutcome::unresolved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_bgp::AsId;

    fn service() -> IxMapper {
        let mut orgs = OrgDb::new();
        orgs.insert(AsId(42), "isp0042", GeoPoint::new(40.71, -74.01).unwrap());
        IxMapper::new(11, orgs)
    }

    fn ctx() -> MapContext {
        // near Boston
        MapContext::new(GeoPoint::new(42.3, -71.1).unwrap(), AsId(42))
    }

    #[test]
    fn unmapped_rate_in_paper_band() {
        let svc = service();
        let n = 30_000u32;
        let mut unmapped = 0;
        for i in 0..n {
            if svc.map(Ipv4Addr::from(0x0B000000 + i), &ctx()).is_none() {
                unmapped += 1;
            }
        }
        let frac = unmapped as f64 / n as f64;
        // Paper: 1% (Mercator) to 1.5% (Skitter) unmapped.
        assert!(frac > 0.002 && frac < 0.03, "unmapped {frac}");
    }

    #[test]
    fn city_granularity_dominates() {
        let svc = service();
        let mut within_city = 0;
        let mut total = 0;
        for i in 0..5000u32 {
            if let Some(p) = svc.map(Ipv4Addr::from(0x0C000000 + i), &ctx()) {
                total += 1;
                let err = geotopo_geo::haversine_miles(&p, &ctx().true_location);
                if err < 50.0 {
                    within_city += 1;
                }
            }
        }
        let frac = within_city as f64 / total as f64;
        assert!(frac > 0.8, "city-accurate fraction {frac}");
    }

    #[test]
    fn whois_fallback_maps_to_headquarters() {
        // An AS with no geographic naming at all: raise the
        // non-geographic share by constructing an oracle-less context —
        // here we simply verify that when hostname parsing fails and no
        // LOC record exists, HQ is returned. Find such an IP by search.
        let svc = service();
        let hq = GeoPoint::new(40.71, -74.01).unwrap();
        let mut found_hq = false;
        for i in 0..50_000u32 {
            let ip = Ipv4Addr::from(0x0D000000 + i);
            if let Some(p) = svc.map(ip, &ctx()) {
                if geotopo_geo::haversine_miles(&p, &hq) < 0.5 {
                    found_hq = true;
                    break;
                }
            }
        }
        assert!(found_hq, "no address ever fell through to whois HQ");
    }

    #[test]
    fn mapping_is_deterministic() {
        let svc = service();
        let ip = "99.1.2.3".parse().unwrap();
        assert_eq!(svc.map(ip, &ctx()), svc.map(ip, &ctx()));
    }

    #[test]
    fn map_resolved_agrees_with_map_and_labels_sources() {
        // The traced entry point must be draw-for-draw identical to
        // map(), and every label must come from the documented set.
        let svc = service();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..20_000u32 {
            let ip = Ipv4Addr::from(0x0E000000 + i);
            let outcome = svc.map_resolved(ip, &ctx());
            assert_eq!(outcome.location, svc.map(ip, &ctx()), "ip {ip}");
            assert_eq!(outcome.location.is_none(), outcome.source == "none");
            assert!(
                ["hostname", "hostname-stale", "dns-loc", "whois", "none"]
                    .contains(&outcome.source),
                "unexpected source {}",
                outcome.source
            );
            assert_eq!(
                outcome.fallback,
                matches!(outcome.source, "dns-loc" | "whois"),
                "fallback flag wrong for {}",
                outcome.source
            );
            seen.insert(outcome.source);
        }
        // The chain head and at least one fallback fire over 20k addrs.
        assert!(seen.contains("hostname"), "sources seen: {seen:?}");
        assert!(seen.contains("whois"), "sources seen: {seen:?}");
    }

    #[test]
    fn name_reported() {
        assert_eq!(service().name(), "IxMapper");
    }
}
