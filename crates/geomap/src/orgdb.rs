//! Organization (whois) records.
//!
//! "The whois lookup method is generally accurate for small organizations
//! but may fail in cases where geographically dispersed hosts are mapped
//! to an organization's registered headquarters" (Section III-B). This
//! database holds each AS's registered name and headquarters; whois-based
//! mapping returns the HQ regardless of where the queried host actually
//! sits — reproducing exactly that bias.

use geotopo_bgp::AsId;
use geotopo_geo::GeoPoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One organization's registry record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrgRecord {
    /// Registered organization name (also the hostname domain label).
    pub name: String,
    /// Registered headquarters location.
    pub headquarters: GeoPoint,
}

/// The whois registry: AS number → organization record.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OrgDb {
    records: HashMap<AsId, OrgRecord>,
}

impl OrgDb {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a record.
    pub fn insert(&mut self, asn: AsId, name: impl Into<String>, headquarters: GeoPoint) {
        self.records.insert(
            asn,
            OrgRecord {
                name: name.into(),
                headquarters,
            },
        );
    }

    /// Looks up a record.
    pub fn get(&self, asn: AsId) -> Option<&OrgRecord> {
        self.records.get(&asn)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut db = OrgDb::new();
        let hq = GeoPoint::new(42.36, -71.06).unwrap();
        db.insert(AsId(111), "isp0111", hq);
        let rec = db.get(AsId(111)).unwrap();
        assert_eq!(rec.name, "isp0111");
        assert_eq!(rec.headquarters, hq);
        assert!(db.get(AsId(222)).is_none());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn replace_updates() {
        let mut db = OrgDb::new();
        let a = GeoPoint::new(0.0, 0.0).unwrap();
        let b = GeoPoint::new(1.0, 1.0).unwrap();
        db.insert(AsId(1), "old", a);
        db.insert(AsId(1), "new", b);
        assert_eq!(db.get(AsId(1)).unwrap().name, "new");
        assert_eq!(db.len(), 1);
    }
}
