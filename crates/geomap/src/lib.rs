//! Simulated IP-geolocation services.
//!
//! Section III-B of the paper maps every interface to coordinates with
//! two commercial tools: Ixia's IxMapper and Akamai's EdgeScape. Neither
//! exists to us, so this crate simulates both *mechanistically* — the
//! same data sources, the same fallback order, the same failure modes:
//!
//! - [`gazetteer`]: a built-in city/airport-code gazetteer (the location
//!   vocabulary hostname conventions draw from).
//! - [`hostname`]: synthesis *and parsing* of ISP router naming
//!   conventions (`so-5-2-0.cr1.NYC2.isp0042.net` → New York). Accuracy
//!   is city-granularity, as Padmanabhan & Subramanian measured.
//! - [`orgdb`]: per-AS organization records (whois): names and registered
//!   headquarters. Whois mapping is HQ-biased — "may fail in cases where
//!   geographically dispersed hosts are mapped to an organization's
//!   registered headquarters".
//! - [`dnsloc`]: sparse DNS LOC records — "while accurate, are not
//!   required and are therefore not always available".
//! - [`ixmapper`] / [`edgescape`]: the two mapping services, with tuned
//!   unmapped rates (paper: 1–1.5% IxMapper, 0.3–0.6% EdgeScape).
//!
//! Every mapper is deterministic per (tool seed, IP): remapping the same
//! interface always yields the same answer, as with the real services.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dnsloc;
pub mod edgescape;
pub mod gazetteer;
pub mod hostname;
pub mod ixmapper;
pub mod netgeo;
pub mod orgdb;

pub use dnsloc::DnsLocDb;
pub use edgescape::EdgeScape;
pub use gazetteer::{City, Gazetteer};
pub use hostname::HostnameOracle;
pub use ixmapper::IxMapper;
pub use netgeo::NetGeo;
pub use orgdb::{OrgDb, OrgRecord};

use geotopo_bgp::AsId;
use geotopo_geo::GeoPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

/// Ground-truth context a mapper consults (stands in for the hidden
/// databases the real services query).
#[derive(Debug, Clone, Copy)]
pub struct MapContext {
    /// The interface's true location.
    pub true_location: GeoPoint,
    /// The interface's true origin AS.
    pub asn: AsId,
    /// Precomputed [`Gazetteer::nearest_idx`] result for
    /// `true_location`, against the *same* gazetteer the consuming
    /// mapper holds. The nearest-city search is the dominant per-item
    /// mapping cost at scale and co-located interfaces share its
    /// answer, so callers that map many interfaces per router memoize
    /// it once per router. `None` means "search"; a `Some` hint must be
    /// bit-identical to what the search would return, or mapping
    /// outcomes change.
    pub nearest_hint: Option<(u32, f64)>,
}

impl MapContext {
    /// Context without a precomputed nearest-city hint (the mapper
    /// searches the gazetteer itself).
    pub fn new(true_location: GeoPoint, asn: AsId) -> Self {
        MapContext {
            true_location,
            asn,
            nearest_hint: None,
        }
    }

    /// Attaches a precomputed [`Gazetteer::nearest_idx`] result.
    #[must_use]
    pub fn with_nearest_hint(mut self, hint: Option<(u32, f64)>) -> Self {
        self.nearest_hint = hint;
        self
    }
}

/// One mapping outcome with its provenance: the estimated location (if
/// any) and which source in the tool's fallback chain produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapOutcome {
    /// The estimated coordinates (`None` when the tool gave up).
    pub location: Option<GeoPoint>,
    /// Stable source label — IxMapper: `"hostname"`,
    /// `"hostname-stale"`, `"dns-loc"`, `"whois"`; EdgeScape:
    /// `"isp-feed"`, `"isp-feed-neighbor"`, `"hostname"`, `"whois"`;
    /// `"none"` when unresolved.
    pub source: &'static str,
    /// True when the answer came from a source *below* the head of the
    /// tool's chain (the tool fell back).
    pub fallback: bool,
}

impl MapOutcome {
    /// An unresolved outcome.
    pub fn unresolved() -> Self {
        MapOutcome {
            location: None,
            source: "none",
            fallback: false,
        }
    }
}

/// A geolocation service: maps an IP to estimated coordinates, or `None`
/// when the service cannot locate the address.
pub trait GeoMapper {
    /// Tool name for reports ("IxMapper" / "EdgeScape").
    fn name(&self) -> &'static str;

    /// Maps one address. Deterministic per `(self, ip)`.
    fn map(&self, ip: Ipv4Addr, ctx: &MapContext) -> Option<GeoPoint>;

    /// Like [`map`](GeoMapper::map), but also reports which source in
    /// the tool's fallback chain resolved the address — the raw material
    /// for per-tool resolution telemetry. Must be draw-for-draw
    /// identical to `map` (same RNG stream, same answer). The default
    /// cannot see inside `map`, so it labels every success `"direct"`.
    fn map_resolved(&self, ip: Ipv4Addr, ctx: &MapContext) -> MapOutcome {
        match self.map(ip, ctx) {
            Some(location) => MapOutcome {
                location: Some(location),
                source: "direct",
                fallback: false,
            },
            None => MapOutcome::unresolved(),
        }
    }
}

/// Derives a deterministic per-IP RNG from a tool seed (splitmix64 over
/// the address bits, then seeding a `StdRng`).
pub(crate) fn ip_rng(tool_seed: u64, ip: Ipv4Addr) -> StdRng {
    let mut z = tool_seed
        .wrapping_add(u64::from(u32::from(ip)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x632B_E59B_D9B4_E019);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    // Tests assert exact expected values; bitwise float equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;
    use rand::Rng;

    #[test]
    fn ip_rng_is_deterministic_and_ip_sensitive() {
        let ip1: Ipv4Addr = "1.2.3.4".parse().unwrap();
        let ip2: Ipv4Addr = "1.2.3.5".parse().unwrap();
        let a: f64 = ip_rng(1, ip1).random();
        let b: f64 = ip_rng(1, ip1).random();
        let c: f64 = ip_rng(1, ip2).random();
        let d: f64 = ip_rng(2, ip1).random();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
