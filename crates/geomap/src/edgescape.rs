//! The EdgeScape-like geolocation service.
//!
//! "Akamai's EdgeScape service supplements hostname based mapping
//! techniques with internal ISP geographical information" (Section
//! III-B). Its distinguishing features in the paper: a *lower* unmapped
//! rate (0.3–0.6% vs IxMapper's 1–1.5%) and an independent error model —
//! which is why the Appendix replots every figure under EdgeScape as a
//! robustness check.

use crate::hostname::HostnameOracle;
use crate::orgdb::OrgDb;
use crate::{GeoMapper, MapContext, MapOutcome};
use geotopo_geo::GeoPoint;
use rand::Rng;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Simulated EdgeScape.
#[derive(Debug, Clone)]
pub struct EdgeScape {
    hostnames: HostnameOracle,
    orgs: Arc<OrgDb>,
    /// Probability the ISP-feed knows this address directly.
    pub isp_feed_coverage: f64,
    /// Probability an ISP-feed answer points at the metro's second city
    /// (feeds key on billing sites, not router sites).
    pub neighbor_city_prob: f64,
    /// Probability the whois fallback succeeds.
    pub whois_success: f64,
    seed: u64,
}

impl EdgeScape {
    /// Creates the service over a whois registry and the built-in
    /// gazetteer.
    pub fn new(seed: u64, orgs: OrgDb) -> Self {
        Self::with_gazetteer(seed, Arc::new(orgs), Arc::new(crate::Gazetteer::builtin()))
    }

    /// Creates the service over an explicit gazetteer (the pipeline
    /// passes a population-densified one). Registry and gazetteer are
    /// `Arc`-shared with the other tools, not cloned per mapper.
    pub fn with_gazetteer(seed: u64, orgs: Arc<OrgDb>, gazetteer: Arc<crate::Gazetteer>) -> Self {
        EdgeScape {
            hostnames: HostnameOracle::with_gazetteer(seed ^ 0x4D, gazetteer),
            orgs,
            isp_feed_coverage: 0.88,
            neighbor_city_prob: 0.06,
            whois_success: 0.95,
            seed,
        }
    }
}

impl GeoMapper for EdgeScape {
    fn name(&self) -> &'static str {
        "EdgeScape"
    }

    fn map(&self, ip: Ipv4Addr, ctx: &MapContext) -> Option<GeoPoint> {
        self.map_resolved(ip, ctx).location
    }

    fn map_resolved(&self, ip: Ipv4Addr, ctx: &MapContext) -> MapOutcome {
        let mut rng = crate::ip_rng(self.seed ^ 0x5E, ip);
        // 1. ISP feed: city-granularity from the provider's own data.
        if rng.random::<f64>() < self.isp_feed_coverage {
            let gaz = self.hostnames.gazetteer();
            if rng.random::<f64>() < self.neighbor_city_prob {
                if let Some(second) = gaz.kth_nearest(&ctx.true_location, 1) {
                    // Feed keyed on a billing site: the metro's second
                    // city. Still the primary source answering.
                    return MapOutcome {
                        location: Some(second.location),
                        source: "isp-feed-neighbor",
                        fallback: false,
                    };
                }
            }
            if let Some((city, _)) = gaz.nearest_hinted(&ctx.true_location, ctx.nearest_hint) {
                return MapOutcome {
                    location: Some(city.location),
                    source: "isp-feed",
                    fallback: false,
                };
            }
        }
        // 2. Hostname-based mapping.
        if let Some(hostname) = self.hostnames.hostname(ip, ctx, &self.orgs) {
            if let Some(city_loc) = self.hostnames.parse(&hostname) {
                return MapOutcome {
                    location: Some(city_loc),
                    source: "hostname",
                    fallback: true,
                };
            }
        }
        // 3. Whois fallback.
        if rng.random::<f64>() < self.whois_success {
            if let Some(rec) = self.orgs.get(ctx.asn) {
                return MapOutcome {
                    location: Some(rec.headquarters),
                    source: "whois",
                    fallback: true,
                };
            }
        }
        MapOutcome::unresolved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_bgp::AsId;

    fn service() -> EdgeScape {
        let mut orgs = OrgDb::new();
        orgs.insert(AsId(42), "isp0042", GeoPoint::new(40.71, -74.01).unwrap());
        EdgeScape::new(21, orgs)
    }

    fn ctx() -> MapContext {
        // near Tokyo
        MapContext::new(GeoPoint::new(35.7, 139.8).unwrap(), AsId(42))
    }

    #[test]
    fn unmapped_rate_lower_than_ixmapper() {
        let svc = service();
        let n = 50_000u32;
        let mut unmapped = 0;
        for i in 0..n {
            if svc.map(Ipv4Addr::from(0x15000000 + i), &ctx()).is_none() {
                unmapped += 1;
            }
        }
        let frac = unmapped as f64 / n as f64;
        // Paper: 0.3–0.6% for EdgeScape.
        assert!(frac < 0.012, "unmapped {frac}");
    }

    #[test]
    fn city_granularity_dominates() {
        let svc = service();
        let mut close = 0;
        let mut total = 0;
        for i in 0..5000u32 {
            if let Some(p) = svc.map(Ipv4Addr::from(0x16000000 + i), &ctx()) {
                total += 1;
                if geotopo_geo::haversine_miles(&p, &ctx().true_location) < 50.0 {
                    close += 1;
                }
            }
        }
        let frac = close as f64 / total as f64;
        assert!(frac > 0.8, "city-accurate fraction {frac}");
    }

    #[test]
    fn error_model_differs_from_ixmapper() {
        // Same addresses, same context: the two tools must not produce
        // identical mappings everywhere (the Appendix exists because the
        // tools disagree in detail while agreeing in the aggregate).
        let mut orgs = OrgDb::new();
        orgs.insert(AsId(42), "isp0042", GeoPoint::new(40.71, -74.01).unwrap());
        let ix = crate::IxMapper::new(11, orgs.clone());
        let es = EdgeScape::new(11, orgs);
        let mut differ = 0;
        for i in 0..2000u32 {
            let ip = Ipv4Addr::from(0x17000000 + i);
            let a = crate::GeoMapper::map(&ix, ip, &ctx());
            let b = es.map(ip, &ctx());
            if a != b {
                differ += 1;
            }
        }
        assert!(differ > 0, "tools identical");
    }

    #[test]
    fn deterministic_per_ip() {
        let svc = service();
        let ip = "55.4.3.2".parse().unwrap();
        assert_eq!(svc.map(ip, &ctx()), svc.map(ip, &ctx()));
    }

    #[test]
    fn map_resolved_agrees_with_map_and_labels_sources() {
        let svc = service();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..20_000u32 {
            let ip = Ipv4Addr::from(0x18000000 + i);
            let outcome = svc.map_resolved(ip, &ctx());
            assert_eq!(outcome.location, svc.map(ip, &ctx()), "ip {ip}");
            assert_eq!(outcome.location.is_none(), outcome.source == "none");
            assert!(
                ["isp-feed", "isp-feed-neighbor", "hostname", "whois", "none"]
                    .contains(&outcome.source),
                "unexpected source {}",
                outcome.source
            );
            assert_eq!(
                outcome.fallback,
                matches!(outcome.source, "hostname" | "whois"),
                "fallback flag wrong for {}",
                outcome.source
            );
            seen.insert(outcome.source);
        }
        assert!(seen.contains("isp-feed"), "sources seen: {seen:?}");
        assert!(
            seen.contains("hostname") || seen.contains("whois"),
            "no fallback ever fired: {seen:?}"
        );
    }

    #[test]
    fn name_reported() {
        assert_eq!(service().name(), "EdgeScape");
    }
}
