//! DNS LOC records (RFC 1876).
//!
//! "DNS LOC records, while accurate, are not required and are therefore
//! not always available" (Section III-B). We model a sparse database:
//! a small fraction of interfaces publish a LOC record, and when present
//! it is accurate to well under a mile.

use crate::MapContext;
use geotopo_geo::GeoPoint;
use rand::Rng;
use std::net::Ipv4Addr;

/// A sparse, accurate LOC-record database.
#[derive(Debug, Clone)]
pub struct DnsLocDb {
    /// Probability an interface publishes a LOC record.
    pub availability: f64,
    /// Seed of this synthetic zone.
    pub seed: u64,
}

impl DnsLocDb {
    /// Creates a database with the default (5%) availability.
    pub fn new(seed: u64) -> Self {
        DnsLocDb {
            availability: 0.05,
            seed,
        }
    }

    /// The LOC record for `ip`, if one is published.
    pub fn lookup(&self, ip: Ipv4Addr, ctx: &MapContext) -> Option<GeoPoint> {
        let mut rng = crate::ip_rng(self.seed ^ 0xD5, ip);
        if rng.random::<f64>() >= self.availability {
            return None;
        }
        // Sub-mile accuracy: jitter ~0.005 degrees.
        let lat = (ctx.true_location.lat() + rng.random_range(-0.005..0.005)).clamp(-90.0, 90.0);
        let lon = ctx.true_location.lon() + rng.random_range(-0.005..0.005);
        Some(GeoPoint::new_unchecked(lat, lon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_bgp::AsId;

    fn ctx() -> MapContext {
        MapContext::new(GeoPoint::new(48.86, 2.35).unwrap(), AsId(1))
    }

    #[test]
    fn availability_fraction_respected() {
        let db = DnsLocDb::new(3);
        let mut found = 0;
        let n = 20_000u32;
        for i in 0..n {
            if db.lookup(Ipv4Addr::from(0x01000000 + i), &ctx()).is_some() {
                found += 1;
            }
        }
        let frac = found as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.01, "availability {frac}");
    }

    #[test]
    fn records_are_accurate() {
        let db = DnsLocDb::new(4);
        for i in 0..5000u32 {
            let ip = Ipv4Addr::from(0x02000000 + i);
            if let Some(p) = db.lookup(ip, &ctx()) {
                let d = geotopo_geo::haversine_miles(&p, &ctx().true_location);
                assert!(d < 1.0, "LOC error {d} miles");
            }
        }
    }

    #[test]
    fn deterministic_per_ip() {
        let db = DnsLocDb::new(5);
        let ip = "7.7.7.7".parse().unwrap();
        assert_eq!(db.lookup(ip, &ctx()), db.lookup(ip, &ctx()));
    }
}
