//! A NetGeo-like geolocation service.
//!
//! "CAIDA's NetGeo is a database that contains mappings from IP
//! addresses, domain names and AS numbers to latitude/longitude values.
//! NetGeo's database is built using whois lookups" (Section II). It is
//! the ancestor IxMapper extends; having it in the toolbox lets the
//! accuracy study show *why* hostname-based mapping was worth building:
//! whois-only mapping collapses each organization onto its registered
//! headquarters, so geographically dispersed ASes are mapped miles —
//! often continents — off.

use crate::orgdb::OrgDb;
use crate::{GeoMapper, MapContext};
use geotopo_geo::GeoPoint;
use rand::Rng;
use std::net::Ipv4Addr;

/// Simulated NetGeo: whois lookups only.
#[derive(Debug, Clone)]
pub struct NetGeo {
    orgs: OrgDb,
    /// Probability the whois record exists and parses.
    pub lookup_success: f64,
    seed: u64,
}

impl NetGeo {
    /// Creates the service over a whois registry.
    pub fn new(seed: u64, orgs: OrgDb) -> Self {
        NetGeo {
            orgs,
            lookup_success: 0.93,
            seed,
        }
    }
}

impl GeoMapper for NetGeo {
    fn name(&self) -> &'static str {
        "NetGeo"
    }

    fn map(&self, ip: Ipv4Addr, ctx: &MapContext) -> Option<GeoPoint> {
        let mut rng = crate::ip_rng(self.seed ^ 0x6F, ip);
        if rng.random::<f64>() >= self.lookup_success {
            return None;
        }
        self.orgs.get(ctx.asn).map(|rec| rec.headquarters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geotopo_bgp::AsId;

    fn service() -> NetGeo {
        let mut orgs = OrgDb::new();
        orgs.insert(AsId(42), "isp0042", GeoPoint::new(40.71, -74.01).unwrap());
        NetGeo::new(5, orgs)
    }

    #[test]
    fn maps_to_headquarters_regardless_of_true_location() {
        let svc = service();
        let hq = GeoPoint::new(40.71, -74.01).unwrap();
        for (lat, lon) in [(40.7, -74.0), (34.0, -118.0), (35.68, 139.69)] {
            let ctx = MapContext::new(GeoPoint::new(lat, lon).unwrap(), AsId(42));
            let mut mapped_any = false;
            for i in 0..50u32 {
                if let Some(p) = svc.map(Ipv4Addr::from(0x21000000 + i), &ctx) {
                    assert_eq!(p, hq);
                    mapped_any = true;
                }
            }
            assert!(mapped_any);
        }
    }

    #[test]
    fn unknown_as_is_unmapped() {
        let svc = service();
        let ctx = MapContext::new(GeoPoint::new(0.0, 0.0).unwrap(), AsId(999));
        assert_eq!(svc.map("1.2.3.4".parse().unwrap(), &ctx), None);
    }

    #[test]
    fn lookup_failure_rate() {
        let svc = service();
        let ctx = MapContext::new(GeoPoint::new(40.7, -74.0).unwrap(), AsId(42));
        let n = 20_000u32;
        let unmapped = (0..n)
            .filter(|&i| svc.map(Ipv4Addr::from(0x22000000 + i), &ctx).is_none())
            .count();
        let frac = unmapped as f64 / n as f64;
        assert!((frac - 0.07).abs() < 0.02, "unmapped {frac}");
    }

    #[test]
    fn hq_bias_error_grows_with_dispersal() {
        // The defining failure mode: a router in Tokyo owned by a
        // New-York-registered org maps ~6,700 miles off.
        let svc = service();
        let ctx = MapContext::new(GeoPoint::new(35.68, 139.69).unwrap(), AsId(42));
        let p = (0..100u32)
            .find_map(|i| svc.map(Ipv4Addr::from(0x23000000 + i), &ctx))
            .expect("some lookup succeeds");
        let err = geotopo_geo::haversine_miles(&p, &ctx.true_location);
        assert!(err > 5000.0, "error only {err} miles");
    }
}
