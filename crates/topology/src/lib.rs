//! Router-level Internet topology model and generators.
//!
//! The paper studies *router-level* maps: routers with geographic
//! locations, interfaces with IP addresses, links between interfaces, and
//! an AS label per router. This crate supplies:
//!
//! - [`graph`]: the [`Topology`] data structure (routers, interfaces,
//!   links, adjacency) with validated construction.
//! - [`spatial`]: a grid spatial index for nearest-neighbour queries
//!   during generation.
//! - [`metrics`]: degree distributions, connectivity, link-length
//!   profiles.
//! - [`latency`]: geographic latency labelling (the paper's motivating
//!   application for geography-aware generation).
//! - [`generate`]: topology generators —
//!   [`generate::GroundTruthConfig`] builds the synthetic Internet every
//!   experiment measures; [`generate::waxman`], [`generate::erdos_renyi`],
//!   [`generate::barabasi_albert`] and [`generate::transit_stub`] are the
//!   baseline models the paper discusses (Section II); and
//!   [`generate::geogen`] is the *geography-aware next-generation
//!   generator* the paper envisions in its conclusion — router graphs
//!   annotated with link latencies, AS identifiers and locations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod graph;
pub mod latency;
pub mod metrics;
pub mod spatial;

pub use graph::{
    AdjEntry, Interface, InterfaceId, Link, LinkId, Router, RouterId, Topology, TopologyBuilder,
    TopologyError, TopologyInvariant,
};
pub use spatial::SpatialIndex;
