//! A GT-ITM-style transit-stub hierarchy baseline.
//!
//! Structural models (Tiers, GT-ITM; the paper's [9], [41]) "chose a
//! different tack, building an explicit hierarchy into their topologies".
//! This generator builds a two-level transit-stub graph: a ring+chords
//! core of transit domains, each transit router sponsoring a handful of
//! stub domains. Every domain is its own AS, so the output exercises the
//! interdomain/intradomain analyses too.

use super::waxman::GenError;
use crate::graph::{RouterId, Topology, TopologyBuilder};
use geotopo_bgp::AsId;
use geotopo_geo::Region;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Transit-stub parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitStubConfig {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Routers per transit domain.
    pub transit_size: usize,
    /// Stub domains attached to each transit router.
    pub stubs_per_transit_router: usize,
    /// Routers per stub domain.
    pub stub_size: usize,
    /// Region for placement: transit routers spread widely, stub routers
    /// cluster near their attachment.
    pub region: Region,
    /// Degrees of clustering for stub placement.
    pub stub_spread_deg: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        TransitStubConfig {
            transit_domains: 4,
            transit_size: 8,
            stubs_per_transit_router: 2,
            stub_size: 6,
            region: geotopo_geo::RegionSet::us(),
            stub_spread_deg: 0.5,
            seed: 0,
        }
    }
}

/// Generates a transit-stub topology. AS numbering: transit domains get
/// `AsId(1..)`, stub domains follow.
///
/// # Errors
///
/// All size parameters must be nonzero.
pub fn transit_stub(cfg: &TransitStubConfig) -> Result<Topology, GenError> {
    if cfg.transit_domains == 0 {
        return Err(GenError::BadParameter("transit_domains"));
    }
    if cfg.transit_size == 0 {
        return Err(GenError::BadParameter("transit_size"));
    }
    if cfg.stub_size == 0 {
        return Err(GenError::BadParameter("stub_size"));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Ring + chords per transit domain, domain ring, star + gateway per
    // stub domain.
    let n_transit = cfg.transit_domains * cfg.transit_size;
    let n_stub_domains = n_transit * cfg.stubs_per_transit_router;
    let est_routers = n_transit + n_stub_domains * cfg.stub_size;
    let est_links = cfg.transit_domains * (cfg.transit_size + cfg.transit_size / 3)
        + cfg.transit_domains
        + n_stub_domains * cfg.stub_size;
    let mut b = TopologyBuilder::with_capacity(est_routers, est_links);
    let mut next_as = 1u32;

    // Transit domains: each a ring with chords; domains connected in a
    // ring of domains (via their first routers) to keep the core whole.
    let mut transit_routers: Vec<Vec<RouterId>> = Vec::new();
    for _ in 0..cfg.transit_domains {
        let asn = AsId(next_as);
        next_as += 1;
        let anchor = super::uniform_in_region(&mut rng, &cfg.region);
        let members: Vec<RouterId> = (0..cfg.transit_size)
            .map(|_| {
                let p = super::jitter_in_region(&mut rng, &anchor, 2.0, &cfg.region);
                b.add_router(p, asn)
            })
            .collect();
        for i in 0..members.len() {
            let j = (i + 1) % members.len();
            if members.len() > 1 && !b.has_link(members[i], members[j]) {
                b.add_link_auto(members[i], members[j]).expect("valid"); // lint: allow(unwrap): distinct routers, link checked absent
            }
        }
        // A couple of chords for redundancy.
        for _ in 0..(cfg.transit_size / 3) {
            let i = rng.random_range(0..members.len());
            let j = rng.random_range(0..members.len());
            if i != j && !b.has_link(members[i], members[j]) {
                b.add_link_auto(members[i], members[j]).expect("valid"); // lint: allow(unwrap): distinct routers, link checked absent
            }
        }
        transit_routers.push(members);
    }
    for k in 0..transit_routers.len() {
        let l = (k + 1) % transit_routers.len();
        if k != l && !b.has_link(transit_routers[k][0], transit_routers[l][0]) {
            b.add_link_auto(transit_routers[k][0], transit_routers[l][0])
                .expect("valid"); // lint: allow(unwrap): distinct routers, link checked absent
        }
    }

    // Stub domains: a small tree of routers hanging off each transit
    // router, clustered tightly around it.
    for domain in &transit_routers {
        for &tr in domain {
            let anchor = b.router(tr).expect("added").location; // lint: allow(unwrap): router just added
            for _ in 0..cfg.stubs_per_transit_router {
                let asn = AsId(next_as);
                next_as += 1;
                let members: Vec<RouterId> = (0..cfg.stub_size)
                    .map(|_| {
                        let p = super::jitter_in_region(
                            &mut rng,
                            &anchor,
                            cfg.stub_spread_deg,
                            &cfg.region,
                        );
                        b.add_router(p, asn)
                    })
                    .collect();
                // Star within the stub, gateway link to the transit router.
                for &m in &members[1..] {
                    b.add_link_auto(members[0], m).expect("valid"); // lint: allow(unwrap): distinct routers within one stub
                }
                b.add_link_auto(members[0], tr).expect("valid"); // lint: allow(unwrap): distinct routers, link checked absent
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn rejects_zero_sizes() {
        let cfg = TransitStubConfig {
            transit_domains: 0,
            ..Default::default()
        };
        assert!(transit_stub(&cfg).is_err());
    }

    #[test]
    fn expected_node_count() {
        let cfg = TransitStubConfig::default();
        let t = transit_stub(&cfg).unwrap();
        let transit = cfg.transit_domains * cfg.transit_size;
        let stubs = transit * cfg.stubs_per_transit_router * cfg.stub_size;
        assert_eq!(t.num_routers(), transit + stubs);
    }

    #[test]
    fn graph_is_connected() {
        let t = transit_stub(&TransitStubConfig::default()).unwrap();
        assert!((metrics::giant_component_fraction(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interdomain_links_are_minority() {
        let t = transit_stub(&TransitStubConfig::default()).unwrap();
        let intra = metrics::intradomain_fraction(&t);
        assert!(intra > 0.5, "intradomain fraction {intra}");
    }

    #[test]
    fn many_ases_present() {
        let t = transit_stub(&TransitStubConfig::default()).unwrap();
        let ases: std::collections::HashSet<_> = t.routers().map(|(_, r)| r.asn).collect();
        let cfg = TransitStubConfig::default();
        let expected = cfg.transit_domains
            + cfg.transit_domains * cfg.transit_size * cfg.stubs_per_transit_router;
        assert_eq!(ases.len(), expected);
    }

    #[test]
    fn stub_links_are_short() {
        let t = transit_stub(&TransitStubConfig::default()).unwrap();
        // Median link is a stub link: tightly clustered, tens of miles.
        let mut lengths = metrics::link_lengths_miles(&t);
        lengths.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = lengths[lengths.len() / 2];
        assert!(median < 150.0, "median length {median}");
    }
}
