//! Topology generators.
//!
//! - [`ground_truth`]: the synthetic geographic Internet that every
//!   experiment in the reproduction measures (the paper's real-world
//!   counterpart is the Internet itself).
//! - [`waxman`]: the Waxman model [38] — uniform random placement,
//!   exponentially distance-decaying connection probability.
//! - [`erdos_renyi`]: the Erdős–Rényi random graph [10].
//! - [`barabasi_albert`]: preferential attachment [2].
//! - [`transit_stub`]: a GT-ITM-style two-level hierarchy [41].
//! - [`geogen`]: the geography-aware next-generation generator the paper
//!   envisions — population-driven placement, mixed distance-sensitive /
//!   distance-independent link formation, AS labels and latencies.

pub mod ba;
pub mod brite;
pub mod er;
pub mod geogen;
pub mod ground_truth;
pub mod hier;
pub mod waxman;

pub use ba::{barabasi_albert, BarabasiAlbertConfig};
pub use brite::{brite, BriteConfig, Placement};
pub use er::{erdos_renyi, ErdosRenyiConfig};
pub use geogen::{geogen, GeoGenConfig, GeoGenOutput};
pub use ground_truth::{GroundTruth, GroundTruthConfig, RegionProfile};
pub use hier::{transit_stub, TransitStubConfig};
pub use waxman::{waxman, WaxmanConfig};

use geotopo_geo::{GeoPoint, Region};
use rand::Rng;

/// Draws a point uniformly at random inside a region (by angle — fine for
/// the mid-latitude study regions).
pub(crate) fn uniform_in_region<R: Rng + ?Sized>(rng: &mut R, region: &Region) -> GeoPoint {
    let lat = rng.random_range(region.south..region.north);
    let off = rng.random_range(0.0..region.lon_span());
    let mut lon = region.west + off;
    if lon > 180.0 {
        lon -= 360.0;
    }
    GeoPoint::new_unchecked(lat, lon)
}

/// One standard-normal draw (Box–Muller, cosine branch).
pub(crate) fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Jitters a point by an isotropic Gaussian of `sigma_deg` degrees,
/// clamped into `region`.
pub(crate) fn jitter_in_region<R: Rng + ?Sized>(
    rng: &mut R,
    p: &GeoPoint,
    sigma_deg: f64,
    region: &Region,
) -> GeoPoint {
    let lat = p.lat() + std_normal(rng) * sigma_deg;
    let lon = p.lon() + std_normal(rng) * sigma_deg;
    region.clamp(&GeoPoint::new_unchecked(lat.clamp(-90.0, 90.0), lon))
}
