//! The Waxman topology model.
//!
//! Waxman [38] places `n` nodes uniformly at random in the plane and
//! connects each pair with probability
//!
//! ```text
//! f_W(d) = β · exp(−d / (α·L))
//! ```
//!
//! where `L` is the maximum distance between nodes, `0 < α ≤ 1` the
//! distance sensitivity, and `0 < β ≤ 1` the link density. The paper
//! finds assumption (1) — uniform placement — badly wrong for the real
//! Internet, but assumption (2) — exponential distance decay — a good
//! description of most links (Section V). This baseline lets the bench
//! suite contrast both regimes.

use crate::graph::{RouterId, Topology, TopologyBuilder};
use geotopo_bgp::AsId;
use geotopo_geo::{haversine_miles, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Waxman generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WaxmanConfig {
    /// Number of nodes.
    pub n: usize,
    /// Distance-sensitivity parameter α in (0, 1].
    pub alpha: f64,
    /// Density parameter β in (0, 1].
    pub beta: f64,
    /// Region nodes are scattered over.
    pub region: Region,
    /// RNG seed.
    pub seed: u64,
}

/// Errors from baseline generators.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// A parameter was out of range.
    BadParameter(&'static str),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::BadParameter(p) => write!(f, "parameter out of range: {p}"),
        }
    }
}

impl std::error::Error for GenError {}

/// Generates a Waxman topology (O(n²) pair sampling).
///
/// All nodes share `AsId(1)` — the model has no AS notion.
///
/// # Errors
///
/// Rejects `n == 0` and α/β outside `(0, 1]`.
pub fn waxman(cfg: &WaxmanConfig) -> Result<Topology, GenError> {
    if cfg.n == 0 {
        return Err(GenError::BadParameter("n"));
    }
    if !(0.0 < cfg.alpha && cfg.alpha <= 1.0) {
        return Err(GenError::BadParameter("alpha"));
    }
    if !(0.0 < cfg.beta && cfg.beta <= 1.0) {
        return Err(GenError::BadParameter("beta"));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Acceptance is at most β per pair; the exponential factor thins it
    // further, so β·pairs/4 is a serviceable reservation.
    let est_links = (cfg.beta * (cfg.n * cfg.n.saturating_sub(1) / 2) as f64 / 4.0) as usize;
    let mut b = TopologyBuilder::with_capacity(cfg.n, est_links);
    let ids: Vec<RouterId> = (0..cfg.n)
        .map(|_| b.add_router(super::uniform_in_region(&mut rng, &cfg.region), AsId(1)))
        .collect();

    // L: maximum pairwise distance. Use the region diagonal as the upper
    // bound Waxman intends (exact max over pairs is O(n²) anyway; the
    // diagonal differs by < the sampling noise).
    let sw = geotopo_geo::GeoPoint::new_unchecked(cfg.region.south, cfg.region.west);
    let ne = geotopo_geo::GeoPoint::new_unchecked(cfg.region.north, cfg.region.east);
    let l = haversine_miles(&sw, &ne).max(1.0);

    for i in 0..cfg.n {
        for j in (i + 1)..cfg.n {
            let d = haversine_miles(
                &b.router(ids[i]).expect("added").location, // lint: allow(unwrap): router just added
                &b.router(ids[j]).expect("added").location, // lint: allow(unwrap): router just added
            );
            let p = cfg.beta * (-d / (cfg.alpha * l)).exp();
            if rng.random::<f64>() < p {
                b.add_link_auto(ids[i], ids[j]).expect("valid pair"); // lint: allow(unwrap): i < j distinct routers
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use geotopo_geo::RegionSet;

    fn cfg(n: usize, alpha: f64, beta: f64) -> WaxmanConfig {
        WaxmanConfig {
            n,
            alpha,
            beta,
            region: RegionSet::us(),
            seed: 42,
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(waxman(&cfg(0, 0.2, 0.3)).is_err());
        assert!(waxman(&cfg(10, 0.0, 0.3)).is_err());
        assert!(waxman(&cfg(10, 1.5, 0.3)).is_err());
        assert!(waxman(&cfg(10, 0.2, 0.0)).is_err());
    }

    #[test]
    fn generates_requested_nodes() {
        let t = waxman(&cfg(200, 0.2, 0.4)).unwrap();
        assert_eq!(t.num_routers(), 200);
        assert!(t.num_links() > 0);
    }

    #[test]
    fn higher_beta_means_more_links() {
        let lo = waxman(&cfg(200, 0.2, 0.1)).unwrap();
        let hi = waxman(&cfg(200, 0.2, 0.8)).unwrap();
        assert!(hi.num_links() > lo.num_links());
    }

    #[test]
    fn short_links_dominate_at_low_alpha() {
        let t = waxman(&cfg(400, 0.08, 0.8)).unwrap();
        let lengths = metrics::link_lengths_miles(&t);
        let short = lengths.iter().filter(|&&d| d < 1500.0).count();
        assert!(
            short as f64 / lengths.len() as f64 > 0.8,
            "short fraction {}",
            short as f64 / lengths.len() as f64
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = waxman(&cfg(100, 0.2, 0.3)).unwrap();
        let b = waxman(&cfg(100, 0.2, 0.3)).unwrap();
        assert_eq!(a.num_links(), b.num_links());
    }

    #[test]
    fn nodes_inside_region() {
        let t = waxman(&cfg(100, 0.2, 0.3)).unwrap();
        for (_, r) in t.routers() {
            assert!(RegionSet::us().contains(&r.location));
        }
    }
}
