//! A BRITE-flavoured generator.
//!
//! BRITE (Medina, Lakhina, Matta, Byers — the same group as the paper,
//! reference [25]) grows a router-level graph incrementally, joining
//! each new node to `m` existing nodes with probability combining
//! **preferential connectivity** (∝ current degree) and **Waxman
//! distance preference** (∝ exp(−d/(αL))). This reproduces BRITE's
//! router-level "incremental + preferential + locality" mode, with
//! optional heavy-tailed node placement.

use super::waxman::GenError;
use crate::graph::{RouterId, Topology, TopologyBuilder};
use geotopo_bgp::AsId;
use geotopo_geo::{haversine_miles, GeoPoint, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Node placement modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Uniform at random over the region.
    Uniform,
    /// Heavy-tailed: new nodes land near existing ones with Pareto
    /// offsets (BRITE's "heavy-tailed" plane assignment).
    HeavyTailed,
}

/// BRITE parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BriteConfig {
    /// Final node count.
    pub n: usize,
    /// Links per joining node.
    pub m: usize,
    /// Region for placement.
    pub region: Region,
    /// Placement mode.
    pub placement: Placement,
    /// Waxman α (distance sensitivity) of the locality factor.
    pub waxman_alpha: f64,
    /// Weight of preferential connectivity vs pure locality in [0, 1]:
    /// 1 = BA-like, 0 = Waxman-like; BRITE's default mixes both.
    pub preferential_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BriteConfig {
    /// BRITE-ish defaults over the US region.
    pub fn us_default(n: usize, seed: u64) -> Self {
        BriteConfig {
            n,
            m: 2,
            region: geotopo_geo::RegionSet::us(),
            placement: Placement::HeavyTailed,
            waxman_alpha: 0.1,
            preferential_weight: 0.5,
            seed,
        }
    }
}

/// Generates a BRITE-style topology.
///
/// # Errors
///
/// Rejects `m == 0`, `n <= m`, α outside (0, 1], and weights outside
/// [0, 1].
pub fn brite(cfg: &BriteConfig) -> Result<Topology, GenError> {
    if cfg.m == 0 {
        return Err(GenError::BadParameter("m"));
    }
    if cfg.n <= cfg.m {
        return Err(GenError::BadParameter("n"));
    }
    if !(0.0 < cfg.waxman_alpha && cfg.waxman_alpha <= 1.0) {
        return Err(GenError::BadParameter("waxman_alpha"));
    }
    if !(0.0..=1.0).contains(&cfg.preferential_weight) {
        return Err(GenError::BadParameter("preferential_weight"));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Seed clique plus m links per joining node.
    let est_links = cfg.m * (cfg.m + 1) / 2 + cfg.m * (cfg.n - cfg.m - 1);
    let mut b = TopologyBuilder::with_capacity(cfg.n, est_links);

    // Region scale L for the Waxman factor: the box diagonal.
    let sw = GeoPoint::new_unchecked(cfg.region.south, cfg.region.west);
    let ne = GeoPoint::new_unchecked(cfg.region.north, cfg.region.east);
    let l = haversine_miles(&sw, &ne).max(1.0);

    let mut positions: Vec<GeoPoint> = Vec::with_capacity(cfg.n);
    let mut degrees: Vec<f64> = Vec::with_capacity(cfg.n);
    let mut ids: Vec<RouterId> = Vec::with_capacity(cfg.n);

    let place = |rng: &mut StdRng, existing: &[GeoPoint]| -> GeoPoint {
        match cfg.placement {
            Placement::Uniform => super::uniform_in_region(rng, &cfg.region),
            Placement::HeavyTailed => {
                if existing.is_empty() || rng.random::<f64>() < 0.25 {
                    super::uniform_in_region(rng, &cfg.region)
                } else {
                    let parent = existing[rng.random_range(0..existing.len())];
                    // Pareto(0.1°, 1.0) offset with uniform bearing.
                    let u: f64 = 1.0 - rng.random::<f64>();
                    let r_deg = (0.1 / u).min(cfg.region.lat_span());
                    let theta = rng.random_range(0.0..std::f64::consts::TAU);
                    let p = GeoPoint::new_unchecked(
                        (parent.lat() + r_deg * theta.sin()).clamp(-89.9, 89.9),
                        parent.lon() + r_deg * theta.cos(),
                    );
                    cfg.region.clamp(&p)
                }
            }
        }
    };

    // Seed clique of m+1 nodes.
    for _ in 0..=cfg.m {
        let p = place(&mut rng, &positions);
        ids.push(b.add_router(p, AsId(1)));
        positions.push(p);
        degrees.push(0.0);
    }
    for i in 0..=cfg.m {
        for j in (i + 1)..=cfg.m {
            b.add_link_auto(ids[i], ids[j]).expect("seed clique"); // lint: allow(unwrap): distinct seed-clique indices
            degrees[i] += 1.0;
            degrees[j] += 1.0;
        }
    }

    // Incremental growth.
    for _ in (cfg.m + 1)..cfg.n {
        let p = place(&mut rng, &positions);
        let new_idx = positions.len();
        ids.push(b.add_router(p, AsId(1)));
        positions.push(p);
        degrees.push(0.0);

        // Joint weights over existing nodes.
        let mut weights: Vec<f64> = Vec::with_capacity(new_idx);
        let mut total = 0.0;
        for j in 0..new_idx {
            let d = haversine_miles(&p, &positions[j]);
            let locality = (-d / (cfg.waxman_alpha * l)).exp();
            let pref = degrees[j].max(1.0);
            let w = cfg.preferential_weight * pref * locality
                + (1.0 - cfg.preferential_weight) * locality;
            weights.push(w);
            total += w;
        }
        let mut chosen: Vec<usize> = Vec::with_capacity(cfg.m);
        let mut guard = 0;
        while chosen.len() < cfg.m && guard < 10_000 {
            guard += 1;
            if total <= 0.0 {
                // Degenerate locality: fall back to uniform choice.
                let j = rng.random_range(0..new_idx);
                if !chosen.contains(&j) {
                    chosen.push(j);
                }
                continue;
            }
            let mut draw = rng.random::<f64>() * total;
            let mut pick = new_idx - 1;
            for (j, w) in weights.iter().enumerate() {
                draw -= w;
                if draw <= 0.0 {
                    pick = j;
                    break;
                }
            }
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for j in chosen {
            b.add_link_auto(ids[new_idx], ids[j]).expect("new pair"); // lint: allow(unwrap): chosen excludes new_idx; both routers exist
            degrees[new_idx] += 1.0;
            degrees[j] += 1.0;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use geotopo_geo::RegionSet;

    fn cfg(n: usize) -> BriteConfig {
        BriteConfig::us_default(n, 13)
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut c = cfg(100);
        c.m = 0;
        assert!(brite(&c).is_err());
        let mut c = cfg(100);
        c.n = 2;
        assert!(brite(&c).is_err());
        let mut c = cfg(100);
        c.waxman_alpha = 0.0;
        assert!(brite(&c).is_err());
        let mut c = cfg(100);
        c.preferential_weight = 1.5;
        assert!(brite(&c).is_err());
    }

    #[test]
    fn connected_with_expected_edges() {
        let t = brite(&cfg(500)).unwrap();
        assert_eq!(t.num_routers(), 500);
        assert!((metrics::giant_component_fraction(&t) - 1.0).abs() < 1e-12);
        let expected = 3 + 2 * (500 - 3);
        assert!((t.num_links() as i64 - expected as i64).abs() < 30);
    }

    #[test]
    fn mixes_hub_growth_and_locality() {
        let t = brite(&cfg(1500)).unwrap();
        // Preferential component: a heavy degree tail.
        let max_deg = metrics::degree_distribution(&t).len() - 1;
        assert!(max_deg > 15, "max degree {max_deg}");
        // Locality component: most links shorter than the region scale.
        let lengths = metrics::link_lengths_miles(&t);
        let short = lengths.iter().filter(|&&d| d < 1200.0).count();
        assert!(
            short as f64 / lengths.len() as f64 > 0.7,
            "short fraction {}",
            short as f64 / lengths.len() as f64
        );
    }

    #[test]
    fn pure_preferential_limit_grows_bigger_hubs() {
        let mut pref = cfg(1200);
        pref.preferential_weight = 1.0;
        pref.placement = Placement::Uniform;
        let mut local = cfg(1200);
        local.preferential_weight = 0.0;
        local.placement = Placement::Uniform;
        let tp = brite(&pref).unwrap();
        let tl = brite(&local).unwrap();
        let max = |t: &crate::graph::Topology| metrics::degree_distribution(t).len() - 1;
        assert!(
            max(&tp) > max(&tl),
            "pref {} vs local {}",
            max(&tp),
            max(&tl)
        );
    }

    #[test]
    fn heavy_tailed_placement_clusters() {
        let mut ht = cfg(1500);
        ht.placement = Placement::HeavyTailed;
        let mut un = cfg(1500);
        un.placement = Placement::Uniform;
        let t_ht = brite(&ht).unwrap();
        let t_un = brite(&un).unwrap();
        let dim = |t: &crate::graph::Topology| {
            let pts: Vec<_> = t.routers().map(|(_, r)| r.location).collect();
            geotopo_geo::box_counting_dimension(
                &RegionSet::us(),
                &pts,
                &geotopo_geo::boxcount::default_scales(),
            )
            .unwrap()
            .dimension
        };
        assert!(dim(&t_ht) < dim(&t_un), "{} !< {}", dim(&t_ht), dim(&t_un));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = brite(&cfg(300)).unwrap();
        let b = brite(&cfg(300)).unwrap();
        assert_eq!(a.num_links(), b.num_links());
    }
}
