//! The Erdős–Rényi random graph baseline.
//!
//! G(n, p): every pair connected independently with probability `p`,
//! nodes placed uniformly in a region. The paper notes this model
//! "typically yields a graph which is not connected when p is chosen so
//! that the resulting graph is sparse" — a property the tests verify.

use super::waxman::GenError;
use crate::graph::{RouterId, Topology, TopologyBuilder};
use geotopo_bgp::AsId;
use geotopo_geo::Region;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Erdős–Rényi parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErdosRenyiConfig {
    /// Number of nodes.
    pub n: usize,
    /// Independent edge probability.
    pub p: f64,
    /// Region nodes are scattered over (placement is decorative: the
    /// model itself is geometry-free).
    pub region: Region,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a G(n, p) topology.
///
/// # Errors
///
/// Rejects `n == 0` and `p` outside `[0, 1]`.
pub fn erdos_renyi(cfg: &ErdosRenyiConfig) -> Result<Topology, GenError> {
    if cfg.n == 0 {
        return Err(GenError::BadParameter("n"));
    }
    if !(0.0..=1.0).contains(&cfg.p) {
        return Err(GenError::BadParameter("p"));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Expected edges: p·n(n−1)/2.
    let est_links = (cfg.p * (cfg.n * cfg.n.saturating_sub(1) / 2) as f64) as usize;
    let mut b = TopologyBuilder::with_capacity(cfg.n, est_links);
    let ids: Vec<RouterId> = (0..cfg.n)
        .map(|_| b.add_router(super::uniform_in_region(&mut rng, &cfg.region), AsId(1)))
        .collect();
    for i in 0..cfg.n {
        for j in (i + 1)..cfg.n {
            if rng.random::<f64>() < cfg.p {
                b.add_link_auto(ids[i], ids[j]).expect("valid pair"); // lint: allow(unwrap): i < j over existing routers
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use geotopo_geo::RegionSet;

    fn cfg(n: usize, p: f64) -> ErdosRenyiConfig {
        ErdosRenyiConfig {
            n,
            p,
            region: RegionSet::europe(),
            seed: 7,
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(erdos_renyi(&cfg(0, 0.5)).is_err());
        assert!(erdos_renyi(&cfg(10, 1.5)).is_err());
        assert!(erdos_renyi(&cfg(10, -0.1)).is_err());
    }

    #[test]
    fn edge_count_near_expectation() {
        let n = 300;
        let p = 0.02;
        let t = erdos_renyi(&cfg(n, p)).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = t.num_links() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "got {got} want ~{expected}"
        );
    }

    #[test]
    fn p_zero_yields_no_links() {
        let t = erdos_renyi(&cfg(50, 0.0)).unwrap();
        assert_eq!(t.num_links(), 0);
    }

    #[test]
    fn sparse_graph_usually_disconnected() {
        // With p just above 1/n but below ln(n)/n, G(n,p) has a giant
        // component yet is almost surely not fully connected.
        let n = 400;
        let t = erdos_renyi(&cfg(n, 1.5 / n as f64)).unwrap();
        let sizes = metrics::component_sizes(&t);
        assert!(sizes.len() > 1, "unexpectedly connected");
        assert!(metrics::giant_component_fraction(&t) > 0.2);
    }

    #[test]
    fn link_lengths_are_distance_blind() {
        // Mean link length should be close to the mean pairwise distance
        // (no distance preference at all).
        let t = erdos_renyi(&cfg(300, 0.02)).unwrap();
        let lengths = metrics::link_lengths_miles(&t);
        let mean: f64 = lengths.iter().sum::<f64>() / lengths.len() as f64;
        // Europe box spans ~1,400 miles diagonally; uniform pairs average
        // several hundred miles. Distance-sensitive models come out far
        // shorter than 300; ER must not.
        assert!(mean > 300.0, "mean length {mean}");
    }
}
