//! The ground-truth synthetic Internet.
//!
//! Everything the paper measures about the real Internet, this generator
//! builds into a synthetic one, so the full measurement-and-analysis
//! pipeline has a world to observe:
//!
//! - **Routers follow people, superlinearly.** Each economic region gets
//!   a router budget proportional to its online users (Table III's
//!   near-constant online-per-interface ratio), and routers are placed by
//!   sampling patches with probability ∝ population^α (Figure 2's
//!   superlinear fits, α per region).
//! - **ASes are heavy-tailed and geographically structured.** AS sizes
//!   are Zipf; the number of distinct locations grows like size^γ with
//!   multiplicative noise (Figures 7–8); ASes above a size threshold are
//!   globally dispersed, small ASes are usually regional but occasionally
//!   worldwide (Figures 9–10).
//! - **Links prefer short distances.** Most extra links are formed with
//!   an exponential distance preference exp(−d/L) using per-region decay
//!   lengths (Figures 4–5, Table V); a minority is distance-independent
//!   long-haul (Figure 6); interdomain links arise from metro peering and
//!   long-haul transit (Table VI).
//! - **Addresses come from per-AS allocations** advertised (mostly) in a
//!   BGP table, enabling the longest-prefix-match AS mapping of
//!   Section III-C.

use crate::graph::{RouterId, Topology, TopologyBuilder};
use crate::spatial::SpatialIndex;
use geotopo_bgp::alloc::{AsAllocation, PrefixAllocator};
use geotopo_bgp::AsId;
use geotopo_geo::GeoPoint;
use geotopo_population::{EconomicProfile, PointSampler, PopulationGrid, WorldModel};
use geotopo_stats::{ChunkExec, SerialExec, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Placement/link parameters for one economic region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionProfile {
    /// Economic calibration (population, online users, development).
    pub economic: EconomicProfile,
    /// Superlinear placement exponent α (Figure 2 slope target).
    pub alpha: f64,
    /// Waxman decay length in miles (Figure 5 / Table V target).
    pub decay_miles: f64,
    /// Gaussian jitter (degrees) of routers around their metro centre —
    /// the metro/access-network radius. Scaled per region: a Tokyo-area
    /// access network is geographically tighter than a US one.
    pub metro_jitter_deg: f64,
}

/// Configuration for the ground-truth generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruthConfig {
    /// Master RNG seed; the entire world is a pure function of it.
    pub seed: u64,
    /// Total routers worldwide.
    pub total_routers: usize,
    /// Target mean router degree (links ≈ degree·routers/2).
    pub mean_degree: f64,
    /// Average routers per AS (sets the AS count).
    pub as_router_ratio: f64,
    /// Zipf exponent of AS sizes.
    pub as_size_zipf: f64,
    /// Locations grow like size^γ.
    pub location_gamma: f64,
    /// Lognormal σ of location-count noise.
    pub location_noise: f64,
    /// ASes at or above this many routers are globally dispersed.
    pub global_size_threshold: usize,
    /// Probability a small AS is worldwide anyway.
    pub wild_dispersal_prob: f64,
    /// Share of extra links formed with exponential distance preference.
    pub frac_distance_sensitive: f64,
    /// Share of extra links that are distance-independent long-haul.
    pub frac_long_haul: f64,
    /// Probability a distance-sensitive link stays within one AS.
    pub intra_bias: f64,
    /// Probability a long-haul link stays within one (backbone) AS.
    pub long_haul_intra_prob: f64,
    /// Population raster resolution (arc-minutes).
    pub pop_resolution_arcmin: f64,
    /// Per-region profiles.
    pub regions: Vec<RegionProfile>,
}

impl GroundTruthConfig {
    /// Paper-calibrated defaults at a given scale.
    ///
    /// Region α targets follow Figure 2 (US ≈ 1.2, Europe ≈ 1.6,
    /// Japan ≈ 1.7); decay lengths follow Section V (αL ≈ 140 mi for US
    /// and Japan, ≈ 80 mi for Europe).
    pub fn at_scale(total_routers: usize, seed: u64) -> Self {
        let world = WorldModel::paper();
        // α and decay are *generator-side* knobs calibrated so that the
        // *measured* values land on the paper's numbers. Two systematic
        // gaps separate the two: (a) patch-level regression flattens the
        // cell-level placement exponent (within-patch heterogeneity), so
        // generator α runs above the target Figure 2 slope; (b) the
        // city-granularity of geolocation inflates measured link lengths,
        // so generator decay runs at roughly half the target αL of
        // Figure 5 / Table V.
        let region_params: &[(&str, f64, f64, f64)] = &[
            ("Africa", 1.9, 70.0, 0.25),
            ("South America", 1.9, 70.0, 0.25),
            ("Mexico", 1.9, 70.0, 0.25),
            ("W. Europe", 1.9, 40.0, 0.15),
            ("Japan", 2.6, 60.0, 0.08),
            ("Australia", 1.9, 70.0, 0.25),
            ("USA", 1.7, 70.0, 0.22),
        ];
        let regions = region_params
            .iter()
            .map(|(name, alpha, decay, jitter)| RegionProfile {
                economic: world
                    .profile(name)
                    .unwrap_or_else(|| panic!("world model misses {name}"))
                    .clone(),
                alpha: *alpha,
                decay_miles: *decay,
                metro_jitter_deg: *jitter,
            })
            .collect();
        GroundTruthConfig {
            seed,
            total_routers,
            mean_degree: 3.4,
            // Most real ASes are tiny stubs: a heavy Zipf (s = 1.2) over
            // many ASes puts ~80% of them at 1–3 routers (hence 1–2
            // locations and zero-area hulls, Figure 9).
            as_router_ratio: 10.0,
            as_size_zipf: 1.3,
            location_gamma: 0.7,
            location_noise: 0.45,
            global_size_threshold: (total_routers / 300).max(50),
            wild_dispersal_prob: 0.08,
            frac_distance_sensitive: 0.80,
            frac_long_haul: 0.08,
            intra_bias: 0.65,
            long_haul_intra_prob: 0.35,
            pop_resolution_arcmin: 15.0,
            regions,
        }
    }

    /// A very small world for unit tests (~1,200 routers).
    pub fn tiny(seed: u64) -> Self {
        let mut c = Self::at_scale(1200, seed);
        c.pop_resolution_arcmin = 45.0;
        c.as_router_ratio = 15.0;
        c
    }

    /// A small world for integration tests and quick examples.
    pub fn small(seed: u64) -> Self {
        let mut c = Self::at_scale(6000, seed);
        c.pop_resolution_arcmin = 30.0;
        c
    }

    /// The default experiment scale (~25k routers, ~75k interfaces).
    pub fn default_scale(seed: u64) -> Self {
        Self::at_scale(25_000, seed)
    }

    /// The large benchmark scale (~100k routers, ~340k interfaces):
    /// big enough that data layout and peak RSS dominate, small enough
    /// for a CI smoke run.
    pub fn large(seed: u64) -> Self {
        Self::at_scale(100_000, seed)
    }

    /// Full paper scale (~250k routers, ~850k interfaces — the order of
    /// the paper's 704k Skitter + 268k Mercator interface datasets).
    pub fn paper(seed: u64) -> Self {
        Self::at_scale(250_000, seed)
    }

    /// Synthesizes region `i`'s population raster. Grids seed their own
    /// RNGs (`seed + 1000 + i`), so they can be built independently —
    /// and concurrently — of world generation, then passed to
    /// [`GroundTruth::generate_with_grids`].
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range region index or degenerate population
    /// config.
    pub fn population_grid(&self, i: usize) -> Result<PopulationGrid, GroundTruthError> {
        let rp = self
            .regions
            .get(i)
            .ok_or(GroundTruthError::BadConfig("region index"))?;
        let mut cfg = rp.economic.population_config();
        cfg.resolution_arcmin = self.pop_resolution_arcmin;
        cfg.generate(self.seed.wrapping_add(1000 + i as u64))
            .map_err(|e| GroundTruthError::Population(e.to_string()))
    }
}

/// Errors from ground-truth generation.
#[derive(Debug, Clone, PartialEq)]
pub enum GroundTruthError {
    /// A configuration field was out of range.
    BadConfig(&'static str),
    /// Population synthesis failed.
    Population(String),
    /// Address space exhausted (scale too large).
    AddressSpace,
}

impl std::fmt::Display for GroundTruthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroundTruthError::BadConfig(c) => write!(f, "bad config field: {c}"),
            GroundTruthError::Population(e) => write!(f, "population synthesis failed: {e}"),
            GroundTruthError::AddressSpace => write!(f, "IPv4 space exhausted at this scale"),
        }
    }
}

impl std::error::Error for GroundTruthError {}

/// Ground-truth AS metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
// analyze: allow(dead-pub): element of the pub as_records field; read via field access, never named
pub struct AsRecord {
    /// AS number.
    pub asn: AsId,
    /// Router count.
    pub size: usize,
    /// Number of metro locations.
    pub n_locations: usize,
    /// Registered headquarters (whois records point here).
    pub home: GeoPoint,
    /// Whether the AS is globally dispersed.
    pub global: bool,
}

/// The generated world: topology plus the side information the
/// measurement and mapping substrates need. Serializable so the
/// engine's artifact store can spill it to disk between stages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The router-level topology.
    pub topology: Topology,
    /// Per-AS address allocations (for BGP synthesis and destination
    /// sampling).
    pub allocations: Vec<AsAllocation>,
    /// Per-AS metadata.
    pub as_records: Vec<AsRecord>,
    /// Region index (into `config.regions`) for each router.
    pub router_region: Vec<u16>,
    /// The configuration that produced this world.
    pub config: GroundTruthConfig,
}

impl GroundTruth {
    /// Generates the world. Deterministic in `config.seed`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range configuration or (at absurd scales)
    /// address-space exhaustion.
    pub fn generate(config: GroundTruthConfig) -> Result<Self, GroundTruthError> {
        Self::generate_exec(config, &SerialExec)
    }

    /// [`GroundTruth::generate`] with an explicit chunk executor for the
    /// interior fan-out. Byte-identical to the serial path at any
    /// parallelism: each region's raster seeds its own RNG and consumes
    /// none of the world RNG stream, and chunk results merge in index
    /// order.
    ///
    /// Each region job reduces its raster to the (small) point sampler
    /// and drops it before returning, so peak memory holds at most one
    /// raster per in-flight chunk — the serial streaming path's
    /// bounded-RSS property, relaxed only by the executor's width.
    ///
    /// # Errors
    ///
    /// As [`GroundTruth::generate`].
    // analyze: allow(dead-pub): exec-seam twin of `generate` for callers
    // without pre-built grids; the engine path enters via
    // `generate_with_grids_exec` instead
    pub fn generate_exec(
        config: GroundTruthConfig,
        exec: &impl ChunkExec,
    ) -> Result<Self, GroundTruthError> {
        validate(&config)?;
        // 1. Population grids per region, one independent chunk job per
        // region, merged in region-index order.
        let samplers: Vec<PointSampler> = exec
            .dispatch(config.regions.len(), &|i| {
                let grid = config.population_grid(i)?;
                grid.point_sampler(config.regions[i].alpha)
                    .map_err(|e| GroundTruthError::Population(e.to_string()))
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        Self::generate_with_samplers(config, samplers, exec)
    }

    /// Generates the world from pre-built per-region population grids
    /// (one per `config.regions` entry, in order — exactly the grids
    /// [`GroundTruthConfig::population_grid`] produces). Byte-identical
    /// to [`GroundTruth::generate`].
    ///
    /// # Errors
    ///
    /// As [`GroundTruth::generate`], plus a `BadConfig` error when the
    /// grid count does not match the region count.
    pub fn generate_with_grids(
        config: GroundTruthConfig,
        grids: &[&PopulationGrid],
    ) -> Result<Self, GroundTruthError> {
        Self::generate_with_grids_exec(config, grids, &SerialExec)
    }

    /// [`GroundTruth::generate_with_grids`] with an explicit chunk
    /// executor: per-region sampler construction becomes independent
    /// chunk jobs merged in region-index order. Byte-identical to the
    /// serial path at any parallelism.
    ///
    /// # Errors
    ///
    /// As [`GroundTruth::generate_with_grids`].
    pub fn generate_with_grids_exec(
        config: GroundTruthConfig,
        grids: &[&PopulationGrid],
        exec: &impl ChunkExec,
    ) -> Result<Self, GroundTruthError> {
        validate(&config)?;
        if grids.len() != config.regions.len() {
            return Err(GroundTruthError::BadConfig("population grid count"));
        }
        let samplers: Vec<PointSampler> = exec
            .dispatch(grids.len(), &|i| {
                grids[i]
                    .point_sampler(config.regions[i].alpha)
                    .map_err(|e| GroundTruthError::Population(e.to_string()))
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        Self::generate_with_samplers(config, samplers, exec)
    }

    /// The generation core: everything downstream of the population
    /// rasters, which enter only through their point samplers. The
    /// executor fans out the chunkable interiors (RNG-free tallies);
    /// everything threaded through the single world RNG stays serial.
    fn generate_with_samplers(
        config: GroundTruthConfig,
        samplers: Vec<PointSampler>,
        exec: &impl ChunkExec,
    ) -> Result<Self, GroundTruthError> {
        let mut rng = StdRng::seed_from_u64(config.seed);

        // 2. Router budgets ∝ online users.
        let total_online: f64 = config.regions.iter().map(|r| r.economic.online_users).sum();
        let budgets: Vec<f64> = config
            .regions
            .iter()
            .map(|r| r.economic.online_users / total_online * config.total_routers as f64)
            .collect();

        // 3. AS sizes: Zipf, at least one router each, summing exactly.
        let n_as = ((config.total_routers as f64 / config.as_router_ratio) as usize)
            .max(config.regions.len() * 3);
        let zipf = Zipf::new(n_as, config.as_size_zipf).expect("validated"); // lint: allow(unwrap): parameters validated above
        let mut sizes: Vec<usize> = (1..=n_as)
            .map(|k| ((zipf.pmf(k) * config.total_routers as f64).floor() as usize).max(1))
            .collect();
        let mut assigned: usize = sizes.iter().sum();
        // Trim or pad to match total exactly.
        let mut k = 0;
        while assigned > config.total_routers {
            if sizes[k % n_as] > 1 {
                sizes[k % n_as] -= 1;
                assigned -= 1;
            }
            k += 1;
        }
        let mut k = 0;
        while assigned < config.total_routers {
            sizes[k % n_as] += 1;
            assigned += 1;
            k += 1;
        }

        // 4. Per-AS geography: home region, locations, router positions.
        let region_alias = geotopo_stats::AliasTable::new(&budgets)
            .ok_or(GroundTruthError::BadConfig("regions"))?;

        let mut routers: Vec<(GeoPoint, AsId, u16)> = Vec::with_capacity(config.total_routers);
        // Packed location table. Routers are pushed in AS → location →
        // member order, so every (AS, location) member set is one
        // contiguous run of router ids: `loc_ranges[l] = (start, len)`.
        // Each AS owns the range `as_loc_off[a]..as_loc_off[a + 1]` of
        // the location table — CSR over locations, no nested Vecs.
        let mut loc_ranges: Vec<(u32, u32)> = Vec::with_capacity(n_as * 2);
        let mut as_loc_off: Vec<u32> = Vec::with_capacity(n_as + 1);
        as_loc_off.push(0);
        let mut as_records: Vec<AsRecord> = Vec::with_capacity(n_as);

        for (idx, &size) in sizes.iter().enumerate() {
            let asn = AsId(idx as u32 + 1);
            let home_region = region_alias.sample(&mut rng);
            // Location count: size^γ with lognormal noise, in [1, size].
            let noise = (super::std_normal(&mut rng) * config.location_noise).exp();
            let mut n_loc = ((size as f64).powf(config.location_gamma) * noise).round() as usize;
            n_loc = n_loc.clamp(1, size);
            let global = size >= config.global_size_threshold
                || rng.random::<f64>() < config.wild_dispersal_prob;

            // Draw metro centres. Global ASes sample worldwide (maximal
            // dispersal); regional ASes cluster — each new location is
            // the nearest of three candidates to the previous one, so a
            // regional AS's footprint is a chain of nearby metros rather
            // than a scatter across the whole region.
            let mut centers: Vec<(GeoPoint, u16)> = Vec::with_capacity(n_loc);
            for li in 0..n_loc {
                let region = if global {
                    region_alias.sample(&mut rng)
                } else {
                    home_region
                };
                let p = if global || li == 0 {
                    samplers[region].sample(&mut rng)
                } else {
                    let anchor = centers[li - 1].0;
                    // nearest-of-6 keeps a regional AS's footprint a
                    // tight chain of metros (its backbone edges then sit
                    // inside the distance-sensitive regime).
                    let mut best: Option<(GeoPoint, f64)> = None;
                    for _ in 0..6 {
                        let c = samplers[region].sample(&mut rng);
                        let d = geotopo_geo::haversine_miles(&c, &anchor);
                        if best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((c, d));
                        }
                    }
                    best.expect("three candidates drawn").0 // lint: allow(unwrap): loop always draws three candidates
                };
                centers.push((p, region as u16));
            }
            let home = centers[0].0;

            // Split routers across locations: one each, remainder Zipf.
            let mut counts = vec![1usize; n_loc];
            if size > n_loc {
                let splitter = Zipf::new(n_loc, 1.0).expect("n_loc >= 1"); // lint: allow(unwrap): n_loc >= 1 by construction
                for _ in 0..(size - n_loc) {
                    counts[splitter.sample(&mut rng) - 1] += 1;
                }
            }

            for (li, &(center, region)) in centers.iter().enumerate() {
                let start = routers.len() as u32;
                let region_box = &config.regions[region as usize].economic.region;
                for _ in 0..counts[li] {
                    let p = super::jitter_in_region(
                        &mut rng,
                        &center,
                        config.regions[region as usize].metro_jitter_deg,
                        region_box,
                    );
                    routers.push((p, asn, region));
                }
                loc_ranges.push((start, counts[li] as u32));
            }
            as_loc_off.push(loc_ranges.len() as u32);
            as_records.push(AsRecord {
                asn,
                size,
                n_locations: n_loc,
                home,
                global,
            });
        }

        // 5. Links, reserved up front at the degree target (slack for
        // the structural surplus small worlds can run over).
        let target_links = (config.mean_degree * config.total_routers as f64 / 2.0) as usize;
        let mut links: Vec<(u32, u32)> = Vec::with_capacity(target_links + target_links / 8);
        let mut link_set: HashSet<(u32, u32)> =
            HashSet::with_capacity(target_links + target_links / 8);
        let add_link =
            |links: &mut Vec<(u32, u32)>, set: &mut HashSet<(u32, u32)>, a: u32, b: u32| -> bool {
                if a == b {
                    return false;
                }
                let key = if a < b { (a, b) } else { (b, a) };
                if set.insert(key) {
                    links.push(key);
                    true
                } else {
                    false
                }
            };

        // 5a. Structural: per-AS location MST + per-location stars.
        for a_idx in 0..n_as {
            let locs = &loc_ranges[as_loc_off[a_idx] as usize..as_loc_off[a_idx + 1] as usize];
            // Stars within each location: the head is the range start,
            // members are the consecutive ids after it.
            for &(start, len) in locs {
                for m in start + 1..start + len {
                    add_link(&mut links, &mut link_set, start, m);
                }
                if len >= 6 {
                    // One redundancy chord inside big PoPs.
                    add_link(&mut links, &mut link_set, start + 1, start + len - 1);
                }
            }
            // Backbone tree over location heads with *exponential
            // distance preference*: head i attaches to an earlier head j
            // with probability ∝ exp(−d(i,j)/decay). Real intra-AS
            // backbones are themselves distance-driven (that is the
            // paper's central finding); a pure MST would instead imprint
            // the city-spacing distribution on f(d) as a spurious bump.
            let heads: Vec<u32> = locs.iter().map(|&(start, _)| start).collect();
            if heads.len() > 1 {
                let pos: Vec<GeoPoint> = heads.iter().map(|&h| routers[h as usize].0).collect();
                for i in 1..heads.len() {
                    let decay = config.regions[routers[heads[i] as usize].2 as usize].decay_miles;
                    let weights: Vec<f64> = (0..i)
                        .map(|j| (-geotopo_geo::haversine_miles(&pos[i], &pos[j]) / decay).exp())
                        .collect();
                    let total: f64 = weights.iter().sum();
                    let j = if total > 0.0 && total.is_finite() {
                        let mut draw = rng.random::<f64>() * total;
                        let mut pick = i - 1;
                        for (j, w) in weights.iter().enumerate() {
                            draw -= w;
                            if draw <= 0.0 {
                                pick = j;
                                break;
                            }
                        }
                        pick
                    } else {
                        // All earlier heads are effectively at infinity
                        // (global AS with far-flung sites): attach to the
                        // nearest one.
                        (0..i)
                            .min_by(|&a, &b| {
                                geotopo_geo::haversine_miles(&pos[i], &pos[a])
                                    .partial_cmp(&geotopo_geo::haversine_miles(&pos[i], &pos[b]))
                                    .expect("finite") // lint: allow(unwrap): haversine of valid coordinates is finite
                            })
                            .expect("i >= 1") // lint: allow(unwrap): 0..i is non-empty on this branch
                    };
                    add_link(&mut links, &mut link_set, heads[i], heads[j]);
                }
            }
        }

        // 5b. Extra links.
        let extra = target_links.saturating_sub(links.len());
        let n_ds = (extra as f64 * config.frac_distance_sensitive) as usize;
        let n_lh = (extra as f64 * config.frac_long_haul) as usize;
        let n_peer = extra.saturating_sub(n_ds + n_lh);

        let spatial = SpatialIndex::new(routers.iter().map(|r| r.0).collect(), 1.0);

        // Distance-sensitive links: true Waxman acceptance. A candidate
        // pair is accepted with probability exp(−d/decay), which makes
        // the ground-truth distance preference function exponential *by
        // construction* (Section V / Figure 5). With probability
        // `intra_bias` the candidate pair is drawn inside one AS
        // (weighted by its pair count); otherwise uniformly at random —
        // exp-accepted either way, so the global f(d) keeps its shape.
        // Per-AS member sets are contiguous router-id ranges (step 4's
        // push order), so an AS is just (start, len) — no copies.
        let as_ranges: Vec<(u32, u32)> = (0..n_as)
            .map(|a_idx| {
                let lo = as_loc_off[a_idx] as usize;
                let hi = as_loc_off[a_idx + 1] as usize;
                let start = loc_ranges[lo].0;
                let (ls, ll) = loc_ranges[hi - 1];
                (start, ls + ll - start)
            })
            .collect();
        let as_pair_weights: Vec<f64> = as_ranges
            .iter()
            .map(|&(_, len)| {
                let n = len as u64;
                (n * n.saturating_sub(1)) as f64
            })
            .collect();
        let as_pair_alias = geotopo_stats::AliasTable::new(&as_pair_weights);
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < n_ds && attempts < n_ds * 400 + 10_000 {
            attempts += 1;
            let (u, v) = if config.intra_bias > rng.random::<f64>() {
                match &as_pair_alias {
                    Some(alias) => {
                        let (start, len) = as_ranges[alias.sample(&mut rng)];
                        let u = start + rng.random_range(0..len as usize) as u32;
                        let v = start + rng.random_range(0..len as usize) as u32;
                        (u, v)
                    }
                    None => continue,
                }
            } else {
                (
                    rng.random_range(0..routers.len()) as u32,
                    rng.random_range(0..routers.len()) as u32,
                )
            };
            if u == v {
                continue;
            }
            let decay = config.regions[routers[u as usize].2 as usize].decay_miles;
            let d = geotopo_geo::haversine_miles(&routers[u as usize].0, &routers[v as usize].0);
            if rng.random::<f64>() < (-d / decay).exp() && add_link(&mut links, &mut link_set, u, v)
            {
                added += 1;
            }
        }

        // Long-haul: backbone ASes connect *distant* locations (at least
        // LONG_HAUL_MIN_MILES apart); a share is interdomain transit
        // between big ASes. The floor keeps long-haul links out of the
        // distance-sensitive regime: they form the flat f(d) tail of
        // Figure 6, not noise under the exponential of Figure 5.
        let backbone: Vec<usize> = as_records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.n_locations >= 3)
            .map(|(i, _)| i)
            .collect();
        let backbone_weights: Vec<f64> = backbone
            .iter()
            .map(|&i| as_records[i].size as f64)
            .collect();
        let backbone_alias = geotopo_stats::AliasTable::new(&backbone_weights);
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < n_lh && attempts < n_lh * 20 + 100 {
            attempts += 1;
            let Some(alias) = backbone_alias.as_ref() else {
                break;
            };
            let a_idx = backbone[alias.sample(&mut rng)];
            let locs = &loc_ranges[as_loc_off[a_idx] as usize..as_loc_off[a_idx + 1] as usize];
            let li = rng.random_range(0..locs.len());
            let (us, ul) = locs[li];
            let u = us + rng.random_range(0..ul as usize) as u32;
            let v = if rng.random::<f64>() < config.long_haul_intra_prob && locs.len() > 1 {
                // Intra-AS long haul: a different location of the same AS.
                let mut lj = rng.random_range(0..locs.len());
                if lj == li {
                    lj = (lj + 1) % locs.len();
                }
                let (vs, vl) = locs[lj];
                vs + rng.random_range(0..vl as usize) as u32
            } else {
                // Interdomain long haul: a router of another backbone AS.
                let b_idx = backbone[alias.sample(&mut rng)];
                let blocs = &loc_ranges[as_loc_off[b_idx] as usize..as_loc_off[b_idx + 1] as usize];
                let bl = rng.random_range(0..blocs.len());
                let (vs, vl) = blocs[bl];
                vs + rng.random_range(0..vl as usize) as u32
            };
            const LONG_HAUL_MIN_MILES: f64 = 500.0;
            if geotopo_geo::haversine_miles(&routers[u as usize].0, &routers[v as usize].0)
                < LONG_HAUL_MIN_MILES
            {
                continue;
            }
            if add_link(&mut links, &mut link_set, u, v) {
                added += 1;
            }
        }

        // Metro peering: short interdomain links between co-located ASes.
        let mut added = 0usize;
        let mut attempts = 0usize;
        let mut cand: Vec<u32> = Vec::new();
        while added < n_peer && attempts < n_peer * 20 + 100 {
            attempts += 1;
            let u = rng.random_range(0..routers.len()) as u32;
            let (u_loc, u_as, _) = routers[u as usize];
            cand.clear();
            spatial.for_each_in_radius(&u_loc, 40.0, |i| {
                if i != u && routers[i as usize].1 != u_as {
                    cand.push(i);
                }
            });
            if cand.is_empty() {
                continue;
            }
            let v = cand[rng.random_range(0..cand.len())];
            if add_link(&mut links, &mut link_set, u, v) {
                added += 1;
            }
        }

        // 6. Address allocation and final build. Generator AS numbers
        // are dense (AsId i+1 ↔ slot i), so per-AS degree tallies and
        // allocations index directly — no hash maps. The tally is pure,
        // so it fans out over fixed link chunks; per-chunk tallies merge
        // in chunk order with exact u64 sums — byte-identical at any
        // parallelism.
        const LINK_CHUNK: usize = 1 << 16;
        let n_link_chunks = links.len().div_ceil(LINK_CHUNK).max(1);
        let chunk_tallies = exec.dispatch(n_link_chunks, &|c| {
            let lo = c * LINK_CHUNK;
            let hi = (lo + LINK_CHUNK).min(links.len());
            let mut tally: Vec<u64> = vec![0; n_as];
            for &(a, b) in &links[lo..hi] {
                tally[(routers[a as usize].1 .0 - 1) as usize] += 1;
                tally[(routers[b as usize].1 .0 - 1) as usize] += 1;
            }
            tally
        });
        let mut degree_by_as: Vec<u64> = vec![0; n_as];
        for tally in chunk_tallies {
            for (total, part) in degree_by_as.iter_mut().zip(tally) {
                *total += part;
            }
        }
        let mut allocator = PrefixAllocator::new();
        let mut allocations: Vec<AsAllocation> = Vec::with_capacity(n_as);
        for (idx, record) in as_records.iter().enumerate() {
            let needed = degree_by_as[idx];
            // Slack: end-host space for destination lists, plus the two
            // skipped addresses per block.
            let capacity = needed + needed / 2 + 64;
            let alloc = AsAllocation::for_as(&mut allocator, record.asn, capacity)
                .map_err(|_| GroundTruthError::AddressSpace)?;
            allocations.push(alloc);
        }

        let mut builder = TopologyBuilder::with_capacity(routers.len(), links.len());
        for &(p, asn, _) in &routers {
            builder.add_router(p, asn);
        }
        for &(a, b) in &links {
            let as_a = routers[a as usize].1;
            let as_b = routers[b as usize].1;
            let ip_a = allocations[(as_a.0 - 1) as usize]
                .next_ip()
                .ok_or(GroundTruthError::AddressSpace)?;
            let ip_b = allocations[(as_b.0 - 1) as usize]
                .next_ip()
                .ok_or(GroundTruthError::AddressSpace)?;
            builder
                .add_link(RouterId(a), RouterId(b), ip_a, ip_b)
                .expect("deduplicated non-self link with fresh IPs"); // lint: allow(unwrap): link set deduplicated, IPs freshly drawn
        }

        Ok(GroundTruth {
            topology: builder.build(),
            allocations,
            as_records,
            router_region: routers.iter().map(|r| r.2).collect(),
            config,
        })
    }

    /// The region profile a router was placed in.
    pub fn region_of(&self, r: RouterId) -> &RegionProfile {
        &self.config.regions[self.router_region[r.0 as usize] as usize]
    }

    /// Organization name for an AS (for hostname/whois synthesis).
    /// Derived rather than stored: generator AS numbers are dense, so
    /// the name is a pure function of the AS number.
    pub fn as_name(&self, asn: AsId) -> String {
        format!("isp{:04}", asn.0)
    }

    /// Approximate heap footprint of the world in bytes: the topology's
    /// packed arrays plus the per-AS and per-router side tables. Feeds
    /// the engine's resident-artifact accounting and spill decisions.
    pub fn mem_bytes(&self) -> usize {
        use std::mem::size_of;
        let prefix_bytes: usize = self
            .allocations
            .iter()
            .map(|a| a.prefixes.len() * size_of::<geotopo_bgp::Ipv4Prefix>())
            .sum();
        self.topology.mem_bytes()
            + self.allocations.len() * size_of::<AsAllocation>()
            + prefix_bytes
            + self.as_records.len() * size_of::<AsRecord>()
            + self.router_region.len() * size_of::<u16>()
    }

    /// Regenerates the population raster used for region `i` during
    /// generation (the synthetic stand-in for the CIESIN dataset the
    /// analyses tally population from). Deterministic: identical to the
    /// raster the generator sampled from.
    ///
    /// # Errors
    ///
    /// Propagates population-synthesis failure (degenerate config only).
    pub fn population_grid(&self, i: usize) -> Result<PopulationGrid, GroundTruthError> {
        self.config.population_grid(i)
    }
}

fn validate(c: &GroundTruthConfig) -> Result<(), GroundTruthError> {
    if c.total_routers == 0 {
        return Err(GroundTruthError::BadConfig("total_routers"));
    }
    if c.regions.is_empty() {
        return Err(GroundTruthError::BadConfig("regions"));
    }
    if c.mean_degree < 2.0 || !c.mean_degree.is_finite() {
        return Err(GroundTruthError::BadConfig("mean_degree"));
    }
    for frac in [
        c.frac_distance_sensitive,
        c.frac_long_haul,
        c.intra_bias,
        c.wild_dispersal_prob,
        c.long_haul_intra_prob,
    ] {
        if !(0.0..=1.0).contains(&frac) {
            return Err(GroundTruthError::BadConfig("fraction out of [0,1]"));
        }
    }
    if c.frac_distance_sensitive + c.frac_long_haul > 1.0 {
        return Err(GroundTruthError::BadConfig(
            "frac_distance_sensitive + frac_long_haul > 1",
        ));
    }
    if c.location_gamma <= 0.0 || c.location_gamma > 1.0 {
        return Err(GroundTruthError::BadConfig("location_gamma"));
    }
    // Address-space pre-flight: the allocator carves 1.0.0.0 up to
    // 224.0.0.0 minus reserved blocks (~3.7e9 usable addresses) into
    // /24-granular per-AS blocks. Estimate the demand — two interfaces
    // per link plus 50% slack, plus each AS's minimum /24 — and refuse
    // clearly-oversized worlds before any memory-scale work happens.
    if c.total_routers as u64 > u64::from(u32::MAX) {
        return Err(GroundTruthError::AddressSpace);
    }
    let est_links = c.mean_degree * c.total_routers as f64 / 2.0;
    let est_as = (c.total_routers as f64 / c.as_router_ratio).max(1.0);
    let demand = 3.0 * est_links + 256.0 * est_as;
    if !demand.is_finite() || demand > 3.5e9 {
        return Err(GroundTruthError::AddressSpace);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    // Tests assert exact expected values; bitwise float equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::graph::LinkId;
    use crate::metrics;
    use std::collections::HashMap;

    fn world() -> GroundTruth {
        GroundTruth::generate(GroundTruthConfig::tiny(42)).expect("generation")
    }

    #[test]
    fn validates_config() {
        let mut c = GroundTruthConfig::tiny(1);
        c.total_routers = 0;
        assert!(matches!(
            GroundTruth::generate(c),
            Err(GroundTruthError::BadConfig("total_routers"))
        ));
        let mut c = GroundTruthConfig::tiny(1);
        c.frac_distance_sensitive = 0.9;
        c.frac_long_haul = 0.5;
        assert!(GroundTruth::generate(c).is_err());
    }

    #[test]
    fn oversized_config_fails_cleanly_with_address_space() {
        // Demands ~6e9 addresses against ~3.7e9 usable: the pre-flight
        // must reject it as AddressSpace before any allocation happens.
        let c = GroundTruthConfig::at_scale(2_000_000_000, 1);
        assert!(matches!(
            GroundTruth::generate(c),
            Err(GroundTruthError::AddressSpace)
        ));
        // Past u32 router ids is equally un-buildable.
        let c = GroundTruthConfig::at_scale(5_000_000_000, 1);
        assert!(matches!(
            GroundTruth::generate(c),
            Err(GroundTruthError::AddressSpace)
        ));
    }

    #[test]
    fn streamed_and_batch_grid_paths_agree() {
        // generate() streams each raster into its sampler; the engine
        // path pre-builds all grids. Both must produce the same world.
        let config = GroundTruthConfig::tiny(11);
        let a = GroundTruth::generate(config.clone()).unwrap();
        let grids: Vec<PopulationGrid> = (0..config.regions.len())
            .map(|i| config.population_grid(i).unwrap())
            .collect();
        let refs: Vec<&PopulationGrid> = grids.iter().collect();
        let b = GroundTruth::generate_with_grids(config, &refs).unwrap();
        assert_eq!(format!("{:?}", a.topology), format!("{:?}", b.topology));
        assert_eq!(a.router_region, b.router_region);
    }

    #[test]
    fn router_count_matches_config() {
        let gt = world();
        assert_eq!(gt.topology.num_routers(), gt.config.total_routers);
        assert_eq!(gt.router_region.len(), gt.config.total_routers);
        // Every router's region accessor resolves to a configured region.
        for r in 0..gt.config.total_routers {
            let profile = gt.region_of(RouterId(r as u32));
            assert!(gt
                .config
                .regions
                .iter()
                .any(|p| p.economic.region.name == profile.economic.region.name));
        }
    }

    #[test]
    fn mean_degree_near_target() {
        let gt = world();
        let d = metrics::average_degree(&gt.topology);
        assert!(
            (d - gt.config.mean_degree).abs() < 0.7,
            "mean degree {d} target {}",
            gt.config.mean_degree
        );
    }

    #[test]
    fn as_sizes_sum_to_total() {
        let gt = world();
        let total: usize = gt.as_records.iter().map(|r| r.size).sum();
        assert_eq!(total, gt.config.total_routers);
        assert!(gt.as_records.iter().all(|r| r.size >= 1));
    }

    #[test]
    fn as_sizes_are_heavy_tailed() {
        let gt = world();
        let max = gt.as_records.iter().map(|r| r.size).max().unwrap();
        let median = {
            let mut v: Vec<_> = gt.as_records.iter().map(|r| r.size).collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(max > 20 * median, "max {max} median {median}");
    }

    #[test]
    fn locations_bounded_by_size() {
        let gt = world();
        for r in &gt.as_records {
            assert!(r.n_locations >= 1 && r.n_locations <= r.size);
        }
    }

    #[test]
    fn big_ases_are_global() {
        let gt = world();
        for r in &gt.as_records {
            if r.size >= gt.config.global_size_threshold {
                assert!(r.global, "{} size {} not global", r.asn, r.size);
            }
        }
    }

    #[test]
    fn intradomain_links_dominate() {
        let gt = world();
        let intra = metrics::intradomain_fraction(&gt.topology);
        assert!(intra > 0.75, "intradomain fraction {intra}");
    }

    #[test]
    fn interdomain_links_longer_on_average() {
        let gt = world();
        let t = &gt.topology;
        let mut inter = Vec::new();
        let mut intra = Vec::new();
        for (id, _) in t.links() {
            let len = t.link_length_miles(id);
            if t.is_interdomain(id) {
                inter.push(len);
            } else {
                intra.push(len);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&inter) > 1.3 * mean(&intra),
            "inter {} vs intra {}",
            mean(&inter),
            mean(&intra)
        );
    }

    #[test]
    fn most_links_are_short() {
        // The distance-sensitive majority keeps most links under a few
        // hundred miles (Table V: 75–95% below the sensitivity limit).
        let gt = world();
        let lengths = metrics::link_lengths_miles(&gt.topology);
        let short = lengths.iter().filter(|&&d| d < 400.0).count();
        let frac = short as f64 / lengths.len() as f64;
        assert!(frac > 0.6, "short fraction {frac}");
    }

    #[test]
    fn each_as_is_internally_connected_via_structure() {
        // Structural links (stars + MST) must make each AS's router set
        // connected within itself.
        let gt = world();
        let t = &gt.topology;
        // Check the largest AS by BFS restricted to intra-AS links.
        let big = gt.as_records.iter().max_by_key(|r| r.size).unwrap();
        let members: Vec<RouterId> = t
            .routers()
            .filter(|(_, r)| r.asn == big.asn)
            .map(|(id, _)| id)
            .collect();
        let member_set: std::collections::HashSet<_> = members.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(members[0]);
        seen.insert(members[0]);
        while let Some(u) = queue.pop_front() {
            for e in t.neighbors(u) {
                let v = e.neighbor();
                if member_set.contains(&v) && seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        assert_eq!(seen.len(), members.len(), "AS {} disconnected", big.asn);
    }

    #[test]
    fn csr_adjacency_matches_link_list_reconstruction() {
        // The CSR slices must reproduce the old Vec<Vec<(router, link)>>
        // adjacency exactly — same neighbors, same link ids, same
        // per-router order (link insertion order) — on real generator
        // output, and the precomputed interdomain bits must agree with
        // the AS labels.
        let gt = world();
        let t = &gt.topology;
        let mut reference: Vec<Vec<(RouterId, LinkId)>> = vec![Vec::new(); t.num_routers()];
        for (lid, _) in t.links() {
            let (ra, rb) = t.link_routers(lid);
            reference[ra.0 as usize].push((rb, lid));
            reference[rb.0 as usize].push((ra, lid));
        }
        for (r, _) in t.routers() {
            let got: Vec<(RouterId, LinkId)> = t
                .neighbors(r)
                .iter()
                .map(|e| (e.neighbor(), e.link()))
                .collect();
            assert_eq!(got, reference[r.0 as usize], "router {} run diverged", r.0);
            assert_eq!(t.degree(r), got.len());
            for e in t.neighbors(r) {
                assert_eq!(e.is_interdomain(), t.is_interdomain(e.link()));
            }
        }
    }

    #[test]
    fn interfaces_have_as_consistent_ips() {
        // Every interface IP must fall inside its AS's allocation.
        let gt = world();
        let alloc_by_as: HashMap<AsId, &AsAllocation> =
            gt.allocations.iter().map(|a| (a.asn, a)).collect();
        for (_, iface) in gt.topology.interfaces() {
            let asn = gt.topology.router(iface.router).asn;
            let alloc = alloc_by_as[&asn];
            assert!(
                alloc.prefixes.iter().any(|p| p.contains(iface.ip)),
                "{} outside {}",
                iface.ip,
                asn
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let total_length = |gt: &GroundTruth| -> f64 {
            gt.topology
                .links()
                .map(|(id, _)| gt.topology.link_length_miles(id))
                .sum()
        };
        let a = GroundTruth::generate(GroundTruthConfig::tiny(7)).unwrap();
        let b = GroundTruth::generate(GroundTruthConfig::tiny(7)).unwrap();
        assert_eq!(a.topology.num_links(), b.topology.num_links());
        assert_eq!(a.topology.num_interfaces(), b.topology.num_interfaces());
        assert_eq!(total_length(&a), total_length(&b));
        let c = GroundTruth::generate(GroundTruthConfig::tiny(8)).unwrap();
        assert_ne!(total_length(&a), total_length(&c));
    }

    #[test]
    fn usa_gets_the_largest_router_share() {
        // USA has the most online users, so the most routers.
        let gt = world();
        let mut by_region = vec![0usize; gt.config.regions.len()];
        for &r in &gt.router_region {
            by_region[r as usize] += 1;
        }
        let usa_idx = gt
            .config
            .regions
            .iter()
            .position(|r| r.economic.region.name == "USA")
            .unwrap();
        // AS-granular assignment is noisy at tiny scale: require the USA
        // to be among the top two regions with a substantial share
        // (online-user weighting puts ~42% of routers there in
        // expectation).
        let mut ranked: Vec<usize> = (0..by_region.len()).collect();
        ranked.sort_by_key(|&i| std::cmp::Reverse(by_region[i]));
        assert!(
            ranked[..2].contains(&usa_idx),
            "USA not in top two: shares {by_region:?}"
        );
        assert!(
            by_region[usa_idx] as f64 / gt.config.total_routers as f64 > 0.2,
            "USA share too small: {by_region:?}"
        );
    }

    #[test]
    fn population_grid_regeneration_is_stable() {
        let gt = world();
        let a = gt.population_grid(0).unwrap();
        let b = gt.population_grid(0).unwrap();
        assert_eq!(a.cells(), b.cells());
        assert!(gt.population_grid(999).is_err());
    }

    #[test]
    fn giant_component_is_large() {
        let gt = world();
        assert!(
            metrics::giant_component_fraction(&gt.topology) > 0.85,
            "giant fraction {}",
            metrics::giant_component_fraction(&gt.topology)
        );
    }
}
