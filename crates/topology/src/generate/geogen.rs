//! `geogen` — the geography-aware topology generator the paper envisions.
//!
//! The paper's conclusion calls for "the next generation of topology
//! generators, which we envisage as producing router-level graphs
//! annotated with attributes such as link latencies, AS identifiers and
//! geographical locations". `geogen` is that generator, built directly
//! from the paper's three findings:
//!
//! 1. routers are placed ∝ population^α inside a region (Section IV);
//! 2. a mixture of exponentially distance-sensitive links (share `q`,
//!    decay `L`) and distance-independent links (share `1−q`) — the
//!    75–95% / 25–5% split of Section V;
//! 3. AS labels drawn from a Zipf size distribution with geographically
//!    clustered assignment (Section VI).
//!
//! The output is a labelled [`Topology`] plus per-link latencies.

use super::waxman::GenError;
use crate::graph::{RouterId, Topology, TopologyBuilder};
use crate::latency::LatencyModel;
use crate::spatial::SpatialIndex;
use geotopo_bgp::AsId;
use geotopo_geo::{GeoPoint, Region};
use geotopo_population::SyntheticPopulation;
use geotopo_stats::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// `geogen` parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoGenConfig {
    /// Number of routers.
    pub n: usize,
    /// Target mean degree.
    pub mean_degree: f64,
    /// Region to generate within.
    pub region: Region,
    /// Total population of the region (drives the synthetic raster).
    pub population: f64,
    /// Superlinear placement exponent α (paper: 1.2–1.7).
    pub alpha: f64,
    /// Exponential decay length of distance-sensitive links, miles.
    pub decay_miles: f64,
    /// Share of non-tree links that are distance-sensitive (paper:
    /// 0.75–0.95).
    pub distance_sensitive_share: f64,
    /// Number of ASes to label routers with.
    pub n_ases: usize,
    /// Zipf exponent for AS sizes.
    pub as_zipf: f64,
    /// Latency model for link annotation.
    pub latency: LatencyModel,
    /// RNG seed.
    pub seed: u64,
}

impl GeoGenConfig {
    /// A US-like default at the given size.
    pub fn us_default(n: usize, seed: u64) -> Self {
        GeoGenConfig {
            n,
            mean_degree: 3.0,
            region: geotopo_geo::RegionSet::us(),
            population: 299e6,
            alpha: 1.25,
            decay_miles: 145.0,
            distance_sensitive_share: 0.85,
            n_ases: (n / 25).max(4),
            as_zipf: 1.0,
            latency: LatencyModel::default(),
            seed,
        }
    }
}

/// `geogen` output: the annotated router-level graph.
#[derive(Debug, Clone)]
pub struct GeoGenOutput {
    /// The generated topology (locations and AS labels on routers).
    pub topology: Topology,
    /// Per-link one-way latency in milliseconds, indexed by link id.
    pub latencies_ms: Vec<f64>,
}

/// Runs the generator.
///
/// # Errors
///
/// Rejects zero sizes, α ≤ 0, shares outside [0, 1], or a mean degree
/// below 2 (the connectivity backbone alone is degree ≈ 2).
pub fn geogen(cfg: &GeoGenConfig) -> Result<GeoGenOutput, GenError> {
    if cfg.n == 0 {
        return Err(GenError::BadParameter("n"));
    }
    if cfg.n_ases == 0 || cfg.n_ases > cfg.n {
        return Err(GenError::BadParameter("n_ases"));
    }
    if cfg.alpha <= 0.0 || !cfg.alpha.is_finite() {
        return Err(GenError::BadParameter("alpha"));
    }
    if !(0.0..=1.0).contains(&cfg.distance_sensitive_share) {
        return Err(GenError::BadParameter("distance_sensitive_share"));
    }
    if cfg.mean_degree < 2.0 || !cfg.mean_degree.is_finite() {
        return Err(GenError::BadParameter("mean_degree"));
    }
    if cfg.decay_miles <= 0.0 || !cfg.decay_miles.is_finite() {
        return Err(GenError::BadParameter("decay_miles"));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Population-driven placement.
    let pop_cfg = SyntheticPopulation::developed(cfg.region.clone(), cfg.population);
    let pop = pop_cfg
        .generate(cfg.seed.wrapping_add(17))
        .map_err(|_| GenError::BadParameter("population"))?;
    let sampler = pop
        .point_sampler(cfg.alpha)
        .map_err(|_| GenError::BadParameter("population"))?;
    let locations: Vec<GeoPoint> = (0..cfg.n).map(|_| sampler.sample(&mut rng)).collect();

    // AS labels: Zipf sizes, assigned by geographic proximity — each AS
    // seeds at a random router and grows outward, giving spatially
    // coherent domains.
    let zipf = Zipf::new(cfg.n_ases, cfg.as_zipf).expect("validated"); // lint: allow(unwrap): parameters validated above
    let mut sizes: Vec<usize> = (1..=cfg.n_ases)
        .map(|k| ((zipf.pmf(k) * cfg.n as f64).round() as usize).max(1))
        .collect();
    let mut sum: usize = sizes.iter().sum();
    let mut k = 0;
    while sum > cfg.n {
        if sizes[k % cfg.n_ases] > 1 {
            sizes[k % cfg.n_ases] -= 1;
            sum -= 1;
        }
        k += 1;
    }
    while sum < cfg.n {
        sizes[k % cfg.n_ases] += 1;
        sum += 1;
        k += 1;
    }
    let spatial = SpatialIndex::new(locations.clone(), 1.0);
    let mut asn_of = vec![AsId(0); cfg.n];
    let mut unassigned: usize = cfg.n;
    for (idx, &size) in sizes.iter().enumerate() {
        let asn = AsId(idx as u32 + 1);
        // Seed at an unassigned router.
        let mut seed_r = rng.random_range(0..cfg.n);
        let mut guard = 0;
        while asn_of[seed_r] != AsId(0) && guard < cfg.n * 2 {
            seed_r = rng.random_range(0..cfg.n);
            guard += 1;
        }
        if asn_of[seed_r] != AsId(0) {
            if let Some(free) = asn_of.iter().position(|&a| a == AsId(0)) {
                seed_r = free;
            } else {
                break;
            }
        }
        // Claim the nearest `size` unassigned routers around the seed.
        let mut claimed = 0usize;
        let mut radius = 50.0;
        while claimed < size && radius < 25_000.0 {
            let nearby = spatial.within(&locations[seed_r], radius, None);
            for i in nearby {
                if claimed >= size {
                    break;
                }
                if asn_of[i as usize] == AsId(0) {
                    asn_of[i as usize] = asn;
                    claimed += 1;
                    unassigned -= 1;
                }
            }
            radius *= 2.0;
        }
        if unassigned == 0 {
            break;
        }
    }
    // Sweep leftovers into the last AS.
    for a in asn_of.iter_mut() {
        if *a == AsId(0) {
            *a = AsId(cfg.n_ases as u32);
        }
    }

    // Backbone chain plus extras up to the degree target.
    let est_links = (cfg.mean_degree * cfg.n as f64 / 2.0) as usize + cfg.n / 8;
    let mut b = TopologyBuilder::with_capacity(cfg.n, est_links);
    let ids: Vec<RouterId> = locations
        .iter()
        .zip(&asn_of)
        .map(|(p, a)| b.add_router(*p, *a))
        .collect();

    // Backbone: nearest-neighbour chain guaranteeing connectivity —
    // attach each router (in index order) to its nearest already-attached
    // neighbour, approximated by nearest overall (cheap and short-linked).
    for i in 1..cfg.n {
        let mut best: Option<(usize, f64)> = None;
        spatial.for_each_within(&locations[i], cfg.decay_miles * 4.0, |j, d| {
            if (j as usize) < i {
                match best {
                    Some((_, bd)) if bd <= d => {}
                    _ => best = Some((j as usize, d)),
                }
            }
        });
        let j = match best {
            Some((j, _)) => j,
            None => {
                // Nothing nearby yet; fall back to a uniformly random
                // earlier router (rare, keeps the graph whole).
                rng.random_range(0..i)
            }
        };
        let _ = b.add_link_auto(ids[i], ids[j]);
    }

    // Extra links: mixture of distance-sensitive and distance-independent.
    let target = (cfg.mean_degree * cfg.n as f64 / 2.0) as usize;
    let extra = target.saturating_sub(b.num_links());
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra && attempts < extra * 30 + 100 {
        attempts += 1;
        let u = rng.random_range(0..cfg.n);
        let v = if rng.random::<f64>() < cfg.distance_sensitive_share {
            // v ∝ exp(−d/L) among routers within 4L.
            let mut cand: Vec<(u32, f64)> = Vec::new();
            spatial.for_each_within(&locations[u], 4.0 * cfg.decay_miles, |i, d| {
                if i as usize != u {
                    cand.push((i, d));
                }
            });
            if cand.is_empty() {
                continue;
            }
            let weights: Vec<f64> = cand
                .iter()
                .map(|(_, d)| (-d / cfg.decay_miles).exp())
                .collect();
            let total: f64 = weights.iter().sum();
            let mut draw = rng.random::<f64>() * total;
            let mut pick = cand.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                draw -= w;
                if draw <= 0.0 {
                    pick = i;
                    break;
                }
            }
            cand[pick].0 as usize
        } else {
            rng.random_range(0..cfg.n)
        };
        if u != v && !b.has_link(ids[u], ids[v]) && b.add_link_auto(ids[u], ids[v]).is_ok() {
            added += 1;
        }
    }

    let topology = b.build();
    let latencies_ms = cfg.latency.label(&topology);
    Ok(GeoGenOutput {
        topology,
        latencies_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn out(n: usize, seed: u64) -> GeoGenOutput {
        geogen(&GeoGenConfig::us_default(n, seed)).expect("geogen")
    }

    #[test]
    fn rejects_bad_config() {
        let mut c = GeoGenConfig::us_default(100, 1);
        c.n = 0;
        assert!(geogen(&c).is_err());
        let mut c = GeoGenConfig::us_default(100, 1);
        c.distance_sensitive_share = 1.5;
        assert!(geogen(&c).is_err());
        let mut c = GeoGenConfig::us_default(100, 1);
        c.n_ases = 500;
        assert!(geogen(&c).is_err());
    }

    #[test]
    fn produces_connected_annotated_graph() {
        let g = out(800, 3);
        assert_eq!(g.topology.num_routers(), 800);
        assert_eq!(g.latencies_ms.len(), g.topology.num_links());
        assert!((metrics::giant_component_fraction(&g.topology) - 1.0).abs() < 1e-9);
        assert!(g.latencies_ms.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn every_router_has_an_as_label() {
        let g = out(500, 4);
        for (_, r) in g.topology.routers() {
            assert_ne!(r.asn, AsId(0));
        }
    }

    #[test]
    fn mean_degree_near_target() {
        let g = out(1000, 5);
        let d = metrics::average_degree(&g.topology);
        assert!((d - 3.0).abs() < 0.6, "mean degree {d}");
    }

    #[test]
    fn links_are_mostly_short() {
        let g = out(1000, 6);
        let lengths = metrics::link_lengths_miles(&g.topology);
        let short = lengths.iter().filter(|&&d| d < 600.0).count();
        let frac = short as f64 / lengths.len() as f64;
        assert!(frac > 0.7, "short fraction {frac}");
    }

    #[test]
    fn as_labels_are_spatially_coherent() {
        // Intradomain links should dominate because ASes grow by
        // proximity and links prefer short distances.
        let g = out(1000, 7);
        let intra = metrics::intradomain_fraction(&g.topology);
        assert!(intra > 0.5, "intradomain fraction {intra}");
    }

    #[test]
    fn placement_is_population_clustered() {
        // Box-counting dimension well below 2 = clustered placement.
        let g = out(2000, 8);
        let pts: Vec<_> = g.topology.routers().map(|(_, r)| r.location).collect();
        let res = geotopo_geo::box_counting_dimension(
            &geotopo_geo::RegionSet::us(),
            &pts,
            &geotopo_geo::boxcount::default_scales(),
        )
        .unwrap();
        assert!(res.dimension < 1.9, "dimension {}", res.dimension);
    }
}
