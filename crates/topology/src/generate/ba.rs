//! The Barabási–Albert preferential-attachment baseline.
//!
//! Grows a graph by attaching each new node to `m` existing nodes with
//! probability proportional to their current degree, producing the
//! power-law degree distributions of [2]. Placement is uniform — the
//! model is geometry-free, which is exactly the contrast the paper draws
//! against distance-sensitive link formation.

use super::waxman::GenError;
use crate::graph::{RouterId, Topology, TopologyBuilder};
use geotopo_bgp::AsId;
use geotopo_geo::Region;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Barabási–Albert parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BarabasiAlbertConfig {
    /// Final number of nodes (must exceed `m`).
    pub n: usize,
    /// Edges attached per new node.
    pub m: usize,
    /// Region for (decorative) uniform placement.
    pub region: Region,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a BA topology via the repeated-endpoint urn trick: sampling
/// uniformly from the list of all edge endpoints is sampling proportional
/// to degree.
///
/// # Errors
///
/// Rejects `m == 0` and `n <= m`.
pub fn barabasi_albert(cfg: &BarabasiAlbertConfig) -> Result<Topology, GenError> {
    if cfg.m == 0 {
        return Err(GenError::BadParameter("m"));
    }
    if cfg.n <= cfg.m {
        return Err(GenError::BadParameter("n"));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Seed clique plus up to m links per joining node.
    let est_links = cfg.m * (cfg.m + 1) / 2 + cfg.m * (cfg.n - cfg.m - 1);
    let mut b = TopologyBuilder::with_capacity(cfg.n, est_links);
    let ids: Vec<RouterId> = (0..cfg.n)
        .map(|_| b.add_router(super::uniform_in_region(&mut rng, &cfg.region), AsId(1)))
        .collect();

    // Seed clique over the first m+1 nodes.
    let mut endpoints: Vec<u32> = Vec::new();
    for i in 0..=cfg.m {
        for j in (i + 1)..=cfg.m {
            b.add_link_auto(ids[i], ids[j]).expect("valid pair"); // lint: allow(unwrap): distinct seed-clique indices
            endpoints.push(i as u32);
            endpoints.push(j as u32);
        }
    }

    for new in (cfg.m + 1)..cfg.n {
        let mut chosen = std::collections::HashSet::new();
        let mut guard = 0;
        while chosen.len() < cfg.m && guard < 10_000 {
            guard += 1;
            let target = endpoints[rng.random_range(0..endpoints.len())];
            if target as usize != new {
                chosen.insert(target);
            }
        }
        for &t in &chosen {
            b.add_link_auto(ids[new], ids[t as usize])
                .expect("valid pair"); // lint: allow(unwrap): chosen excludes new; both routers exist
            endpoints.push(new as u32);
            endpoints.push(t);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use geotopo_geo::RegionSet;

    fn cfg(n: usize, m: usize) -> BarabasiAlbertConfig {
        BarabasiAlbertConfig {
            n,
            m,
            region: RegionSet::us(),
            seed: 11,
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(barabasi_albert(&cfg(10, 0)).is_err());
        assert!(barabasi_albert(&cfg(3, 3)).is_err());
    }

    #[test]
    fn node_and_edge_counts() {
        let t = barabasi_albert(&cfg(500, 2)).unwrap();
        assert_eq!(t.num_routers(), 500);
        // m(m+1)/2 seed edges + ~m per subsequent node.
        let expected = 3 + 2 * (500 - 3);
        assert!((t.num_links() as i64 - expected as i64).abs() < 50);
    }

    #[test]
    fn graph_is_connected() {
        let t = barabasi_albert(&cfg(400, 2)).unwrap();
        assert!((metrics::giant_component_fraction(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let t = barabasi_albert(&cfg(2000, 2)).unwrap();
        let dd = metrics::degree_distribution(&t);
        let max_degree = dd.len() - 1;
        // Preferential attachment: max degree far above the mean (4).
        assert!(max_degree > 30, "max degree {max_degree}");
        // And most nodes sit at the minimum degree m.
        let at_min: usize = dd[2] + dd[3];
        assert!(at_min as f64 / 2000.0 > 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(&cfg(200, 2)).unwrap();
        let b = barabasi_albert(&cfg(200, 2)).unwrap();
        assert_eq!(a.num_links(), b.num_links());
    }
}
