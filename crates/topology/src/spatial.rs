//! Spatial index over router locations.
//!
//! Link generation needs "which routers lie within r miles of p" queries
//! millions of times; a simple equal-angle grid bucket index answers them
//! in time proportional to the local density.

use geotopo_geo::{haversine_miles, GeoPoint, EARTH_RADIUS_MILES};
use std::collections::HashMap;

/// Grid-bucket spatial index over indexed points.
///
/// Buckets are stored as slices of packed parallel arrays (point index,
/// latitude/longitude in radians, cos-latitude), so a bucket scan is a
/// sequential sweep over dense f64 lanes instead of a gather through the
/// point table — the dominant cost when metro buckets hold thousands of
/// routers. The precomputed values are exactly the ones the haversine
/// formula derives per point (`lat_rad()`, `lon_rad()`, and their `cos`),
/// so distances assembled from them are bit-identical to
/// [`haversine_miles`].
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    cell_deg: f64,
    /// Bucket key → `(start, len)` slice of the packed arrays below.
    buckets: HashMap<(i32, i32), (u32, u32)>,
    points: Vec<GeoPoint>,
    /// Point index per packed slot (bucket-grouped; within a bucket,
    /// ascending point index — the original insertion order).
    slot_idx: Vec<u32>,
    /// Latitude in radians per packed slot (`GeoPoint::lat_rad`).
    slot_lat_rad: Vec<f64>,
    /// Longitude in radians per packed slot (`GeoPoint::lon_rad`).
    slot_lon_rad: Vec<f64>,
    /// cos(latitude in radians) per packed slot.
    slot_cos_lat: Vec<f64>,
}

/// The haversine term `hav(d/R) = sin²(Δφ/2) + cosφ₁·cosφ₂·sin²(Δλ/2)`
/// of an angle given in degrees — used for conservative radius bounds.
fn hav_deg(deg: f64) -> f64 {
    let s = (deg.to_radians() * 0.5).sin();
    s * s
}

impl SpatialIndex {
    /// Builds an index with buckets of `cell_deg` degrees (1.0 is a good
    /// default: ~69 miles of latitude per bucket).
    ///
    /// # Panics
    ///
    /// Panics if `cell_deg` is not positive/finite (programming error).
    pub fn new(points: Vec<GeoPoint>, cell_deg: f64) -> Self {
        assert!(cell_deg.is_finite() && cell_deg > 0.0, "bad cell size");
        let mut grouped: HashMap<(i32, i32), Vec<u32>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            grouped
                .entry(Self::key(p, cell_deg))
                .or_default()
                .push(i as u32);
        }
        let mut buckets = HashMap::with_capacity(grouped.len());
        let mut slot_idx = Vec::with_capacity(points.len());
        let mut slot_lat_rad = Vec::with_capacity(points.len());
        let mut slot_lon_rad = Vec::with_capacity(points.len());
        let mut slot_cos_lat = Vec::with_capacity(points.len());
        for (key, members) in grouped {
            buckets.insert(key, (slot_idx.len() as u32, members.len() as u32));
            for i in members {
                let p = &points[i as usize];
                slot_idx.push(i);
                slot_lat_rad.push(p.lat_rad());
                slot_lon_rad.push(p.lon_rad());
                slot_cos_lat.push(p.lat_rad().cos());
            }
        }
        SpatialIndex {
            cell_deg,
            buckets,
            points,
            slot_idx,
            slot_lat_rad,
            slot_lon_rad,
            slot_cos_lat,
        }
    }

    fn key(p: &GeoPoint, cell_deg: f64) -> (i32, i32) {
        (
            (p.lat() / cell_deg).floor() as i32,
            (p.lon() / cell_deg).floor() as i32,
        )
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The location of point `i`.
    pub fn point(&self, i: u32) -> &GeoPoint {
        &self.points[i as usize]
    }

    /// Indices of all points within `radius_miles` of `center`
    /// (inclusive), excluding `exclude` if given.
    pub fn within(&self, center: &GeoPoint, radius_miles: f64, exclude: Option<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_in_radius(center, radius_miles, |i| {
            if Some(i) != exclude {
                out.push(i);
            }
        });
        out
    }

    /// Calls `visit(slot, h)` for every packed slot whose haversine term
    /// `h = sin²(Δφ/2) + cosφ_c·cosφ_q·sin²(Δλ/2)` (bit-identical to the
    /// one inside [`haversine_miles`]) passes a conservative radius
    /// bound. Whole buckets and individual candidates are rejected only
    /// when provably outside the radius, so the visited superset — in
    /// bucket-scan order — always contains every in-radius point:
    ///
    /// - bucket bound: for any point `q` in a bucket, `h` is at least
    ///   `hav(Δφ_min) + cosφ_c·cosφ_min·hav(Δλ_min)` taken over the
    ///   bucket's lat/lon rectangle (`cos` attains its minimum over a
    ///   latitude interval at an endpoint);
    /// - latitude band per point: the central angle is at least `|Δφ|`,
    ///   so `d ≥ R·|Δφ|`;
    /// - `h` itself against `hav(r)`. `sin²(Δλ/2)` is 2π-periodic, so
    ///   unwrapped longitude differences are safe.
    ///
    /// All radius comparisons use the radius inflated by a relative
    /// margin far above f64 roundoff.
    fn scan_candidates<F: FnMut(usize, f64)>(
        &self,
        center: &GeoPoint,
        radius_miles: f64,
        mut visit: F,
    ) {
        // Bucket reach: radius in degrees of latitude, padded; longitude
        // reach grows with latitude (cos shrinkage), capped to the globe.
        let lat_reach = (radius_miles / 69.0 / self.cell_deg).ceil() as i32 + 1;
        let cos_lat = center.lat().to_radians().cos().max(0.05);
        let lon_reach = (radius_miles / (69.0 * cos_lat) / self.cell_deg).ceil() as i32 + 1;
        let lon_cells = (360.0 / self.cell_deg).ceil() as i32;
        let lon_reach = lon_reach.min(lon_cells / 2);
        let (kr, kc) = Self::key(center, self.cell_deg);
        let center_lat = center.lat();
        let center_lon = center.lon();
        let center_lat_rad = center.lat_rad();
        let center_lon_rad = center.lon_rad();
        let center_cos = center_lat_rad.cos();
        let radius_padded = radius_miles * 1.000_001;
        let max_dlat_rad = radius_padded / EARTH_RADIUS_MILES;
        let hav_radius_padded = {
            let s = (radius_padded / (2.0 * EARTH_RADIUS_MILES)).sin();
            s * s
        };
        for dr in -lat_reach..=lat_reach {
            // Row-level bound: min |Δφ| from the centre to the row's
            // latitude interval, and the row's max cos(lat).
            let row_lat_lo = f64::from(kr + dr) * self.cell_deg;
            let row_lat_hi = row_lat_lo + self.cell_deg;
            let dphi_min_deg = (row_lat_lo - center_lat)
                .max(center_lat - row_lat_hi)
                .max(0.0);
            let hav_phi_min = hav_deg(dphi_min_deg);
            if hav_phi_min > hav_radius_padded {
                continue;
            }
            let cos_row_min = row_lat_lo
                .to_radians()
                .cos()
                .min(row_lat_hi.to_radians().cos())
                .max(0.0);
            for dc in -lon_reach..=lon_reach {
                // Wrap longitude buckets around the globe.
                let mut col = kc + dc;
                let half = lon_cells / 2;
                if col < -half {
                    col += lon_cells;
                } else if col >= half {
                    col -= lon_cells;
                }
                let Some(&(start, len)) = self.buckets.get(&(kr + dr, col)) else {
                    continue;
                };
                // Column-level bound: min wrapped |Δλ| from the centre
                // to the bucket's longitude interval.
                let col_lon_lo = f64::from(col) * self.cell_deg;
                let col_lon_hi = col_lon_lo + self.cell_deg;
                let dlam_min_deg = if center_lon >= col_lon_lo && center_lon <= col_lon_hi {
                    0.0
                } else {
                    let to_edge = |edge: f64| {
                        let d = (center_lon - edge).abs() % 360.0;
                        d.min(360.0 - d)
                    };
                    to_edge(col_lon_lo).min(to_edge(col_lon_hi))
                };
                if hav_phi_min + center_cos * cos_row_min * hav_deg(dlam_min_deg)
                    > hav_radius_padded
                {
                    continue;
                }
                let (start, end) = (start as usize, (start + len) as usize);
                for k in start..end {
                    let dlat = self.slot_lat_rad[k] - center_lat_rad;
                    if dlat.abs() > max_dlat_rad {
                        continue;
                    }
                    let dlon = self.slot_lon_rad[k] - center_lon_rad;
                    let s_lat = (dlat / 2.0).sin();
                    let s_lon = (dlon / 2.0).sin();
                    let h = s_lat * s_lat + center_cos * self.slot_cos_lat[k] * (s_lon * s_lon);
                    if h > hav_radius_padded {
                        continue;
                    }
                    visit(k, h);
                }
            }
        }
    }

    /// Finishes the haversine from its precomputed term: bit-identical
    /// to [`haversine_miles`] because `h` is assembled from the same
    /// per-point radian values with the same operation order.
    fn finish_distance(h: f64) -> f64 {
        EARTH_RADIUS_MILES * (2.0 * h.sqrt().clamp(0.0, 1.0).asin())
    }

    /// Calls `f(index, distance_miles)` for each point within the radius
    /// (inclusive), in bucket-scan order, with the exact
    /// [`haversine_miles`] distance.
    pub fn for_each_within<F: FnMut(u32, f64)>(
        &self,
        center: &GeoPoint,
        radius_miles: f64,
        mut f: F,
    ) {
        self.scan_candidates(center, radius_miles, |k, h| {
            let d = Self::finish_distance(h);
            if d <= radius_miles {
                f(self.slot_idx[k], d);
            }
        });
    }

    /// Calls `f(index)` for each point within the radius (inclusive), in
    /// the same order as [`SpatialIndex::for_each_within`], without
    /// reporting distances. Skips the `asin`/`sqrt` finish for points
    /// conservatively inside the radius (`h < hav(r·(1−ε))` implies
    /// `d < r`), falling back to the exact distance in the boundary
    /// sliver — the accepted set is identical to `for_each_within`'s.
    pub fn for_each_in_radius<F: FnMut(u32)>(
        &self,
        center: &GeoPoint,
        radius_miles: f64,
        mut f: F,
    ) {
        let hav_radius_shrunk = {
            let s = ((radius_miles * 0.999_999) / (2.0 * EARTH_RADIUS_MILES)).sin();
            s * s
        };
        self.scan_candidates(center, radius_miles, |k, h| {
            if h < hav_radius_shrunk || Self::finish_distance(h) <= radius_miles {
                f(self.slot_idx[k]);
            }
        });
    }

    /// The nearest point to `center` (linear in the local neighbourhood;
    /// falls back to a full scan if nothing is within `hint_radius`).
    pub fn nearest(&self, center: &GeoPoint, hint_radius_miles: f64) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        self.for_each_within(center, hint_radius_miles, |i, d| match best {
            Some((_, bd)) if bd <= d => {}
            _ => best = Some((i, d)),
        });
        if best.is_some() {
            return best;
        }
        // Full scan fallback.
        for (i, p) in self.points.iter().enumerate() {
            let d = haversine_miles(center, p);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i as u32, d)),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn within_matches_brute_force() {
        let pts: Vec<GeoPoint> = (0..500)
            .map(|i| {
                let lat = 30.0 + (i % 25) as f64 * 0.8;
                let lon = -120.0 + (i / 25) as f64 * 2.0;
                p(lat, lon)
            })
            .collect();
        let idx = SpatialIndex::new(pts.clone(), 1.0);
        let center = p(38.0, -100.0);
        for radius in [50.0, 200.0, 800.0] {
            let mut got = idx.within(&center, radius, None);
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, q)| haversine_miles(&center, q) <= radius)
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn exclude_is_honored() {
        let pts = vec![p(10.0, 10.0), p(10.1, 10.1)];
        let idx = SpatialIndex::new(pts, 1.0);
        let center = p(10.0, 10.0);
        let got = idx.within(&center, 100.0, Some(0));
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn nearest_finds_closest() {
        let pts = vec![p(0.0, 0.0), p(5.0, 5.0), p(0.2, 0.2)];
        let idx = SpatialIndex::new(pts, 1.0);
        let (i, d) = idx.nearest(&p(0.05, 0.05), 100.0).unwrap();
        assert_eq!(i, 0);
        assert!(d < 10.0);
    }

    #[test]
    fn nearest_falls_back_to_full_scan() {
        let pts = vec![p(80.0, 170.0)];
        let idx = SpatialIndex::new(pts, 1.0);
        // Nothing within 10 miles of the antipode-ish probe; fallback
        // still finds the single point.
        let (i, _) = idx.nearest(&p(-80.0, -10.0), 10.0).unwrap();
        assert_eq!(i, 0);
    }

    #[test]
    fn empty_index() {
        let idx = SpatialIndex::new(vec![], 1.0);
        assert!(idx.is_empty());
        assert_eq!(idx.nearest(&p(0.0, 0.0), 10.0), None);
        assert!(idx.within(&p(0.0, 0.0), 1000.0, None).is_empty());
    }

    #[test]
    fn date_line_neighbors_found() {
        let pts = vec![p(0.0, 179.9), p(0.0, -179.9)];
        let idx = SpatialIndex::new(pts, 1.0);
        let got = idx.within(&p(0.0, 179.95), 50.0, None);
        assert_eq!(got.len(), 2, "date-line wrap missed: {got:?}");
    }

    /// A deterministic pseudo-random point cloud clustered like metros,
    /// including date-line and high-latitude clusters.
    fn dense_cloud(n: usize) -> Vec<GeoPoint> {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let centers = [
            (40.7, -74.0),
            (35.7, 139.7),
            (51.5, -0.1),
            (0.0, 179.9),
            (68.0, 20.0),
            (-33.9, 151.2),
        ];
        (0..n)
            .map(|i| {
                let (clat, clon) = centers[i % centers.len()];
                let lat = (clat + (next() - 0.5) * 2.5).clamp(-89.9, 89.9);
                let mut lon = clon + (next() - 0.5) * 2.5;
                if lon > 180.0 {
                    lon -= 360.0;
                }
                if lon <= -180.0 {
                    lon += 360.0;
                }
                p(lat, lon)
            })
            .collect()
    }

    #[test]
    fn filtered_scan_matches_brute_force_exactly() {
        // The pruned/packed scan must report exactly the brute-force
        // match set with bit-identical haversine distances.
        let pts = dense_cloud(4000);
        let idx = SpatialIndex::new(pts.clone(), 1.0);
        for &(clat, clon) in &[(40.9, -73.8), (0.05, -179.95), (68.4, 20.5), (35.7, 139.7)] {
            let center = p(clat, clon);
            for radius in [12.0, 40.0, 150.0] {
                let mut got: Vec<(u32, f64)> = Vec::new();
                idx.for_each_within(&center, radius, |i, d| got.push((i, d)));
                let want: Vec<(u32, f64)> = pts
                    .iter()
                    .enumerate()
                    .filter_map(|(i, q)| {
                        let d = haversine_miles(&center, q);
                        (d <= radius).then_some((i as u32, d))
                    })
                    .collect();
                let mut got_sorted = got.clone();
                got_sorted.sort_by_key(|&(i, _)| i);
                assert_eq!(got_sorted, want, "center {clat},{clon} radius {radius}");
            }
        }
    }

    #[test]
    fn in_radius_matches_for_each_within_order() {
        // The distance-free fast path must accept the same points in the
        // same (bucket-scan) order as the distance-reporting scan.
        let pts = dense_cloud(4000);
        let idx = SpatialIndex::new(pts, 1.0);
        for &(clat, clon) in &[(40.9, -73.8), (0.05, -179.95), (68.4, 20.5)] {
            let center = p(clat, clon);
            for radius in [12.0, 40.0, 150.0] {
                let mut with_d: Vec<u32> = Vec::new();
                idx.for_each_within(&center, radius, |i, _| with_d.push(i));
                let mut without_d: Vec<u32> = Vec::new();
                idx.for_each_in_radius(&center, radius, |i| without_d.push(i));
                assert_eq!(with_d, without_d, "center {clat},{clon} radius {radius}");
            }
        }
    }
}
