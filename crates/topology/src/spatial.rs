//! Spatial index over router locations.
//!
//! Link generation needs "which routers lie within r miles of p" queries
//! millions of times; a simple equal-angle grid bucket index answers them
//! in time proportional to the local density.

use geotopo_geo::{haversine_miles, GeoPoint};
use std::collections::HashMap;

/// Grid-bucket spatial index over indexed points.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    cell_deg: f64,
    buckets: HashMap<(i32, i32), Vec<u32>>,
    points: Vec<GeoPoint>,
}

impl SpatialIndex {
    /// Builds an index with buckets of `cell_deg` degrees (1.0 is a good
    /// default: ~69 miles of latitude per bucket).
    ///
    /// # Panics
    ///
    /// Panics if `cell_deg` is not positive/finite (programming error).
    pub fn new(points: Vec<GeoPoint>, cell_deg: f64) -> Self {
        assert!(cell_deg.is_finite() && cell_deg > 0.0, "bad cell size");
        let mut buckets: HashMap<(i32, i32), Vec<u32>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            buckets
                .entry(Self::key(p, cell_deg))
                .or_default()
                .push(i as u32);
        }
        SpatialIndex {
            cell_deg,
            buckets,
            points,
        }
    }

    fn key(p: &GeoPoint, cell_deg: f64) -> (i32, i32) {
        (
            (p.lat() / cell_deg).floor() as i32,
            (p.lon() / cell_deg).floor() as i32,
        )
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The location of point `i`.
    pub fn point(&self, i: u32) -> &GeoPoint {
        &self.points[i as usize]
    }

    /// Indices of all points within `radius_miles` of `center`
    /// (inclusive), excluding `exclude` if given.
    pub fn within(&self, center: &GeoPoint, radius_miles: f64, exclude: Option<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_within(center, radius_miles, |i, _| {
            if Some(i) != exclude {
                out.push(i);
            }
        });
        out
    }

    /// Calls `f(index, distance_miles)` for each point within the radius.
    pub fn for_each_within<F: FnMut(u32, f64)>(
        &self,
        center: &GeoPoint,
        radius_miles: f64,
        mut f: F,
    ) {
        // Bucket reach: radius in degrees of latitude, padded; longitude
        // reach grows with latitude (cos shrinkage), capped to the globe.
        let lat_reach = (radius_miles / 69.0 / self.cell_deg).ceil() as i32 + 1;
        let cos_lat = center.lat().to_radians().cos().max(0.05);
        let lon_reach = (radius_miles / (69.0 * cos_lat) / self.cell_deg).ceil() as i32 + 1;
        let lon_cells = (360.0 / self.cell_deg).ceil() as i32;
        let lon_reach = lon_reach.min(lon_cells / 2);
        let (kr, kc) = Self::key(center, self.cell_deg);
        for dr in -lat_reach..=lat_reach {
            for dc in -lon_reach..=lon_reach {
                // Wrap longitude buckets around the globe.
                let mut col = kc + dc;
                let half = lon_cells / 2;
                if col < -half {
                    col += lon_cells;
                } else if col >= half {
                    col -= lon_cells;
                }
                if let Some(bucket) = self.buckets.get(&(kr + dr, col)) {
                    for &i in bucket {
                        let d = haversine_miles(center, &self.points[i as usize]);
                        if d <= radius_miles {
                            f(i, d);
                        }
                    }
                }
            }
        }
    }

    /// The nearest point to `center` (linear in the local neighbourhood;
    /// falls back to a full scan if nothing is within `hint_radius`).
    pub fn nearest(&self, center: &GeoPoint, hint_radius_miles: f64) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        self.for_each_within(center, hint_radius_miles, |i, d| match best {
            Some((_, bd)) if bd <= d => {}
            _ => best = Some((i, d)),
        });
        if best.is_some() {
            return best;
        }
        // Full scan fallback.
        for (i, p) in self.points.iter().enumerate() {
            let d = haversine_miles(center, p);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i as u32, d)),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn within_matches_brute_force() {
        let pts: Vec<GeoPoint> = (0..500)
            .map(|i| {
                let lat = 30.0 + (i % 25) as f64 * 0.8;
                let lon = -120.0 + (i / 25) as f64 * 2.0;
                p(lat, lon)
            })
            .collect();
        let idx = SpatialIndex::new(pts.clone(), 1.0);
        let center = p(38.0, -100.0);
        for radius in [50.0, 200.0, 800.0] {
            let mut got = idx.within(&center, radius, None);
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, q)| haversine_miles(&center, q) <= radius)
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn exclude_is_honored() {
        let pts = vec![p(10.0, 10.0), p(10.1, 10.1)];
        let idx = SpatialIndex::new(pts, 1.0);
        let center = p(10.0, 10.0);
        let got = idx.within(&center, 100.0, Some(0));
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn nearest_finds_closest() {
        let pts = vec![p(0.0, 0.0), p(5.0, 5.0), p(0.2, 0.2)];
        let idx = SpatialIndex::new(pts, 1.0);
        let (i, d) = idx.nearest(&p(0.05, 0.05), 100.0).unwrap();
        assert_eq!(i, 0);
        assert!(d < 10.0);
    }

    #[test]
    fn nearest_falls_back_to_full_scan() {
        let pts = vec![p(80.0, 170.0)];
        let idx = SpatialIndex::new(pts, 1.0);
        // Nothing within 10 miles of the antipode-ish probe; fallback
        // still finds the single point.
        let (i, _) = idx.nearest(&p(-80.0, -10.0), 10.0).unwrap();
        assert_eq!(i, 0);
    }

    #[test]
    fn empty_index() {
        let idx = SpatialIndex::new(vec![], 1.0);
        assert!(idx.is_empty());
        assert_eq!(idx.nearest(&p(0.0, 0.0), 10.0), None);
        assert!(idx.within(&p(0.0, 0.0), 1000.0, None).is_empty());
    }

    #[test]
    fn date_line_neighbors_found() {
        let pts = vec![p(0.0, 179.9), p(0.0, -179.9)];
        let idx = SpatialIndex::new(pts, 1.0);
        let got = idx.within(&p(0.0, 179.95), 50.0, None);
        assert_eq!(got.len(), 2, "date-line wrap missed: {got:?}");
    }
}
