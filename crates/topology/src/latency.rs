//! Geographic latency labelling.
//!
//! The paper's conclusion motivates geography-aware generation precisely
//! because "link latencies ... can be approximated in a straightforward
//! manner when nodes have geographical location". This module performs
//! that labelling: propagation delay at the speed of light in fiber plus
//! a fixed per-hop forwarding overhead.

use crate::graph::{LinkId, Topology};
use serde::{Deserialize, Serialize};

/// Speed of light in vacuum, miles per millisecond.
const C_MILES_PER_MS: f64 = 186.282;

/// Latency model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Velocity factor of the medium relative to c (fiber ≈ 0.66).
    pub velocity_factor: f64,
    /// Fixed per-link overhead in milliseconds (serialization, switching).
    pub overhead_ms: f64,
    /// Route indirectness factor: fiber rarely follows the great circle
    /// (typical path stretch ≈ 1.2–1.5).
    pub path_stretch: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            velocity_factor: 0.66,
            overhead_ms: 0.25,
            path_stretch: 1.3,
        }
    }
}

impl LatencyModel {
    /// One-way latency of a link of geographic length `miles`.
    pub fn latency_ms(&self, miles: f64) -> f64 {
        self.overhead_ms + self.path_stretch * miles / (C_MILES_PER_MS * self.velocity_factor)
    }

    /// Labels every link of a topology, returning latencies indexed by
    /// [`LinkId`] position.
    pub fn label(&self, t: &Topology) -> Vec<f64> {
        (0..t.num_links())
            .map(|i| self.latency_ms(t.link_length_miles(LinkId(i as u32))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopologyBuilder;
    use geotopo_bgp::AsId;
    use geotopo_geo::GeoPoint;

    #[test]
    fn zero_length_is_overhead_only() {
        let m = LatencyModel::default();
        assert!((m.latency_ms(0.0) - m.overhead_ms).abs() < 1e-12);
    }

    #[test]
    fn transcontinental_latency_plausible() {
        // ~2,600 miles coast to coast: one-way fiber latency should be
        // roughly 20–35 ms with stretch.
        let m = LatencyModel::default();
        let l = m.latency_ms(2600.0);
        assert!(l > 20.0 && l < 35.0, "latency {l}");
    }

    #[test]
    fn latency_is_monotone_in_distance() {
        let m = LatencyModel::default();
        assert!(m.latency_ms(100.0) < m.latency_ms(200.0));
    }

    #[test]
    fn labels_every_link() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(GeoPoint::new(40.0, -74.0).unwrap(), AsId(1));
        let r1 = b.add_router(GeoPoint::new(34.0, -118.0).unwrap(), AsId(1));
        let r2 = b.add_router(GeoPoint::new(41.9, -87.6).unwrap(), AsId(1));
        b.add_link_auto(r0, r1).unwrap();
        b.add_link_auto(r1, r2).unwrap();
        let t = b.build();
        let lat = LatencyModel::default().label(&t);
        assert_eq!(lat.len(), 2);
        assert!(lat.iter().all(|&l| l > 0.0));
        // NY–LA is longer than LA–Chicago.
        assert!(lat[0] > lat[1]);
    }
}
