//! The router-level topology data structure.
//!
//! Terminology follows the paper strictly: a **router** is a device at a
//! geographic location belonging to one AS; an **interface** is an IP
//! address on a router (one per incident link — this is why Skitter,
//! which cannot resolve aliases, sees more nodes than Mercator); a
//! **link** connects two interfaces on different routers.

use geotopo_bgp::AsId;
use geotopo_geo::{haversine_miles, GeoPoint};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Index of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// Index of an interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InterfaceId(pub u32);

/// Index of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A router: a located, AS-labelled node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Router {
    /// Geographic location.
    pub location: GeoPoint,
    /// Parent autonomous system.
    pub asn: AsId,
}

/// An interface: an IP address on a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interface {
    /// The interface's IP address (unique network-wide).
    pub ip: Ipv4Addr,
    /// The router the interface belongs to.
    pub router: RouterId,
}

/// A link between two interfaces (and hence two routers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Interface on the first router.
    pub a: InterfaceId,
    /// Interface on the second router.
    pub b: InterfaceId,
}

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Link endpoints are the same router.
    SelfLink(RouterId),
    /// The router pair is already linked.
    DuplicateLink(RouterId, RouterId),
    /// The IP address is already assigned to another interface.
    DuplicateIp(Ipv4Addr),
    /// Referenced router does not exist.
    UnknownRouter(RouterId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::SelfLink(r) => write!(f, "self-link at router {}", r.0),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "routers {} and {} already linked", a.0, b.0)
            }
            TopologyError::DuplicateIp(ip) => write!(f, "IP {ip} already assigned"),
            TopologyError::UnknownRouter(r) => write!(f, "unknown router {}", r.0),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incrementally builds a [`Topology`] with validation.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    routers: Vec<Router>,
    interfaces: Vec<Interface>,
    links: Vec<Link>,
    ip_index: HashMap<Ipv4Addr, InterfaceId>,
    link_set: std::collections::HashSet<(u32, u32)>,
    auto_ip: u32,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            // Auto-assigned IPs come from 240.0.0.0/4 (reserved space) so
            // they can never collide with allocator-assigned addresses.
            auto_ip: u32::from(Ipv4Addr::new(240, 0, 0, 1)),
            ..Default::default()
        }
    }

    /// Adds a router; returns its id.
    pub fn add_router(&mut self, location: GeoPoint, asn: AsId) -> RouterId {
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(Router { location, asn });
        id
    }

    /// Number of routers added so far.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of links added so far.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Whether routers `a` and `b` are already linked.
    pub fn has_link(&self, a: RouterId, b: RouterId) -> bool {
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.link_set.contains(&key)
    }

    /// Router accessor (for generators that need positions mid-build).
    pub fn router(&self, id: RouterId) -> Option<&Router> {
        self.routers.get(id.0 as usize)
    }

    /// Adds a link between two routers, creating one interface on each
    /// with the given IPs.
    ///
    /// # Errors
    ///
    /// Rejects self-links, duplicate router pairs, unknown routers and
    /// duplicate IPs.
    pub fn add_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        ip_a: Ipv4Addr,
        ip_b: Ipv4Addr,
    ) -> Result<LinkId, TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLink(a));
        }
        if a.0 as usize >= self.routers.len() {
            return Err(TopologyError::UnknownRouter(a));
        }
        if b.0 as usize >= self.routers.len() {
            return Err(TopologyError::UnknownRouter(b));
        }
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if self.link_set.contains(&key) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        if self.ip_index.contains_key(&ip_a) {
            return Err(TopologyError::DuplicateIp(ip_a));
        }
        if ip_a == ip_b || self.ip_index.contains_key(&ip_b) {
            return Err(TopologyError::DuplicateIp(ip_b));
        }
        let if_a = InterfaceId(self.interfaces.len() as u32);
        self.interfaces.push(Interface { ip: ip_a, router: a });
        self.ip_index.insert(ip_a, if_a);
        let if_b = InterfaceId(self.interfaces.len() as u32);
        self.interfaces.push(Interface { ip: ip_b, router: b });
        self.ip_index.insert(ip_b, if_b);
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { a: if_a, b: if_b });
        self.link_set.insert(key);
        Ok(id)
    }

    /// Adds a link with automatically assigned IPs from reserved space
    /// (for baseline generators that do not model addressing).
    ///
    /// # Errors
    ///
    /// Same as [`TopologyBuilder::add_link`] except IP collisions, which
    /// cannot occur.
    pub fn add_link_auto(&mut self, a: RouterId, b: RouterId) -> Result<LinkId, TopologyError> {
        let ip_a = Ipv4Addr::from(self.auto_ip);
        let ip_b = Ipv4Addr::from(self.auto_ip + 1);
        self.auto_ip += 2;
        self.add_link(a, b, ip_a, ip_b)
    }

    /// Finalizes the topology, computing adjacency and per-router
    /// interface lists.
    pub fn build(self) -> Topology {
        let mut adj: Vec<Vec<(RouterId, LinkId)>> = vec![Vec::new(); self.routers.len()];
        for (i, link) in self.links.iter().enumerate() {
            let ra = self.interfaces[link.a.0 as usize].router;
            let rb = self.interfaces[link.b.0 as usize].router;
            adj[ra.0 as usize].push((rb, LinkId(i as u32)));
            adj[rb.0 as usize].push((ra, LinkId(i as u32)));
        }
        let mut router_ifaces: Vec<Vec<InterfaceId>> = vec![Vec::new(); self.routers.len()];
        for (i, iface) in self.interfaces.iter().enumerate() {
            router_ifaces[iface.router.0 as usize].push(InterfaceId(i as u32));
        }
        Topology {
            routers: self.routers,
            interfaces: self.interfaces,
            links: self.links,
            adj,
            router_ifaces,
            ip_index: self.ip_index,
        }
    }
}

/// An immutable router-level topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    routers: Vec<Router>,
    interfaces: Vec<Interface>,
    links: Vec<Link>,
    adj: Vec<Vec<(RouterId, LinkId)>>,
    router_ifaces: Vec<Vec<InterfaceId>>,
    ip_index: HashMap<Ipv4Addr, InterfaceId>,
}

impl Topology {
    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of interfaces.
    pub fn num_interfaces(&self) -> usize {
        self.interfaces.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Router by id.
    ///
    /// # Panics
    ///
    /// Panics on an id not produced by the owning builder.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.0 as usize]
    }

    /// Interface by id.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn interface(&self, id: InterfaceId) -> &Interface {
        &self.interfaces[id.0 as usize]
    }

    /// Link by id.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// All routers with ids.
    pub fn routers(&self) -> impl Iterator<Item = (RouterId, &Router)> {
        self.routers
            .iter()
            .enumerate()
            .map(|(i, r)| (RouterId(i as u32), r))
    }

    /// All interfaces with ids.
    pub fn interfaces(&self) -> impl Iterator<Item = (InterfaceId, &Interface)> {
        self.interfaces
            .iter()
            .enumerate()
            .map(|(i, f)| (InterfaceId(i as u32), f))
    }

    /// All links with ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Neighbours of a router with the connecting link.
    pub fn neighbors(&self, r: RouterId) -> &[(RouterId, LinkId)] {
        &self.adj[r.0 as usize]
    }

    /// Router degree (number of incident links).
    pub fn degree(&self, r: RouterId) -> usize {
        self.adj[r.0 as usize].len()
    }

    /// Interfaces on a router.
    pub fn interfaces_of(&self, r: RouterId) -> &[InterfaceId] {
        &self.router_ifaces[r.0 as usize]
    }

    /// The interface holding `ip`, if any.
    pub fn interface_by_ip(&self, ip: Ipv4Addr) -> Option<InterfaceId> {
        self.ip_index.get(&ip).copied()
    }

    /// The router owning `ip`, if any.
    pub fn router_by_ip(&self, ip: Ipv4Addr) -> Option<RouterId> {
        self.interface_by_ip(ip)
            .map(|i| self.interfaces[i.0 as usize].router)
    }

    /// Router endpoints of a link.
    pub fn link_routers(&self, id: LinkId) -> (RouterId, RouterId) {
        let l = &self.links[id.0 as usize];
        (
            self.interfaces[l.a.0 as usize].router,
            self.interfaces[l.b.0 as usize].router,
        )
    }

    /// Great-circle length of a link in statute miles.
    pub fn link_length_miles(&self, id: LinkId) -> f64 {
        let (a, b) = self.link_routers(id);
        haversine_miles(&self.routers[a.0 as usize].location, &self.routers[b.0 as usize].location)
    }

    /// Whether a link crosses AS boundaries (the paper's
    /// interdomain/intradomain distinction, Section VI-C).
    pub fn is_interdomain(&self, id: LinkId) -> bool {
        let (a, b) = self.link_routers(id);
        self.routers[a.0 as usize].asn != self.routers[b.0 as usize].asn
    }

    /// The outgoing interface on router `from` for the link to `to`
    /// (used by the traceroute simulator to report hop addresses).
    pub fn interface_between(&self, from: RouterId, to: RouterId) -> Option<InterfaceId> {
        let (_, lid) = self
            .adj[from.0 as usize]
            .iter()
            .find(|(nbr, _)| *nbr == to)?;
        let l = &self.links[lid.0 as usize];
        let ia = l.a;
        if self.interfaces[ia.0 as usize].router == from {
            Some(ia)
        } else {
            Some(l.b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn build_small_topology() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(40.0, -100.0), AsId(1));
        let r1 = b.add_router(loc(41.0, -101.0), AsId(1));
        let r2 = b.add_router(loc(42.0, -102.0), AsId(2));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        b.add_link(r1, r2, ip("1.0.0.3"), ip("2.0.0.1")).unwrap();
        let t = b.build();
        assert_eq!(t.num_routers(), 3);
        assert_eq!(t.num_interfaces(), 4);
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.degree(r1), 2);
        assert_eq!(t.degree(r0), 1);
        assert_eq!(t.interfaces_of(r1).len(), 2);
    }

    #[test]
    fn rejects_self_link() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        assert_eq!(
            b.add_link(r0, r0, ip("1.0.0.1"), ip("1.0.0.2")).unwrap_err(),
            TopologyError::SelfLink(r0)
        );
    }

    #[test]
    fn rejects_duplicate_link_both_orders() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        assert!(b.has_link(r0, r1) && b.has_link(r1, r0));
        assert_eq!(
            b.add_link(r1, r0, ip("1.0.0.3"), ip("1.0.0.4")).unwrap_err(),
            TopologyError::DuplicateLink(r1, r0)
        );
    }

    #[test]
    fn rejects_duplicate_ip() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        let r2 = b.add_router(loc(2.0, 2.0), AsId(1));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        assert_eq!(
            b.add_link(r0, r2, ip("1.0.0.1"), ip("1.0.0.9")).unwrap_err(),
            TopologyError::DuplicateIp(ip("1.0.0.1"))
        );
        assert_eq!(
            b.add_link(r0, r2, ip("1.0.0.8"), ip("1.0.0.8")).unwrap_err(),
            TopologyError::DuplicateIp(ip("1.0.0.8"))
        );
    }

    #[test]
    fn rejects_unknown_router() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        assert_eq!(
            b.add_link(r0, RouterId(99), ip("1.0.0.1"), ip("1.0.0.2"))
                .unwrap_err(),
            TopologyError::UnknownRouter(RouterId(99))
        );
    }

    #[test]
    fn ip_lookup_roundtrip() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(2));
        b.add_link(r0, r1, ip("9.0.0.1"), ip("9.0.0.2")).unwrap();
        let t = b.build();
        assert_eq!(t.router_by_ip(ip("9.0.0.1")), Some(r0));
        assert_eq!(t.router_by_ip(ip("9.0.0.2")), Some(r1));
        assert_eq!(t.router_by_ip(ip("9.9.9.9")), None);
    }

    #[test]
    fn link_length_and_domain() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(40.0, -100.0), AsId(1));
        let r1 = b.add_router(loc(40.0, -99.0), AsId(1));
        let r2 = b.add_router(loc(40.0, -98.0), AsId(2));
        let l01 = b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        let l12 = b.add_link(r1, r2, ip("1.0.0.3"), ip("2.0.0.1")).unwrap();
        let t = b.build();
        assert!(!t.is_interdomain(l01));
        assert!(t.is_interdomain(l12));
        // One degree of longitude at 40N is ~53 miles.
        let len = t.link_length_miles(l01);
        assert!((len - 53.0).abs() < 2.0, "len {len}");
    }

    #[test]
    fn interface_between_reports_correct_side() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        let t = b.build();
        let i01 = t.interface_between(r0, r1).unwrap();
        assert_eq!(t.interface(i01).ip, ip("1.0.0.1"));
        let i10 = t.interface_between(r1, r0).unwrap();
        assert_eq!(t.interface(i10).ip, ip("1.0.0.2"));
        assert_eq!(t.interface_between(r0, RouterId(0)), None);
    }

    #[test]
    fn auto_ip_links_use_reserved_space() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        b.add_link_auto(r0, r1).unwrap();
        let t = b.build();
        for (_, iface) in t.interfaces() {
            assert!(u32::from(iface.ip) >= u32::from(Ipv4Addr::new(240, 0, 0, 0)));
        }
    }

    #[test]
    fn iterators_cover_everything() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        let r2 = b.add_router(loc(2.0, 2.0), AsId(1));
        b.add_link_auto(r0, r1).unwrap();
        b.add_link_auto(r1, r2).unwrap();
        let t = b.build();
        assert_eq!(t.routers().count(), 3);
        assert_eq!(t.interfaces().count(), 4);
        assert_eq!(t.links().count(), 2);
    }
}
