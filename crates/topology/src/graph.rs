//! The router-level topology data structure.
//!
//! Terminology follows the paper strictly: a **router** is a device at a
//! geographic location belonging to one AS; an **interface** is an IP
//! address on a router (one per incident link — this is why Skitter,
//! which cannot resolve aliases, sees more nodes than Mercator); a
//! **link** connects two interfaces on different routers.

use geotopo_bgp::AsId;
use geotopo_geo::{haversine_miles, GeoPoint};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Index of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// Index of an interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InterfaceId(pub u32);

/// Index of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A router: a located, AS-labelled node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Router {
    /// Geographic location.
    pub location: GeoPoint,
    /// Parent autonomous system.
    pub asn: AsId,
}

/// An interface: an IP address on a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interface {
    /// The interface's IP address (unique network-wide).
    pub ip: Ipv4Addr,
    /// The router the interface belongs to.
    pub router: RouterId,
}

/// A link between two interfaces (and hence two routers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Interface on the first router.
    pub a: InterfaceId,
    /// Interface on the second router.
    pub b: InterfaceId,
}

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Link endpoints are the same router.
    SelfLink(RouterId),
    /// The router pair is already linked.
    DuplicateLink(RouterId, RouterId),
    /// The IP address is already assigned to another interface.
    DuplicateIp(Ipv4Addr),
    /// Referenced router does not exist.
    UnknownRouter(RouterId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::SelfLink(r) => write!(f, "self-link at router {}", r.0),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "routers {} and {} already linked", a.0, b.0)
            }
            TopologyError::DuplicateIp(ip) => write!(f, "IP {ip} already assigned"),
            TopologyError::UnknownRouter(r) => write!(f, "unknown router {}", r.0),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incrementally builds a [`Topology`] with validation.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    routers: Vec<Router>,
    interfaces: Vec<Interface>,
    links: Vec<Link>,
    ip_index: HashMap<Ipv4Addr, InterfaceId>,
    link_set: std::collections::HashSet<(u32, u32)>,
    auto_ip: u32,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            // Auto-assigned IPs come from 240.0.0.0/4 (reserved space) so
            // they can never collide with allocator-assigned addresses.
            auto_ip: u32::from(Ipv4Addr::new(240, 0, 0, 1)),
            ..Default::default()
        }
    }

    /// Adds a router; returns its id.
    pub fn add_router(&mut self, location: GeoPoint, asn: AsId) -> RouterId {
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(Router { location, asn });
        id
    }

    /// Number of routers added so far.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of links added so far.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Whether routers `a` and `b` are already linked.
    pub fn has_link(&self, a: RouterId, b: RouterId) -> bool {
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.link_set.contains(&key)
    }

    /// Router accessor (for generators that need positions mid-build).
    pub fn router(&self, id: RouterId) -> Option<&Router> {
        self.routers.get(id.0 as usize)
    }

    /// Adds a link between two routers, creating one interface on each
    /// with the given IPs.
    ///
    /// # Errors
    ///
    /// Rejects self-links, duplicate router pairs, unknown routers and
    /// duplicate IPs.
    pub fn add_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        ip_a: Ipv4Addr,
        ip_b: Ipv4Addr,
    ) -> Result<LinkId, TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLink(a));
        }
        if a.0 as usize >= self.routers.len() {
            return Err(TopologyError::UnknownRouter(a));
        }
        if b.0 as usize >= self.routers.len() {
            return Err(TopologyError::UnknownRouter(b));
        }
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if self.link_set.contains(&key) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        if self.ip_index.contains_key(&ip_a) {
            return Err(TopologyError::DuplicateIp(ip_a));
        }
        if ip_a == ip_b || self.ip_index.contains_key(&ip_b) {
            return Err(TopologyError::DuplicateIp(ip_b));
        }
        let if_a = InterfaceId(self.interfaces.len() as u32);
        self.interfaces.push(Interface {
            ip: ip_a,
            router: a,
        });
        self.ip_index.insert(ip_a, if_a);
        let if_b = InterfaceId(self.interfaces.len() as u32);
        self.interfaces.push(Interface {
            ip: ip_b,
            router: b,
        });
        self.ip_index.insert(ip_b, if_b);
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { a: if_a, b: if_b });
        self.link_set.insert(key);
        Ok(id)
    }

    /// Adds a link with automatically assigned IPs from reserved space
    /// (for baseline generators that do not model addressing).
    ///
    /// # Errors
    ///
    /// Same as [`TopologyBuilder::add_link`] except IP collisions, which
    /// cannot occur.
    pub fn add_link_auto(&mut self, a: RouterId, b: RouterId) -> Result<LinkId, TopologyError> {
        let ip_a = Ipv4Addr::from(self.auto_ip);
        let ip_b = Ipv4Addr::from(self.auto_ip + 1);
        self.auto_ip += 2;
        self.add_link(a, b, ip_a, ip_b)
    }

    /// Finalizes the topology, computing the CSR adjacency and per-router
    /// interface lists.
    pub fn build(self) -> Topology {
        let n = self.routers.len();
        // CSR construction in three passes: count degrees, prefix-sum the
        // offsets, then fill each router's slice in link-insertion order
        // (the same per-router neighbor order the old Vec<Vec<..>> gave).
        let mut adj_off: Vec<u32> = vec![0; n + 1];
        for link in &self.links {
            let ra = self.interfaces[link.a.0 as usize].router;
            let rb = self.interfaces[link.b.0 as usize].router;
            adj_off[ra.0 as usize + 1] += 1;
            adj_off[rb.0 as usize + 1] += 1;
        }
        for i in 1..=n {
            adj_off[i] += adj_off[i - 1];
        }
        let mut cursor: Vec<u32> = adj_off[..n].to_vec();
        let mut adj: Vec<AdjEntry> = vec![
            AdjEntry {
                neighbor: RouterId(0),
                packed: 0,
            };
            2 * self.links.len()
        ];
        for (i, link) in self.links.iter().enumerate() {
            let ra = self.interfaces[link.a.0 as usize].router;
            let rb = self.interfaces[link.b.0 as usize].router;
            let inter = self.routers[ra.0 as usize].asn != self.routers[rb.0 as usize].asn;
            let packed = i as u32 | if inter { INTERDOMAIN_BIT } else { 0 };
            adj[cursor[ra.0 as usize] as usize] = AdjEntry {
                neighbor: rb,
                packed,
            };
            cursor[ra.0 as usize] += 1;
            adj[cursor[rb.0 as usize] as usize] = AdjEntry {
                neighbor: ra,
                packed,
            };
            cursor[rb.0 as usize] += 1;
        }
        let mut router_ifaces: Vec<Vec<InterfaceId>> = vec![Vec::new(); n];
        for (i, iface) in self.interfaces.iter().enumerate() {
            router_ifaces[iface.router.0 as usize].push(InterfaceId(i as u32));
        }
        Topology {
            routers: self.routers,
            interfaces: self.interfaces,
            links: self.links,
            adj_off,
            adj,
            router_ifaces,
            ip_index: self.ip_index,
        }
    }
}

/// High bit of [`AdjEntry::packed`]: set when the edge crosses AS
/// boundaries. The low 31 bits hold the link id, so the interdomain
/// test costs a mask instead of two router lookups per relaxation.
const INTERDOMAIN_BIT: u32 = 1 << 31;

/// One edge of the flat CSR adjacency: the neighbor router plus the
/// connecting link id with the interdomain bit precomputed at build
/// time. Shortest-path relaxation reads everything it needs from the
/// 8-byte entry — no `is_interdomain` call, no link-table lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjEntry {
    neighbor: RouterId,
    packed: u32,
}

impl AdjEntry {
    /// The neighbor router on the far end of the edge.
    #[inline]
    pub fn neighbor(&self) -> RouterId {
        self.neighbor
    }

    /// The link realizing the edge.
    #[inline]
    pub fn link(&self) -> LinkId {
        LinkId(self.packed & !INTERDOMAIN_BIT)
    }

    /// Whether the edge crosses AS boundaries (precomputed at build).
    #[inline]
    pub fn is_interdomain(&self) -> bool {
        self.packed & INTERDOMAIN_BIT != 0
    }
}

/// An immutable router-level topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    routers: Vec<Router>,
    interfaces: Vec<Interface>,
    links: Vec<Link>,
    /// CSR offsets: router `r`'s edges live at `adj[adj_off[r]..adj_off[r+1]]`.
    adj_off: Vec<u32>,
    /// Flat CSR edge array, per-router runs in link-insertion order.
    adj: Vec<AdjEntry>,
    router_ifaces: Vec<Vec<InterfaceId>>,
    ip_index: HashMap<Ipv4Addr, InterfaceId>,
}

/// A structural invariant broken in a [`Topology`].
///
/// The builder cannot produce any of these; they surface corruption from
/// deserialized snapshots or future mutating code paths. Checked by
/// [`Topology::validate`], which the pipeline runs between stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyInvariant {
    /// An interface names a router that does not exist.
    InterfaceRouterOutOfRange(InterfaceId),
    /// The per-router interface lists do not partition the interface set
    /// (an interface is missing from, duplicated in, or listed under the
    /// wrong router).
    InterfacePartition(InterfaceId),
    /// A link endpoint names an interface that does not exist.
    DanglingLinkEndpoint(LinkId),
    /// A link connects two interfaces on the same router.
    SelfLoopLink(LinkId, RouterId),
    /// The adjacency structure disagrees with the link list.
    AdjacencyMismatch(RouterId),
    /// The IP index does not bijectively map addresses to interfaces.
    IpIndexMismatch(Ipv4Addr),
}

impl std::fmt::Display for TopologyInvariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyInvariant::InterfaceRouterOutOfRange(i) => {
                write!(f, "interface {} references a nonexistent router", i.0)
            }
            TopologyInvariant::InterfacePartition(i) => write!(
                f,
                "interface {} is not partitioned correctly into router interface lists",
                i.0
            ),
            TopologyInvariant::DanglingLinkEndpoint(l) => {
                write!(f, "link {} has a dangling interface endpoint", l.0)
            }
            TopologyInvariant::SelfLoopLink(l, r) => {
                write!(f, "link {} is a self-loop at router {}", l.0, r.0)
            }
            TopologyInvariant::AdjacencyMismatch(r) => {
                write!(
                    f,
                    "adjacency of router {} disagrees with the link list",
                    r.0
                )
            }
            TopologyInvariant::IpIndexMismatch(ip) => {
                write!(
                    f,
                    "ip index entry for {ip} disagrees with the interface table"
                )
            }
        }
    }
}

impl std::error::Error for TopologyInvariant {}

impl Topology {
    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of interfaces.
    pub fn num_interfaces(&self) -> usize {
        self.interfaces.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Router by id.
    ///
    /// # Panics
    ///
    /// Panics on an id not produced by the owning builder.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.0 as usize]
    }

    /// Interface by id.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn interface(&self, id: InterfaceId) -> &Interface {
        &self.interfaces[id.0 as usize]
    }

    /// Link by id.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// All routers with ids.
    pub fn routers(&self) -> impl Iterator<Item = (RouterId, &Router)> {
        self.routers
            .iter()
            .enumerate()
            .map(|(i, r)| (RouterId(i as u32), r))
    }

    /// All interfaces with ids.
    pub fn interfaces(&self) -> impl Iterator<Item = (InterfaceId, &Interface)> {
        self.interfaces
            .iter()
            .enumerate()
            .map(|(i, f)| (InterfaceId(i as u32), f))
    }

    /// All links with ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Neighbours of a router with the connecting link: a contiguous
    /// slice of the flat CSR edge array, in link-insertion order.
    // analyze: hot-path-root
    #[inline]
    pub fn neighbors(&self, r: RouterId) -> &[AdjEntry] {
        let lo = self.adj_off[r.0 as usize] as usize;
        let hi = self.adj_off[r.0 as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Router degree (number of incident links).
    #[inline]
    pub fn degree(&self, r: RouterId) -> usize {
        (self.adj_off[r.0 as usize + 1] - self.adj_off[r.0 as usize]) as usize
    }

    /// Interfaces on a router.
    pub fn interfaces_of(&self, r: RouterId) -> &[InterfaceId] {
        &self.router_ifaces[r.0 as usize]
    }

    /// The interface holding `ip`, if any.
    pub fn interface_by_ip(&self, ip: Ipv4Addr) -> Option<InterfaceId> {
        self.ip_index.get(&ip).copied()
    }

    /// The router owning `ip`, if any.
    pub fn router_by_ip(&self, ip: Ipv4Addr) -> Option<RouterId> {
        self.interface_by_ip(ip)
            .map(|i| self.interfaces[i.0 as usize].router)
    }

    /// Router endpoints of a link.
    pub fn link_routers(&self, id: LinkId) -> (RouterId, RouterId) {
        let l = &self.links[id.0 as usize];
        (
            self.interfaces[l.a.0 as usize].router,
            self.interfaces[l.b.0 as usize].router,
        )
    }

    /// Great-circle length of a link in statute miles.
    pub fn link_length_miles(&self, id: LinkId) -> f64 {
        let (a, b) = self.link_routers(id);
        haversine_miles(
            &self.routers[a.0 as usize].location,
            &self.routers[b.0 as usize].location,
        )
    }

    /// Whether a link crosses AS boundaries (the paper's
    /// interdomain/intradomain distinction, Section VI-C).
    pub fn is_interdomain(&self, id: LinkId) -> bool {
        let (a, b) = self.link_routers(id);
        self.routers[a.0 as usize].asn != self.routers[b.0 as usize].asn
    }

    /// Checks every structural invariant of the topology:
    ///
    /// 1. each interface belongs to an existing router, and the
    ///    per-router interface lists exactly partition the interface set;
    /// 2. no link endpoint dangles (both interfaces exist);
    /// 3. no link connects two interfaces of the same router;
    /// 4. the adjacency structure agrees with the link list;
    /// 5. the IP index is a bijection onto the interface table.
    ///
    /// The builder establishes all of these; `validate` re-checks them on
    /// data that crossed a serialization boundary or a new mutation path.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TopologyInvariant> {
        // 1. Interface/router partition.
        for (i, iface) in self.interfaces.iter().enumerate() {
            if iface.router.0 as usize >= self.routers.len() {
                return Err(TopologyInvariant::InterfaceRouterOutOfRange(InterfaceId(
                    i as u32,
                )));
            }
        }
        if self.router_ifaces.len() != self.routers.len() {
            return Err(TopologyInvariant::InterfacePartition(InterfaceId(0)));
        }
        let mut seen = vec![false; self.interfaces.len()];
        for (r, list) in self.router_ifaces.iter().enumerate() {
            for &iid in list {
                let idx = iid.0 as usize;
                if idx >= self.interfaces.len()
                    || seen[idx]
                    || self.interfaces[idx].router.0 as usize != r
                {
                    return Err(TopologyInvariant::InterfacePartition(iid));
                }
                seen[idx] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(TopologyInvariant::InterfacePartition(InterfaceId(
                missing as u32,
            )));
        }

        // 2 + 3. Link endpoints exist and span two distinct routers.
        for (l, link) in self.links.iter().enumerate() {
            let lid = LinkId(l as u32);
            if link.a.0 as usize >= self.interfaces.len()
                || link.b.0 as usize >= self.interfaces.len()
            {
                return Err(TopologyInvariant::DanglingLinkEndpoint(lid));
            }
            let ra = self.interfaces[link.a.0 as usize].router;
            let rb = self.interfaces[link.b.0 as usize].router;
            if ra == rb {
                return Err(TopologyInvariant::SelfLoopLink(lid, ra));
            }
        }

        // 4. CSR adjacency agrees with the link list: the offset array is
        // a well-formed prefix-sum over the edge array (n+1 entries,
        // starts at zero, monotone, covers exactly 2×links), every entry
        // names an existing link joining this router to the recorded
        // neighbor, and the precomputed interdomain bit matches the AS
        // labels re-derived from the router table.
        if self.adj_off.len() != self.routers.len() + 1
            || self.adj_off.first() != Some(&0)
            || self.adj_off.last().copied() != Some(self.adj.len() as u32)
            || self.adj.len() != 2 * self.links.len()
        {
            return Err(TopologyInvariant::AdjacencyMismatch(RouterId(0)));
        }
        for r in 0..self.routers.len() {
            let (lo, hi) = (self.adj_off[r], self.adj_off[r + 1]);
            if lo > hi || hi as usize > self.adj.len() {
                return Err(TopologyInvariant::AdjacencyMismatch(RouterId(r as u32)));
            }
            for e in &self.adj[lo as usize..hi as usize] {
                let lid = e.link();
                if lid.0 as usize >= self.links.len() {
                    return Err(TopologyInvariant::AdjacencyMismatch(RouterId(r as u32)));
                }
                let (ra, rb) = self.link_routers(lid);
                let nbr = e.neighbor();
                let pair_ok =
                    (ra.0 as usize == r && rb == nbr) || (rb.0 as usize == r && ra == nbr);
                if !pair_ok {
                    return Err(TopologyInvariant::AdjacencyMismatch(RouterId(r as u32)));
                }
                let inter = self.routers[ra.0 as usize].asn != self.routers[rb.0 as usize].asn;
                if e.is_interdomain() != inter {
                    return Err(TopologyInvariant::AdjacencyMismatch(RouterId(r as u32)));
                }
            }
        }

        // 5. IP index bijection.
        if self.ip_index.len() != self.interfaces.len() {
            let stray = self
                .ip_index
                .keys()
                .next()
                .copied()
                .unwrap_or(Ipv4Addr::UNSPECIFIED);
            return Err(TopologyInvariant::IpIndexMismatch(stray));
        }
        for (&ip, &iid) in &self.ip_index {
            if iid.0 as usize >= self.interfaces.len() || self.interfaces[iid.0 as usize].ip != ip {
                return Err(TopologyInvariant::IpIndexMismatch(ip));
            }
        }
        Ok(())
    }

    /// The outgoing interface on router `from` for the link to `to`
    /// (used by the traceroute simulator to report hop addresses).
    pub fn interface_between(&self, from: RouterId, to: RouterId) -> Option<InterfaceId> {
        let lid = self
            .neighbors(from)
            .iter()
            .find(|e| e.neighbor() == to)?
            .link();
        let l = &self.links[lid.0 as usize];
        let ia = l.a;
        if self.interfaces[ia.0 as usize].router == from {
            Some(ia)
        } else {
            Some(l.b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn build_small_topology() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(40.0, -100.0), AsId(1));
        let r1 = b.add_router(loc(41.0, -101.0), AsId(1));
        let r2 = b.add_router(loc(42.0, -102.0), AsId(2));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        b.add_link(r1, r2, ip("1.0.0.3"), ip("2.0.0.1")).unwrap();
        let t = b.build();
        assert_eq!(t.num_routers(), 3);
        assert_eq!(t.num_interfaces(), 4);
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.degree(r1), 2);
        assert_eq!(t.degree(r0), 1);
        assert_eq!(t.interfaces_of(r1).len(), 2);
    }

    #[test]
    fn rejects_self_link() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        assert_eq!(
            b.add_link(r0, r0, ip("1.0.0.1"), ip("1.0.0.2"))
                .unwrap_err(),
            TopologyError::SelfLink(r0)
        );
    }

    #[test]
    fn rejects_duplicate_link_both_orders() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        assert!(b.has_link(r0, r1) && b.has_link(r1, r0));
        assert_eq!(
            b.add_link(r1, r0, ip("1.0.0.3"), ip("1.0.0.4"))
                .unwrap_err(),
            TopologyError::DuplicateLink(r1, r0)
        );
    }

    #[test]
    fn rejects_duplicate_ip() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        let r2 = b.add_router(loc(2.0, 2.0), AsId(1));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        assert_eq!(
            b.add_link(r0, r2, ip("1.0.0.1"), ip("1.0.0.9"))
                .unwrap_err(),
            TopologyError::DuplicateIp(ip("1.0.0.1"))
        );
        assert_eq!(
            b.add_link(r0, r2, ip("1.0.0.8"), ip("1.0.0.8"))
                .unwrap_err(),
            TopologyError::DuplicateIp(ip("1.0.0.8"))
        );
    }

    #[test]
    fn rejects_unknown_router() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        assert_eq!(
            b.add_link(r0, RouterId(99), ip("1.0.0.1"), ip("1.0.0.2"))
                .unwrap_err(),
            TopologyError::UnknownRouter(RouterId(99))
        );
    }

    #[test]
    fn ip_lookup_roundtrip() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(2));
        b.add_link(r0, r1, ip("9.0.0.1"), ip("9.0.0.2")).unwrap();
        let t = b.build();
        assert_eq!(t.router_by_ip(ip("9.0.0.1")), Some(r0));
        assert_eq!(t.router_by_ip(ip("9.0.0.2")), Some(r1));
        assert_eq!(t.router_by_ip(ip("9.9.9.9")), None);
    }

    #[test]
    fn link_length_and_domain() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(40.0, -100.0), AsId(1));
        let r1 = b.add_router(loc(40.0, -99.0), AsId(1));
        let r2 = b.add_router(loc(40.0, -98.0), AsId(2));
        let l01 = b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        let l12 = b.add_link(r1, r2, ip("1.0.0.3"), ip("2.0.0.1")).unwrap();
        let t = b.build();
        assert!(!t.is_interdomain(l01));
        assert!(t.is_interdomain(l12));
        // One degree of longitude at 40N is ~53 miles.
        let len = t.link_length_miles(l01);
        assert!((len - 53.0).abs() < 2.0, "len {len}");
    }

    #[test]
    fn interface_between_reports_correct_side() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        let t = b.build();
        let i01 = t.interface_between(r0, r1).unwrap();
        assert_eq!(t.interface(i01).ip, ip("1.0.0.1"));
        let i10 = t.interface_between(r1, r0).unwrap();
        assert_eq!(t.interface(i10).ip, ip("1.0.0.2"));
        assert_eq!(t.interface_between(r0, RouterId(0)), None);
    }

    #[test]
    fn auto_ip_links_use_reserved_space() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        b.add_link_auto(r0, r1).unwrap();
        let t = b.build();
        for (_, iface) in t.interfaces() {
            assert!(u32::from(iface.ip) >= u32::from(Ipv4Addr::new(240, 0, 0, 0)));
        }
    }

    /// A valid 3-router topology for corruption tests.
    fn valid_topology() -> Topology {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        let r2 = b.add_router(loc(2.0, 2.0), AsId(2));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        b.add_link(r1, r2, ip("1.0.0.3"), ip("2.0.0.1")).unwrap();
        b.build()
    }

    #[test]
    fn validate_accepts_builder_output() {
        assert_eq!(valid_topology().validate(), Ok(()));
        // The empty topology is trivially valid too.
        assert_eq!(TopologyBuilder::new().build().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_interface_with_unknown_router() {
        let mut t = valid_topology();
        t.interfaces[2].router = RouterId(99);
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::InterfaceRouterOutOfRange(InterfaceId(2)))
        );
    }

    #[test]
    fn validate_rejects_broken_interface_partition() {
        // Listed under the wrong router.
        let mut t = valid_topology();
        let moved = t.router_ifaces[0].pop().unwrap();
        t.router_ifaces[2].push(moved);
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::InterfacePartition(_))
        ));
        // Dropped from every list.
        let mut t = valid_topology();
        t.router_ifaces[0].clear();
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::InterfacePartition(_))
        ));
    }

    #[test]
    fn validate_rejects_dangling_link_endpoint() {
        let mut t = valid_topology();
        t.links[1].b = InterfaceId(500);
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::DanglingLinkEndpoint(LinkId(1)))
        );
    }

    #[test]
    fn validate_rejects_self_loop_link() {
        let mut t = valid_topology();
        // Interfaces 0 and 1 sit on routers 0 and 1; re-point the second
        // endpoint at another interface of the same router as the first.
        t.interfaces[1].router = t.interfaces[0].router;
        // Keep the partition consistent so the self-loop check is what
        // fires: rebuild router_ifaces from the mutated interface table.
        let n = t.routers.len();
        t.router_ifaces = vec![Vec::new(); n];
        for (i, iface) in t.interfaces.iter().enumerate() {
            t.router_ifaces[iface.router.0 as usize].push(InterfaceId(i as u32));
        }
        // Adjacency is now also stale, but the self-loop is detected
        // first.
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::SelfLoopLink(LinkId(0), RouterId(0)))
        );
    }

    #[test]
    fn validate_rejects_adjacency_mismatch() {
        // A dropped edge breaks the 2×links count.
        let mut t = valid_topology();
        t.adj.pop();
        t.adj_off[3] -= 1;
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::AdjacencyMismatch(_))
        ));
        // A corrupted offset breaks the prefix-sum structure.
        let mut t = valid_topology();
        t.adj_off[1] = 99;
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::AdjacencyMismatch(_))
        ));
        // A misdirected entry (wrong neighbor for its link) is caught.
        let mut t = valid_topology();
        t.adj[0].neighbor = RouterId(2);
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::AdjacencyMismatch(_))
        ));
        // A flipped interdomain bit disagrees with the AS labels.
        let mut t = valid_topology();
        t.adj[0].packed ^= INTERDOMAIN_BIT;
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::AdjacencyMismatch(_))
        ));
    }

    #[test]
    fn csr_offsets_are_a_prefix_sum_of_degrees() {
        let t = valid_topology();
        assert_eq!(t.adj_off, vec![0, 1, 3, 4]);
        assert_eq!(t.adj.len(), 2 * t.num_links());
        for (r, _) in t.routers() {
            assert_eq!(t.neighbors(r).len(), t.degree(r));
        }
    }

    #[test]
    fn csr_entries_carry_links_and_interdomain_flags() {
        // valid_topology: r0(AS1)-r1(AS1) on link 0, r1(AS1)-r2(AS2) on
        // link 1. Neighbor runs follow link insertion order.
        let t = valid_topology();
        let n0 = t.neighbors(RouterId(0));
        assert_eq!(n0.len(), 1);
        assert_eq!(n0[0].neighbor(), RouterId(1));
        assert_eq!(n0[0].link(), LinkId(0));
        assert!(!n0[0].is_interdomain());
        let n1 = t.neighbors(RouterId(1));
        assert_eq!(
            n1.iter().map(AdjEntry::neighbor).collect::<Vec<_>>(),
            vec![RouterId(0), RouterId(2)]
        );
        assert_eq!(
            n1.iter().map(AdjEntry::link).collect::<Vec<_>>(),
            vec![LinkId(0), LinkId(1)]
        );
        assert!(!n1[0].is_interdomain());
        assert!(n1[1].is_interdomain());
        // Every flag agrees with the link-table derivation.
        for (r, _) in t.routers() {
            for e in t.neighbors(r) {
                assert_eq!(e.is_interdomain(), t.is_interdomain(e.link()));
            }
        }
    }

    #[test]
    fn validate_rejects_ip_index_corruption() {
        let mut t = valid_topology();
        let (&some_ip, _) = t.ip_index.iter().next().unwrap();
        t.ip_index.insert(some_ip, InterfaceId(77));
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::IpIndexMismatch(_))
        ));
        // A stale extra entry is also caught (size mismatch).
        let mut t = valid_topology();
        t.ip_index.insert(ip("200.0.0.1"), InterfaceId(0));
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::IpIndexMismatch(_))
        ));
    }

    #[test]
    fn iterators_cover_everything() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        let r2 = b.add_router(loc(2.0, 2.0), AsId(1));
        b.add_link_auto(r0, r1).unwrap();
        b.add_link_auto(r1, r2).unwrap();
        let t = b.build();
        assert_eq!(t.routers().count(), 3);
        assert_eq!(t.interfaces().count(), 4);
        assert_eq!(t.links().count(), 2);
    }
}
