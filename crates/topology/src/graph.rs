//! The router-level topology data structure.
//!
//! Terminology follows the paper strictly: a **router** is a device at a
//! geographic location belonging to one AS; an **interface** is an IP
//! address on a router (one per incident link — this is why Skitter,
//! which cannot resolve aliases, sees more nodes than Mercator); a
//! **link** connects two interfaces on different routers.
//!
//! # Data layout
//!
//! The topology is stored struct-of-arrays throughout, sized for worlds
//! of several hundred thousand routers (the paper's inputs were ~704k
//! Skitter and ~268k Mercator interfaces):
//!
//! * routers are two parallel arrays (`locations`, `asns`) — 20 bytes
//!   per router, no per-router allocation;
//! * interfaces are two parallel arrays (`iface_ip` as raw `u32`,
//!   `iface_router`) — 8 bytes per interface;
//! * router→interface membership is CSR (`iface_off`/`iface_ids`),
//!   replacing the former `Vec<Vec<InterfaceId>>` whose per-router heap
//!   headers alone cost 24 bytes a router;
//! * the IP index is a sorted `(u32, InterfaceId)` array probed by
//!   binary search — 8 bytes per interface instead of the ~48 a
//!   `HashMap<Ipv4Addr, InterfaceId>` entry occupies;
//! * AS membership is CSR over a sorted distinct-AS table
//!   (`as_ids`/`as_off`/`as_members`), giving collectors per-AS router
//!   ranges without rebuilding a `HashMap<AsId, Vec<RouterId>>` per run;
//! * adjacency stays the PR 5 CSR (`adj_off`/`adj` of packed
//!   [`AdjEntry`]).
//!
//! Everything is built in `TopologyBuilder::build` by counting passes +
//! prefix sums; `validate()` re-derives every invariant of the packed
//! layout from scratch.

use geotopo_bgp::AsId;
use geotopo_geo::{haversine_miles, GeoPoint};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Index of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// Index of an interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InterfaceId(pub u32);

/// Index of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A router: a located, AS-labelled node.
///
/// Materialized on demand from the parallel location/ASN arrays; the
/// topology does not store `Router` values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Router {
    /// Geographic location.
    pub location: GeoPoint,
    /// Parent autonomous system.
    pub asn: AsId,
}

/// An interface: an IP address on a router.
///
/// Materialized on demand from the parallel IP/router arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interface {
    /// The interface's IP address (unique network-wide).
    pub ip: Ipv4Addr,
    /// The router the interface belongs to.
    pub router: RouterId,
}

/// A link between two interfaces (and hence two routers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Interface on the first router.
    pub a: InterfaceId,
    /// Interface on the second router.
    pub b: InterfaceId,
}

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Link endpoints are the same router.
    SelfLink(RouterId),
    /// The router pair is already linked.
    DuplicateLink(RouterId, RouterId),
    /// The IP address is already assigned to another interface.
    DuplicateIp(Ipv4Addr),
    /// Referenced router does not exist.
    UnknownRouter(RouterId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::SelfLink(r) => write!(f, "self-link at router {}", r.0),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "routers {} and {} already linked", a.0, b.0)
            }
            TopologyError::DuplicateIp(ip) => write!(f, "IP {ip} already assigned"),
            TopologyError::UnknownRouter(r) => write!(f, "unknown router {}", r.0),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incrementally builds a [`Topology`] with validation.
///
/// The builder is arena-style: routers and interfaces are appended to
/// flat parallel arrays and referred to by index from the moment they
/// are created. The only non-array state is the pair of hash sets that
/// give O(1) duplicate-link/duplicate-IP rejection during construction;
/// both are dropped at [`TopologyBuilder::build`] time, so the finished
/// topology carries no hash tables at all.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    locations: Vec<GeoPoint>,
    asns: Vec<AsId>,
    iface_ip: Vec<u32>,
    iface_router: Vec<RouterId>,
    links: Vec<Link>,
    ip_set: std::collections::HashSet<u32>,
    link_set: std::collections::HashSet<(u32, u32)>,
    auto_ip: u32,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            // Auto-assigned IPs come from 240.0.0.0/4 (reserved space) so
            // they can never collide with allocator-assigned addresses.
            auto_ip: u32::from(Ipv4Addr::new(240, 0, 0, 1)),
            ..Default::default()
        }
    }

    /// Creates a builder with capacity reserved for `routers` routers and
    /// `links` links (two interfaces per link), so generators that know
    /// their target size up front build without reallocation churn.
    pub fn with_capacity(routers: usize, links: usize) -> Self {
        let mut b = TopologyBuilder::new();
        b.locations.reserve(routers);
        b.asns.reserve(routers);
        b.iface_ip.reserve(2 * links);
        b.iface_router.reserve(2 * links);
        b.links.reserve(links);
        b.ip_set.reserve(2 * links);
        b.link_set.reserve(links);
        b
    }

    /// Adds a router; returns its id.
    pub fn add_router(&mut self, location: GeoPoint, asn: AsId) -> RouterId {
        let id = RouterId(self.locations.len() as u32);
        self.locations.push(location);
        self.asns.push(asn);
        id
    }

    /// Number of routers added so far.
    pub fn num_routers(&self) -> usize {
        self.locations.len()
    }

    /// Number of links added so far.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Whether routers `a` and `b` are already linked.
    pub fn has_link(&self, a: RouterId, b: RouterId) -> bool {
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.link_set.contains(&key)
    }

    /// Router accessor (for generators that need positions mid-build).
    pub fn router(&self, id: RouterId) -> Option<Router> {
        let i = id.0 as usize;
        match (self.locations.get(i), self.asns.get(i)) {
            (Some(&location), Some(&asn)) => Some(Router { location, asn }),
            _ => None,
        }
    }

    /// Adds a link between two routers, creating one interface on each
    /// with the given IPs.
    ///
    /// # Errors
    ///
    /// Rejects self-links, duplicate router pairs, unknown routers and
    /// duplicate IPs.
    pub fn add_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        ip_a: Ipv4Addr,
        ip_b: Ipv4Addr,
    ) -> Result<LinkId, TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLink(a));
        }
        if a.0 as usize >= self.locations.len() {
            return Err(TopologyError::UnknownRouter(a));
        }
        if b.0 as usize >= self.locations.len() {
            return Err(TopologyError::UnknownRouter(b));
        }
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if self.link_set.contains(&key) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        let (raw_a, raw_b) = (u32::from(ip_a), u32::from(ip_b));
        if self.ip_set.contains(&raw_a) {
            return Err(TopologyError::DuplicateIp(ip_a));
        }
        if raw_a == raw_b || self.ip_set.contains(&raw_b) {
            return Err(TopologyError::DuplicateIp(ip_b));
        }
        let if_a = InterfaceId(self.iface_ip.len() as u32);
        self.iface_ip.push(raw_a);
        self.iface_router.push(a);
        self.ip_set.insert(raw_a);
        let if_b = InterfaceId(self.iface_ip.len() as u32);
        self.iface_ip.push(raw_b);
        self.iface_router.push(b);
        self.ip_set.insert(raw_b);
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { a: if_a, b: if_b });
        self.link_set.insert(key);
        Ok(id)
    }

    /// Adds a link with automatically assigned IPs from reserved space
    /// (for baseline generators that do not model addressing).
    ///
    /// # Errors
    ///
    /// Same as [`TopologyBuilder::add_link`] except IP collisions, which
    /// cannot occur.
    pub fn add_link_auto(&mut self, a: RouterId, b: RouterId) -> Result<LinkId, TopologyError> {
        let ip_a = Ipv4Addr::from(self.auto_ip);
        let ip_b = Ipv4Addr::from(self.auto_ip + 1);
        self.auto_ip += 2;
        self.add_link(a, b, ip_a, ip_b)
    }

    /// Finalizes the topology, computing every packed index: CSR
    /// adjacency, CSR per-router interface lists, the sorted IP index
    /// and the AS-membership ranges.
    pub fn build(self) -> Topology {
        let n = self.locations.len();
        // Duplicate detection is over; drop the hash sets before the
        // index-building passes so peak memory is arrays only.
        drop(self.ip_set);
        drop(self.link_set);

        // CSR adjacency in three passes: count degrees, prefix-sum the
        // offsets, then fill each router's slice in link-insertion order
        // (the same per-router neighbor order the old Vec<Vec<..>> gave).
        let mut adj_off: Vec<u32> = vec![0; n + 1];
        for link in &self.links {
            let ra = self.iface_router[link.a.0 as usize];
            let rb = self.iface_router[link.b.0 as usize];
            adj_off[ra.0 as usize + 1] += 1;
            adj_off[rb.0 as usize + 1] += 1;
        }
        for i in 1..=n {
            adj_off[i] += adj_off[i - 1];
        }
        let mut cursor: Vec<u32> = adj_off[..n].to_vec();
        let mut adj: Vec<AdjEntry> = vec![
            AdjEntry {
                neighbor: RouterId(0),
                packed: 0,
            };
            2 * self.links.len()
        ];
        for (i, link) in self.links.iter().enumerate() {
            let ra = self.iface_router[link.a.0 as usize];
            let rb = self.iface_router[link.b.0 as usize];
            let inter = self.asns[ra.0 as usize] != self.asns[rb.0 as usize];
            let packed = i as u32 | if inter { INTERDOMAIN_BIT } else { 0 };
            adj[cursor[ra.0 as usize] as usize] = AdjEntry {
                neighbor: rb,
                packed,
            };
            cursor[ra.0 as usize] += 1;
            adj[cursor[rb.0 as usize] as usize] = AdjEntry {
                neighbor: ra,
                packed,
            };
            cursor[rb.0 as usize] += 1;
        }

        // Router→interface CSR, filled in interface-insertion order so
        // each router's slice keeps its historical push order.
        let mut iface_off: Vec<u32> = vec![0; n + 1];
        for r in &self.iface_router {
            iface_off[r.0 as usize + 1] += 1;
        }
        for i in 1..=n {
            iface_off[i] += iface_off[i - 1];
        }
        let mut cursor: Vec<u32> = iface_off[..n].to_vec();
        let mut iface_ids: Vec<InterfaceId> = vec![InterfaceId(0); self.iface_router.len()];
        for (i, r) in self.iface_router.iter().enumerate() {
            iface_ids[cursor[r.0 as usize] as usize] = InterfaceId(i as u32);
            cursor[r.0 as usize] += 1;
        }

        // Sorted IP index (IPs are unique, so an unstable sort is fine).
        let mut ip_index: Vec<(u32, InterfaceId)> = self
            .iface_ip
            .iter()
            .enumerate()
            .map(|(i, &ip)| (ip, InterfaceId(i as u32)))
            .collect();
        ip_index.sort_unstable_by_key(|&(ip, _)| ip);

        // AS-membership CSR: group routers by ASN (ascending), routers
        // ascending within each group. The (asn, id) sort key makes the
        // grouping deterministic regardless of insertion order.
        let mut as_members: Vec<RouterId> = (0..n as u32).map(RouterId).collect();
        as_members.sort_unstable_by_key(|r| (self.asns[r.0 as usize], r.0));
        let mut as_ids: Vec<AsId> = Vec::new();
        let mut as_off: Vec<u32> = vec![0];
        for (i, r) in as_members.iter().enumerate() {
            let asn = self.asns[r.0 as usize];
            if as_ids.last() != Some(&asn) {
                as_ids.push(asn);
                as_off.push(i as u32);
            }
            let last = as_off.len() - 1;
            as_off[last] = i as u32 + 1;
        }

        Topology {
            locations: self.locations,
            asns: self.asns,
            iface_ip: self.iface_ip,
            iface_router: self.iface_router,
            links: self.links,
            adj_off,
            adj,
            iface_off,
            iface_ids,
            ip_index,
            as_ids,
            as_off,
            as_members,
        }
    }
}

/// High bit of [`AdjEntry::packed`]: set when the edge crosses AS
/// boundaries. The low 31 bits hold the link id, so the interdomain
/// test costs a mask instead of two router lookups per relaxation.
const INTERDOMAIN_BIT: u32 = 1 << 31;

/// One edge of the flat CSR adjacency: the neighbor router plus the
/// connecting link id with the interdomain bit precomputed at build
/// time. Shortest-path relaxation reads everything it needs from the
/// 8-byte entry — no `is_interdomain` call, no link-table lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjEntry {
    neighbor: RouterId,
    packed: u32,
}

impl AdjEntry {
    /// The neighbor router on the far end of the edge.
    #[inline]
    pub fn neighbor(&self) -> RouterId {
        self.neighbor
    }

    /// The link realizing the edge.
    #[inline]
    pub fn link(&self) -> LinkId {
        LinkId(self.packed & !INTERDOMAIN_BIT)
    }

    /// Whether the edge crosses AS boundaries (precomputed at build).
    #[inline]
    pub fn is_interdomain(&self) -> bool {
        self.packed & INTERDOMAIN_BIT != 0
    }
}

/// An immutable router-level topology in fully packed form.
///
/// See the module docs for the layout. All accessors that used to hand
/// out `&Router`/`&Interface` now return the (`Copy`) values
/// materialized from the parallel arrays.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// Router locations, indexed by `RouterId`.
    locations: Vec<GeoPoint>,
    /// Router AS labels, parallel to `locations`.
    asns: Vec<AsId>,
    /// Interface IPs as raw big-endian `u32`, indexed by `InterfaceId`.
    iface_ip: Vec<u32>,
    /// Owning router of each interface, parallel to `iface_ip`.
    iface_router: Vec<RouterId>,
    links: Vec<Link>,
    /// CSR offsets: router `r`'s edges live at `adj[adj_off[r]..adj_off[r+1]]`.
    adj_off: Vec<u32>,
    /// Flat CSR edge array, per-router runs in link-insertion order.
    adj: Vec<AdjEntry>,
    /// CSR offsets: router `r`'s interfaces live at
    /// `iface_ids[iface_off[r]..iface_off[r+1]]`.
    iface_off: Vec<u32>,
    /// Flat interface-membership array, per-router runs in
    /// interface-creation order.
    iface_ids: Vec<InterfaceId>,
    /// `(ip, interface)` pairs sorted strictly ascending by IP; lookups
    /// binary-search this array.
    ip_index: Vec<(u32, InterfaceId)>,
    /// Distinct AS numbers, sorted strictly ascending.
    as_ids: Vec<AsId>,
    /// CSR offsets into `as_members`, parallel to `as_ids` (+1).
    as_off: Vec<u32>,
    /// Router ids grouped by AS, ascending within each group; the groups
    /// partition the router set.
    as_members: Vec<RouterId>,
}

/// A structural invariant broken in a [`Topology`].
///
/// The builder cannot produce any of these; they surface corruption from
/// deserialized snapshots or future mutating code paths. Checked by
/// [`Topology::validate`], which the pipeline runs between stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyInvariant {
    /// Two parallel arrays of the SoA layout disagree in length.
    ParallelArrayMismatch(&'static str),
    /// An interface names a router that does not exist.
    InterfaceRouterOutOfRange(InterfaceId),
    /// The per-router interface CSR does not partition the interface set
    /// (bad offsets, or an interface missing, duplicated, or listed
    /// under the wrong router).
    InterfacePartition(InterfaceId),
    /// A link endpoint names an interface that does not exist.
    DanglingLinkEndpoint(LinkId),
    /// A link connects two interfaces on the same router.
    SelfLoopLink(LinkId, RouterId),
    /// The adjacency structure disagrees with the link list.
    AdjacencyMismatch(RouterId),
    /// The sorted IP index is out of order at this address.
    IpIndexUnsorted(Ipv4Addr),
    /// The IP index does not bijectively map addresses to interfaces.
    IpIndexMismatch(Ipv4Addr),
    /// The AS-membership ranges do not cover the router set, or disagree
    /// with the per-router AS labels.
    AsRangeMismatch(AsId),
}

impl std::fmt::Display for TopologyInvariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyInvariant::ParallelArrayMismatch(what) => {
                write!(f, "parallel array length mismatch in {what}")
            }
            TopologyInvariant::InterfaceRouterOutOfRange(i) => {
                write!(f, "interface {} references a nonexistent router", i.0)
            }
            TopologyInvariant::InterfacePartition(i) => write!(
                f,
                "interface {} is not partitioned correctly into router interface lists",
                i.0
            ),
            TopologyInvariant::DanglingLinkEndpoint(l) => {
                write!(f, "link {} has a dangling interface endpoint", l.0)
            }
            TopologyInvariant::SelfLoopLink(l, r) => {
                write!(f, "link {} is a self-loop at router {}", l.0, r.0)
            }
            TopologyInvariant::AdjacencyMismatch(r) => {
                write!(
                    f,
                    "adjacency of router {} disagrees with the link list",
                    r.0
                )
            }
            TopologyInvariant::IpIndexUnsorted(ip) => {
                write!(f, "ip index is out of sorted order at {ip}")
            }
            TopologyInvariant::IpIndexMismatch(ip) => {
                write!(
                    f,
                    "ip index entry for {ip} disagrees with the interface table"
                )
            }
            TopologyInvariant::AsRangeMismatch(asn) => {
                write!(
                    f,
                    "AS-membership range for AS {} disagrees with the router table",
                    asn.0
                )
            }
        }
    }
}

impl std::error::Error for TopologyInvariant {}

impl Topology {
    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.locations.len()
    }

    /// Number of interfaces.
    pub fn num_interfaces(&self) -> usize {
        self.iface_ip.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of distinct ASes present in the router table.
    pub fn num_ases(&self) -> usize {
        self.as_ids.len()
    }

    /// Approximate heap footprint of the packed arrays, in bytes. Exact
    /// for the elements stored; allocator slack and `Vec` headers are
    /// not counted. Feeds the engine's resident-artifact accounting.
    pub fn mem_bytes(&self) -> usize {
        use std::mem::size_of;
        self.locations.len() * size_of::<GeoPoint>()
            + self.asns.len() * size_of::<AsId>()
            + self.iface_ip.len() * size_of::<u32>()
            + self.iface_router.len() * size_of::<RouterId>()
            + self.links.len() * size_of::<Link>()
            + self.adj_off.len() * size_of::<u32>()
            + self.adj.len() * size_of::<AdjEntry>()
            + self.iface_off.len() * size_of::<u32>()
            + self.iface_ids.len() * size_of::<InterfaceId>()
            + self.ip_index.len() * size_of::<(u32, InterfaceId)>()
            + self.as_ids.len() * size_of::<AsId>()
            + self.as_off.len() * size_of::<u32>()
            + self.as_members.len() * size_of::<RouterId>()
    }

    /// Router by id, materialized from the parallel arrays.
    ///
    /// # Panics
    ///
    /// Panics on an id not produced by the owning builder.
    #[inline]
    pub fn router(&self, id: RouterId) -> Router {
        Router {
            location: self.locations[id.0 as usize],
            asn: self.asns[id.0 as usize],
        }
    }

    /// Location of a router (single-array access for spatial hot loops).
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    #[inline]
    pub fn location(&self, id: RouterId) -> GeoPoint {
        self.locations[id.0 as usize]
    }

    /// AS label of a router (single-array access).
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    #[inline]
    pub fn asn(&self, id: RouterId) -> AsId {
        self.asns[id.0 as usize]
    }

    /// Interface by id, materialized from the parallel arrays.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    #[inline]
    pub fn interface(&self, id: InterfaceId) -> Interface {
        Interface {
            ip: Ipv4Addr::from(self.iface_ip[id.0 as usize]),
            router: self.iface_router[id.0 as usize],
        }
    }

    /// Link by id.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    #[inline]
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.0 as usize]
    }

    /// All routers with ids.
    pub fn routers(&self) -> impl Iterator<Item = (RouterId, Router)> + '_ {
        self.locations
            .iter()
            .zip(&self.asns)
            .enumerate()
            .map(|(i, (&location, &asn))| (RouterId(i as u32), Router { location, asn }))
    }

    /// All interfaces with ids.
    pub fn interfaces(&self) -> impl Iterator<Item = (InterfaceId, Interface)> + '_ {
        self.iface_ip
            .iter()
            .zip(&self.iface_router)
            .enumerate()
            .map(|(i, (&ip, &router))| {
                (
                    InterfaceId(i as u32),
                    Interface {
                        ip: Ipv4Addr::from(ip),
                        router,
                    },
                )
            })
    }

    /// All links with ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, Link)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &l)| (LinkId(i as u32), l))
    }

    /// Neighbours of a router with the connecting link: a contiguous
    /// slice of the flat CSR edge array, in link-insertion order.
    // analyze: hot-path-root
    #[inline]
    pub fn neighbors(&self, r: RouterId) -> &[AdjEntry] {
        let lo = self.adj_off[r.0 as usize] as usize;
        let hi = self.adj_off[r.0 as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Router degree (number of incident links).
    #[inline]
    pub fn degree(&self, r: RouterId) -> usize {
        (self.adj_off[r.0 as usize + 1] - self.adj_off[r.0 as usize]) as usize
    }

    /// Interfaces on a router: a contiguous CSR slice in
    /// interface-creation order.
    #[inline]
    pub fn interfaces_of(&self, r: RouterId) -> &[InterfaceId] {
        let lo = self.iface_off[r.0 as usize] as usize;
        let hi = self.iface_off[r.0 as usize + 1] as usize;
        &self.iface_ids[lo..hi]
    }

    /// The routers of one AS: a contiguous CSR slice, router ids
    /// ascending. Empty when the AS labels no router.
    pub fn routers_of_as(&self, asn: AsId) -> &[RouterId] {
        match self.as_ids.binary_search(&asn) {
            Ok(g) => {
                let lo = self.as_off[g] as usize;
                let hi = self.as_off[g + 1] as usize;
                &self.as_members[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// All ASes with their member-router slices, ascending by AS number.
    pub fn as_groups(&self) -> impl Iterator<Item = (AsId, &[RouterId])> + '_ {
        self.as_ids.iter().enumerate().map(|(g, &asn)| {
            let lo = self.as_off[g] as usize;
            let hi = self.as_off[g + 1] as usize;
            (asn, &self.as_members[lo..hi])
        })
    }

    /// The interface holding `ip`, if any: a binary search of the sorted
    /// IP index.
    #[inline]
    pub fn interface_by_ip(&self, ip: Ipv4Addr) -> Option<InterfaceId> {
        let raw = u32::from(ip);
        self.ip_index
            .binary_search_by_key(&raw, |&(k, _)| k)
            .ok()
            .map(|pos| self.ip_index[pos].1)
    }

    /// The router owning `ip`, if any.
    pub fn router_by_ip(&self, ip: Ipv4Addr) -> Option<RouterId> {
        self.interface_by_ip(ip)
            .map(|i| self.iface_router[i.0 as usize])
    }

    /// Router endpoints of a link.
    #[inline]
    pub fn link_routers(&self, id: LinkId) -> (RouterId, RouterId) {
        let l = &self.links[id.0 as usize];
        (
            self.iface_router[l.a.0 as usize],
            self.iface_router[l.b.0 as usize],
        )
    }

    /// Great-circle length of a link in statute miles.
    pub fn link_length_miles(&self, id: LinkId) -> f64 {
        let (a, b) = self.link_routers(id);
        haversine_miles(&self.locations[a.0 as usize], &self.locations[b.0 as usize])
    }

    /// Whether a link crosses AS boundaries (the paper's
    /// interdomain/intradomain distinction, Section VI-C).
    pub fn is_interdomain(&self, id: LinkId) -> bool {
        let (a, b) = self.link_routers(id);
        self.asns[a.0 as usize] != self.asns[b.0 as usize]
    }

    /// Checks every structural invariant of the packed layout:
    ///
    /// 1. the parallel SoA arrays agree in length;
    /// 2. each interface belongs to an existing router, and the
    ///    router→interface CSR exactly partitions the interface set;
    /// 3. no link endpoint dangles (both interfaces exist);
    /// 4. no link connects two interfaces of the same router;
    /// 5. the adjacency CSR agrees with the link list;
    /// 6. the IP index is strictly sorted and a bijection onto the
    ///    interface table;
    /// 7. the AS-membership ranges partition the router set and agree
    ///    with the per-router AS labels.
    ///
    /// The builder establishes all of these; `validate` re-checks them on
    /// data that crossed a serialization boundary or a new mutation path.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TopologyInvariant> {
        // 1. SoA arrays are parallel.
        if self.asns.len() != self.locations.len() {
            return Err(TopologyInvariant::ParallelArrayMismatch("router SoA"));
        }
        if self.iface_router.len() != self.iface_ip.len() {
            return Err(TopologyInvariant::ParallelArrayMismatch("interface SoA"));
        }
        if self.as_off.len() != self.as_ids.len() + 1 {
            return Err(TopologyInvariant::ParallelArrayMismatch("AS CSR"));
        }

        // 2. Interface/router partition via the CSR.
        let n_routers = self.locations.len();
        let n_ifaces = self.iface_ip.len();
        for (i, r) in self.iface_router.iter().enumerate() {
            if r.0 as usize >= n_routers {
                return Err(TopologyInvariant::InterfaceRouterOutOfRange(InterfaceId(
                    i as u32,
                )));
            }
        }
        if self.iface_off.len() != n_routers + 1
            || self.iface_off.first() != Some(&0)
            || self.iface_off.last().copied() != Some(n_ifaces as u32)
            || self.iface_ids.len() != n_ifaces
        {
            return Err(TopologyInvariant::InterfacePartition(InterfaceId(0)));
        }
        let mut seen = vec![false; n_ifaces];
        for r in 0..n_routers {
            let (lo, hi) = (self.iface_off[r], self.iface_off[r + 1]);
            if lo > hi || hi as usize > n_ifaces {
                return Err(TopologyInvariant::InterfacePartition(InterfaceId(lo)));
            }
            for &iid in &self.iface_ids[lo as usize..hi as usize] {
                let idx = iid.0 as usize;
                if idx >= n_ifaces || seen[idx] || self.iface_router[idx].0 as usize != r {
                    return Err(TopologyInvariant::InterfacePartition(iid));
                }
                seen[idx] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(TopologyInvariant::InterfacePartition(InterfaceId(
                missing as u32,
            )));
        }

        // 3 + 4. Link endpoints exist and span two distinct routers.
        for (l, link) in self.links.iter().enumerate() {
            let lid = LinkId(l as u32);
            if link.a.0 as usize >= n_ifaces || link.b.0 as usize >= n_ifaces {
                return Err(TopologyInvariant::DanglingLinkEndpoint(lid));
            }
            let ra = self.iface_router[link.a.0 as usize];
            let rb = self.iface_router[link.b.0 as usize];
            if ra == rb {
                return Err(TopologyInvariant::SelfLoopLink(lid, ra));
            }
        }

        // 5. CSR adjacency agrees with the link list: the offset array is
        // a well-formed prefix-sum over the edge array (n+1 entries,
        // starts at zero, monotone, covers exactly 2×links), every entry
        // names an existing link joining this router to the recorded
        // neighbor, and the precomputed interdomain bit matches the AS
        // labels re-derived from the router table.
        if self.adj_off.len() != n_routers + 1
            || self.adj_off.first() != Some(&0)
            || self.adj_off.last().copied() != Some(self.adj.len() as u32)
            || self.adj.len() != 2 * self.links.len()
        {
            return Err(TopologyInvariant::AdjacencyMismatch(RouterId(0)));
        }
        for r in 0..n_routers {
            let (lo, hi) = (self.adj_off[r], self.adj_off[r + 1]);
            if lo > hi || hi as usize > self.adj.len() {
                return Err(TopologyInvariant::AdjacencyMismatch(RouterId(r as u32)));
            }
            for e in &self.adj[lo as usize..hi as usize] {
                let lid = e.link();
                if lid.0 as usize >= self.links.len() {
                    return Err(TopologyInvariant::AdjacencyMismatch(RouterId(r as u32)));
                }
                let (ra, rb) = self.link_routers(lid);
                let nbr = e.neighbor();
                let pair_ok =
                    (ra.0 as usize == r && rb == nbr) || (rb.0 as usize == r && ra == nbr);
                if !pair_ok {
                    return Err(TopologyInvariant::AdjacencyMismatch(RouterId(r as u32)));
                }
                let inter = self.asns[ra.0 as usize] != self.asns[rb.0 as usize];
                if e.is_interdomain() != inter {
                    return Err(TopologyInvariant::AdjacencyMismatch(RouterId(r as u32)));
                }
            }
        }

        // 6. IP index: strictly sorted (which also rules out duplicate
        // addresses) and a bijection onto the interface table.
        if self.ip_index.len() != n_ifaces {
            let stray = self
                .ip_index
                .first()
                .map(|&(ip, _)| Ipv4Addr::from(ip))
                .unwrap_or(Ipv4Addr::UNSPECIFIED);
            return Err(TopologyInvariant::IpIndexMismatch(stray));
        }
        for w in self.ip_index.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(TopologyInvariant::IpIndexUnsorted(Ipv4Addr::from(w[1].0)));
            }
        }
        for &(ip, iid) in &self.ip_index {
            if iid.0 as usize >= n_ifaces || self.iface_ip[iid.0 as usize] != ip {
                return Err(TopologyInvariant::IpIndexMismatch(Ipv4Addr::from(ip)));
            }
        }

        // 7. AS-membership ranges: distinct sorted AS table, well-formed
        // offsets covering every router exactly once, members ascending
        // within each group and labelled with the group's AS.
        if self.as_off.first() != Some(&0)
            || self.as_off.last().copied() != Some(self.as_members.len() as u32)
            || self.as_members.len() != n_routers
        {
            let asn = self.as_ids.first().copied().unwrap_or(AsId(0));
            return Err(TopologyInvariant::AsRangeMismatch(asn));
        }
        let mut covered = vec![false; n_routers];
        for (g, &asn) in self.as_ids.iter().enumerate() {
            if g > 0 && self.as_ids[g - 1] >= asn {
                return Err(TopologyInvariant::AsRangeMismatch(asn));
            }
            let (lo, hi) = (self.as_off[g], self.as_off[g + 1]);
            if lo >= hi || hi as usize > self.as_members.len() {
                // Empty groups are never built; each distinct AS came
                // from at least one router.
                return Err(TopologyInvariant::AsRangeMismatch(asn));
            }
            let group = &self.as_members[lo as usize..hi as usize];
            for (k, &r) in group.iter().enumerate() {
                let idx = r.0 as usize;
                if idx >= n_routers || covered[idx] || self.asns[idx] != asn {
                    return Err(TopologyInvariant::AsRangeMismatch(asn));
                }
                if k > 0 && group[k - 1].0 >= r.0 {
                    return Err(TopologyInvariant::AsRangeMismatch(asn));
                }
                covered[idx] = true;
            }
        }
        if covered.iter().any(|c| !c) {
            let asn = self.as_ids.first().copied().unwrap_or(AsId(0));
            return Err(TopologyInvariant::AsRangeMismatch(asn));
        }
        Ok(())
    }

    /// The outgoing interface on router `from` for the link to `to`
    /// (used by the traceroute simulator to report hop addresses).
    pub fn interface_between(&self, from: RouterId, to: RouterId) -> Option<InterfaceId> {
        let lid = self
            .neighbors(from)
            .iter()
            .find(|e| e.neighbor() == to)?
            .link();
        let l = &self.links[lid.0 as usize];
        let ia = l.a;
        if self.iface_router[ia.0 as usize] == from {
            Some(ia)
        } else {
            Some(l.b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn build_small_topology() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(40.0, -100.0), AsId(1));
        let r1 = b.add_router(loc(41.0, -101.0), AsId(1));
        let r2 = b.add_router(loc(42.0, -102.0), AsId(2));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        b.add_link(r1, r2, ip("1.0.0.3"), ip("2.0.0.1")).unwrap();
        let t = b.build();
        assert_eq!(t.num_routers(), 3);
        assert_eq!(t.num_interfaces(), 4);
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.degree(r1), 2);
        assert_eq!(t.degree(r0), 1);
        assert_eq!(t.interfaces_of(r1).len(), 2);
    }

    #[test]
    fn with_capacity_builds_identically() {
        let build = |mut b: TopologyBuilder| {
            let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
            let r1 = b.add_router(loc(1.0, 1.0), AsId(2));
            b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
            b.build()
        };
        let plain = build(TopologyBuilder::new());
        let reserved = build(TopologyBuilder::with_capacity(2, 1));
        assert_eq!(format!("{plain:?}"), format!("{reserved:?}"));
    }

    #[test]
    fn rejects_self_link() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        assert_eq!(
            b.add_link(r0, r0, ip("1.0.0.1"), ip("1.0.0.2"))
                .unwrap_err(),
            TopologyError::SelfLink(r0)
        );
    }

    #[test]
    fn rejects_duplicate_link_both_orders() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        assert!(b.has_link(r0, r1) && b.has_link(r1, r0));
        assert_eq!(
            b.add_link(r1, r0, ip("1.0.0.3"), ip("1.0.0.4"))
                .unwrap_err(),
            TopologyError::DuplicateLink(r1, r0)
        );
    }

    #[test]
    fn rejects_duplicate_ip() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        let r2 = b.add_router(loc(2.0, 2.0), AsId(1));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        assert_eq!(
            b.add_link(r0, r2, ip("1.0.0.1"), ip("1.0.0.9"))
                .unwrap_err(),
            TopologyError::DuplicateIp(ip("1.0.0.1"))
        );
        assert_eq!(
            b.add_link(r0, r2, ip("1.0.0.8"), ip("1.0.0.8"))
                .unwrap_err(),
            TopologyError::DuplicateIp(ip("1.0.0.8"))
        );
    }

    #[test]
    fn rejects_unknown_router() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        assert_eq!(
            b.add_link(r0, RouterId(99), ip("1.0.0.1"), ip("1.0.0.2"))
                .unwrap_err(),
            TopologyError::UnknownRouter(RouterId(99))
        );
    }

    #[test]
    fn ip_lookup_roundtrip() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(2));
        b.add_link(r0, r1, ip("9.0.0.1"), ip("9.0.0.2")).unwrap();
        let t = b.build();
        assert_eq!(t.router_by_ip(ip("9.0.0.1")), Some(r0));
        assert_eq!(t.router_by_ip(ip("9.0.0.2")), Some(r1));
        assert_eq!(t.router_by_ip(ip("9.9.9.9")), None);
    }

    #[test]
    fn link_length_and_domain() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(40.0, -100.0), AsId(1));
        let r1 = b.add_router(loc(40.0, -99.0), AsId(1));
        let r2 = b.add_router(loc(40.0, -98.0), AsId(2));
        let l01 = b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        let l12 = b.add_link(r1, r2, ip("1.0.0.3"), ip("2.0.0.1")).unwrap();
        let t = b.build();
        assert!(!t.is_interdomain(l01));
        assert!(t.is_interdomain(l12));
        // One degree of longitude at 40N is ~53 miles.
        let len = t.link_length_miles(l01);
        assert!((len - 53.0).abs() < 2.0, "len {len}");
    }

    #[test]
    fn interface_between_reports_correct_side() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        let t = b.build();
        let i01 = t.interface_between(r0, r1).unwrap();
        assert_eq!(t.interface(i01).ip, ip("1.0.0.1"));
        let i10 = t.interface_between(r1, r0).unwrap();
        assert_eq!(t.interface(i10).ip, ip("1.0.0.2"));
        assert_eq!(t.interface_between(r0, RouterId(0)), None);
    }

    #[test]
    fn auto_ip_links_use_reserved_space() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        b.add_link_auto(r0, r1).unwrap();
        let t = b.build();
        for (_, iface) in t.interfaces() {
            assert!(u32::from(iface.ip) >= u32::from(Ipv4Addr::new(240, 0, 0, 0)));
        }
    }

    #[test]
    fn as_groups_partition_routers() {
        let mut b = TopologyBuilder::new();
        // Insert with interleaved AS labels: grouping must still come out
        // sorted by AS with ascending members.
        let r0 = b.add_router(loc(0.0, 0.0), AsId(7));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(3));
        let r2 = b.add_router(loc(2.0, 2.0), AsId(7));
        let r3 = b.add_router(loc(3.0, 3.0), AsId(3));
        b.add_link_auto(r0, r1).unwrap();
        let t = b.build();
        assert_eq!(t.num_ases(), 2);
        assert_eq!(t.routers_of_as(AsId(3)), &[r1, r3]);
        assert_eq!(t.routers_of_as(AsId(7)), &[r0, r2]);
        assert_eq!(t.routers_of_as(AsId(99)), &[] as &[RouterId]);
        let groups: Vec<_> = t.as_groups().collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, AsId(3));
        assert_eq!(groups[1].0, AsId(7));
        assert_eq!(groups.iter().map(|(_, g)| g.len()).sum::<usize>(), 4);
    }

    /// A valid 3-router topology for corruption tests.
    fn valid_topology() -> Topology {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        let r2 = b.add_router(loc(2.0, 2.0), AsId(2));
        b.add_link(r0, r1, ip("1.0.0.1"), ip("1.0.0.2")).unwrap();
        b.add_link(r1, r2, ip("1.0.0.3"), ip("2.0.0.1")).unwrap();
        b.build()
    }

    #[test]
    fn validate_accepts_builder_output() {
        assert_eq!(valid_topology().validate(), Ok(()));
        // The empty topology is trivially valid too.
        assert_eq!(TopologyBuilder::new().build().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_parallel_array_mismatch() {
        let mut t = valid_topology();
        t.asns.pop();
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::ParallelArrayMismatch("router SoA"))
        );
        let mut t = valid_topology();
        t.iface_router.push(RouterId(0));
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::ParallelArrayMismatch("interface SoA"))
        );
    }

    #[test]
    fn validate_rejects_interface_with_unknown_router() {
        let mut t = valid_topology();
        t.iface_router[2] = RouterId(99);
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::InterfaceRouterOutOfRange(InterfaceId(2)))
        );
    }

    #[test]
    fn validate_rejects_broken_interface_partition() {
        // Corrupted CSR offset: router 0's slice grows into router 1's,
        // so interface 1 shows up under router 0. The exact id is
        // reported.
        let mut t = valid_topology();
        t.iface_off[1] += 1;
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::InterfacePartition(InterfaceId(1)))
        );
        // An interface listed under the wrong router.
        let mut t = valid_topology();
        t.iface_ids.swap(0, 3);
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::InterfacePartition(_))
        ));
        // A duplicated entry (another interface then goes missing).
        let mut t = valid_topology();
        t.iface_ids[1] = t.iface_ids[0];
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::InterfacePartition(_))
        ));
        // A malformed offset table (wrong length) is caught outright.
        let mut t = valid_topology();
        t.iface_off.pop();
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::InterfacePartition(InterfaceId(0)))
        );
    }

    #[test]
    fn validate_rejects_dangling_link_endpoint() {
        let mut t = valid_topology();
        t.links[1].b = InterfaceId(500);
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::DanglingLinkEndpoint(LinkId(1)))
        );
    }

    #[test]
    fn validate_rejects_self_loop_link() {
        let mut t = valid_topology();
        // Interfaces 0 and 1 sit on routers 0 and 1; re-point the second
        // interface at router 0 so link 0 becomes a self-loop. Keep the
        // interface CSR consistent so the self-loop check is what fires:
        // rebuild it from the mutated ownership array.
        t.iface_router[1] = RouterId(0);
        t.iface_off = vec![0, 2, 3, 4];
        t.iface_ids = vec![
            InterfaceId(0),
            InterfaceId(1),
            InterfaceId(2),
            InterfaceId(3),
        ];
        // Adjacency is now also stale, but the self-loop is detected
        // first.
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::SelfLoopLink(LinkId(0), RouterId(0)))
        );
    }

    #[test]
    fn validate_rejects_adjacency_mismatch() {
        // A dropped edge breaks the 2×links count.
        let mut t = valid_topology();
        t.adj.pop();
        t.adj_off[3] -= 1;
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::AdjacencyMismatch(_))
        ));
        // A corrupted offset breaks the prefix-sum structure.
        let mut t = valid_topology();
        t.adj_off[1] = 99;
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::AdjacencyMismatch(_))
        ));
        // A misdirected entry (wrong neighbor for its link) is caught.
        let mut t = valid_topology();
        t.adj[0].neighbor = RouterId(2);
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::AdjacencyMismatch(_))
        ));
        // A flipped interdomain bit disagrees with the AS labels.
        let mut t = valid_topology();
        t.adj[0].packed ^= INTERDOMAIN_BIT;
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::AdjacencyMismatch(_))
        ));
    }

    #[test]
    fn csr_offsets_are_a_prefix_sum_of_degrees() {
        let t = valid_topology();
        assert_eq!(t.adj_off, vec![0, 1, 3, 4]);
        assert_eq!(t.adj.len(), 2 * t.num_links());
        for (r, _) in t.routers() {
            assert_eq!(t.neighbors(r).len(), t.degree(r));
        }
    }

    #[test]
    fn csr_entries_carry_links_and_interdomain_flags() {
        // valid_topology: r0(AS1)-r1(AS1) on link 0, r1(AS1)-r2(AS2) on
        // link 1. Neighbor runs follow link insertion order.
        let t = valid_topology();
        let n0 = t.neighbors(RouterId(0));
        assert_eq!(n0.len(), 1);
        assert_eq!(n0[0].neighbor(), RouterId(1));
        assert_eq!(n0[0].link(), LinkId(0));
        assert!(!n0[0].is_interdomain());
        let n1 = t.neighbors(RouterId(1));
        assert_eq!(
            n1.iter().map(AdjEntry::neighbor).collect::<Vec<_>>(),
            vec![RouterId(0), RouterId(2)]
        );
        assert_eq!(
            n1.iter().map(AdjEntry::link).collect::<Vec<_>>(),
            vec![LinkId(0), LinkId(1)]
        );
        assert!(!n1[0].is_interdomain());
        assert!(n1[1].is_interdomain());
        // Every flag agrees with the link-table derivation.
        for (r, _) in t.routers() {
            for e in t.neighbors(r) {
                assert_eq!(e.is_interdomain(), t.is_interdomain(e.link()));
            }
        }
    }

    #[test]
    fn validate_rejects_unsorted_ip_index() {
        // Swapping two entries breaks the strict sort order; the address
        // now found out of order is reported exactly.
        let mut t = valid_topology();
        // After the swap the entry at index 1 is the one that used to
        // lead the array; that is the address found out of order.
        let lo = t.ip_index[0].0;
        t.ip_index.swap(0, 1);
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::IpIndexUnsorted(Ipv4Addr::from(lo)))
        );
        // A duplicated key (non-strict order) is also unsorted.
        let mut t = valid_topology();
        t.ip_index[1].0 = t.ip_index[0].0;
        let dup = Ipv4Addr::from(t.ip_index[0].0);
        assert_eq!(t.validate(), Err(TopologyInvariant::IpIndexUnsorted(dup)));
    }

    #[test]
    fn validate_rejects_ip_index_corruption() {
        // An entry pointing at the wrong interface.
        let mut t = valid_topology();
        t.ip_index[0].1 = InterfaceId(77);
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::IpIndexMismatch(_))
        ));
        // A stale extra entry is caught by the size check.
        let mut t = valid_topology();
        t.ip_index
            .push((u32::from(ip("200.0.0.1")), InterfaceId(0)));
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::IpIndexMismatch(_))
        ));
    }

    #[test]
    fn validate_rejects_as_range_corruption() {
        // valid_topology: routers 0,1 in AS 1; router 2 in AS 2.
        // A member listed under the wrong AS.
        let mut t = valid_topology();
        t.as_members.swap(1, 2);
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::AsRangeMismatch(AsId(1)))
        );
        // A corrupted group offset shifts coverage.
        let mut t = valid_topology();
        t.as_off[1] = 1;
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::AsRangeMismatch(AsId(2)))
        );
        // A duplicated member leaves another router uncovered.
        let mut t = valid_topology();
        t.as_members[1] = t.as_members[0];
        assert_eq!(
            t.validate(),
            Err(TopologyInvariant::AsRangeMismatch(AsId(1)))
        );
        // An unsorted AS table is rejected.
        let mut t = valid_topology();
        t.as_ids.swap(0, 1);
        assert!(matches!(
            t.validate(),
            Err(TopologyInvariant::AsRangeMismatch(_))
        ));
    }

    #[test]
    fn iterators_cover_everything() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router(loc(0.0, 0.0), AsId(1));
        let r1 = b.add_router(loc(1.0, 1.0), AsId(1));
        let r2 = b.add_router(loc(2.0, 2.0), AsId(1));
        b.add_link_auto(r0, r1).unwrap();
        b.add_link_auto(r1, r2).unwrap();
        let t = b.build();
        assert_eq!(t.routers().count(), 3);
        assert_eq!(t.interfaces().count(), 4);
        assert_eq!(t.links().count(), 2);
    }
}
