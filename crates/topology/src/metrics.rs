//! Graph metrics over topologies.

use crate::graph::{RouterId, Topology};
use std::collections::VecDeque;

/// Degree distribution: `counts[d]` = number of routers with degree `d`.
pub fn degree_distribution(t: &Topology) -> Vec<usize> {
    let max_deg = (0..t.num_routers())
        .map(|i| t.degree(RouterId(i as u32)))
        .max()
        .unwrap_or(0);
    let mut counts = vec![0usize; max_deg + 1];
    for i in 0..t.num_routers() {
        counts[t.degree(RouterId(i as u32))] += 1;
    }
    counts
}

/// Mean router degree (2·links / routers). Zero for an empty topology.
pub fn average_degree(t: &Topology) -> f64 {
    if t.num_routers() == 0 {
        return 0.0;
    }
    2.0 * t.num_links() as f64 / t.num_routers() as f64
}

/// Sizes of connected components, largest first.
pub fn component_sizes(t: &Topology) -> Vec<usize> {
    let n = t.num_routers();
    let mut seen = vec![false; n];
    let mut sizes = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut size = 0usize;
        let mut queue = VecDeque::new();
        queue.push_back(start);
        seen[start] = true;
        while let Some(u) = queue.pop_front() {
            size += 1;
            for e in t.neighbors(RouterId(u as u32)) {
                let v = e.neighbor();
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    queue.push_back(v.0 as usize);
                }
            }
        }
        sizes.push(size);
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Fraction of routers in the largest connected component.
pub fn giant_component_fraction(t: &Topology) -> f64 {
    if t.num_routers() == 0 {
        return 0.0;
    }
    let sizes = component_sizes(t);
    sizes[0] as f64 / t.num_routers() as f64
}

/// All link lengths in miles.
pub fn link_lengths_miles(t: &Topology) -> Vec<f64> {
    t.links().map(|(id, _)| t.link_length_miles(id)).collect()
}

/// Fraction of links that are intradomain (both endpoints in one AS).
pub fn intradomain_fraction(t: &Topology) -> f64 {
    if t.num_links() == 0 {
        return 0.0;
    }
    let intra = t.links().filter(|(id, _)| !t.is_interdomain(*id)).count();
    intra as f64 / t.num_links() as f64
}

/// Average local clustering coefficient (Watts–Strogatz): the mean over
/// routers of degree ≥ 2 of the fraction of neighbour pairs that are
/// themselves linked. The paper's reference [37] (small worlds) is about
/// exactly this quantity's interaction with a few long-range links.
pub fn clustering_coefficient(t: &Topology) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    let neighbor_sets: Vec<std::collections::HashSet<u32>> = (0..t.num_routers())
        .map(|i| {
            t.neighbors(RouterId(i as u32))
                .iter()
                .map(|e| e.neighbor().0)
                .collect()
        })
        .collect();
    for i in 0..t.num_routers() {
        let nbrs: Vec<u32> = neighbor_sets[i].iter().copied().collect();
        let k = nbrs.len();
        if k < 2 {
            continue;
        }
        let mut closed = 0usize;
        for a in 0..k {
            for b in (a + 1)..k {
                if neighbor_sets[nbrs[a] as usize].contains(&nbrs[b]) {
                    closed += 1;
                }
            }
        }
        total += closed as f64 / (k * (k - 1) / 2) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Mean shortest-path hop count over sampled reachable source–target
/// pairs (BFS from up to `sources` routers). `None` if no pair is
/// reachable.
pub fn average_path_length(t: &Topology, sources: usize) -> Option<f64> {
    let n = t.num_routers();
    if n == 0 {
        return None;
    }
    let step = (n / sources.max(1)).max(1);
    let mut total = 0u64;
    let mut pairs = 0u64;
    for start in (0..n).step_by(step) {
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        dist[start] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for e in t.neighbors(RouterId(u as u32)) {
                let v = e.neighbor();
                if dist[v.0 as usize] == u32::MAX {
                    dist[v.0 as usize] = dist[u] + 1;
                    queue.push_back(v.0 as usize);
                }
            }
        }
        for (i, &d) in dist.iter().enumerate() {
            if i != start && d != u32::MAX {
                total += d as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

/// Degree assortativity: the Pearson correlation of endpoint degrees
/// over links. `None` for degenerate graphs. Negative values mean hubs
/// attach to leaves (typical of Internet maps).
pub fn degree_assortativity(t: &Topology) -> Option<f64> {
    let mut xs = Vec::with_capacity(t.num_links() * 2);
    let mut ys = Vec::with_capacity(t.num_links() * 2);
    for (id, _) in t.links() {
        let (a, b) = t.link_routers(id);
        let (da, db) = (t.degree(a) as f64, t.degree(b) as f64);
        // Symmetrize: each link contributes both orientations.
        xs.push(da);
        ys.push(db);
        xs.push(db);
        ys.push(da);
    }
    geotopo_stats::pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    // Tests assert exact expected values; bitwise float equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::graph::TopologyBuilder;
    use geotopo_bgp::AsId;
    use geotopo_geo::GeoPoint;

    fn path_graph(n: usize) -> Topology {
        let mut b = TopologyBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_router(GeoPoint::new(10.0 + i as f64 * 0.1, 10.0).unwrap(), AsId(1)))
            .collect();
        for w in ids.windows(2) {
            b.add_link_auto(w[0], w[1]).unwrap();
        }
        b.build()
    }

    #[test]
    fn degree_distribution_of_path() {
        let t = path_graph(5);
        let dd = degree_distribution(&t);
        assert_eq!(dd, vec![0, 2, 3]); // two endpoints, three middle nodes
    }

    #[test]
    fn average_degree_of_path() {
        let t = path_graph(5);
        assert!((average_degree(&t) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..6)
            .map(|i| b.add_router(GeoPoint::new(i as f64, 0.0).unwrap(), AsId(1)))
            .collect();
        b.add_link_auto(r[0], r[1]).unwrap();
        b.add_link_auto(r[1], r[2]).unwrap();
        b.add_link_auto(r[3], r[4]).unwrap();
        let t = b.build();
        assert_eq!(component_sizes(&t), vec![3, 2, 1]);
        assert!((giant_component_fraction(&t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_topology_metrics() {
        let t = TopologyBuilder::new().build();
        assert_eq!(average_degree(&t), 0.0);
        assert_eq!(giant_component_fraction(&t), 0.0);
        assert!(component_sizes(&t).is_empty());
        assert_eq!(degree_distribution(&t), vec![0usize; 1]);
    }

    #[test]
    fn intradomain_fraction_counts() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router(GeoPoint::new(0.0, 0.0).unwrap(), AsId(1));
        let c = b.add_router(GeoPoint::new(1.0, 0.0).unwrap(), AsId(1));
        let d = b.add_router(GeoPoint::new(2.0, 0.0).unwrap(), AsId(2));
        b.add_link_auto(a, c).unwrap();
        b.add_link_auto(c, d).unwrap();
        let t = b.build();
        assert!((intradomain_fraction(&t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn link_lengths_positive() {
        let t = path_graph(4);
        for l in link_lengths_miles(&t) {
            assert!(l > 0.0 && l < 10.0);
        }
    }

    fn triangle_plus_tail() -> Topology {
        let mut b = TopologyBuilder::new();
        let r: Vec<_> = (0..4)
            .map(|i| b.add_router(GeoPoint::new(i as f64, 0.0).unwrap(), AsId(1)))
            .collect();
        b.add_link_auto(r[0], r[1]).unwrap();
        b.add_link_auto(r[1], r[2]).unwrap();
        b.add_link_auto(r[0], r[2]).unwrap();
        b.add_link_auto(r[2], r[3]).unwrap();
        b.build()
    }

    #[test]
    fn clustering_of_triangle_plus_tail() {
        // Nodes 0,1: C=1 (their two neighbours are linked). Node 2 has
        // neighbours {0,1,3}: one of three pairs closed → 1/3. Node 3:
        // degree 1, excluded. Mean = (1 + 1 + 1/3)/3 = 7/9.
        let t = triangle_plus_tail();
        let c = clustering_coefficient(&t);
        assert!((c - 7.0 / 9.0).abs() < 1e-12, "c = {c}");
    }

    #[test]
    fn clustering_of_path_is_zero() {
        assert_eq!(clustering_coefficient(&path_graph(6)), 0.0);
    }

    #[test]
    fn path_length_of_path_graph() {
        // Full BFS from every node of P5: mean distance = 2.0.
        let t = path_graph(5);
        let apl = average_path_length(&t, 5).unwrap();
        assert!((apl - 2.0).abs() < 1e-12, "apl {apl}");
    }

    #[test]
    fn path_length_none_for_isolated() {
        let mut b = TopologyBuilder::new();
        b.add_router(GeoPoint::new(0.0, 0.0).unwrap(), AsId(1));
        b.add_router(GeoPoint::new(1.0, 0.0).unwrap(), AsId(1));
        let t = b.build();
        assert_eq!(average_path_length(&t, 2), None);
    }

    #[test]
    fn star_graph_is_disassortative() {
        let mut b = TopologyBuilder::new();
        let hub = b.add_router(GeoPoint::new(0.0, 0.0).unwrap(), AsId(1));
        for i in 1..=6 {
            let leaf = b.add_router(GeoPoint::new(i as f64, 0.0).unwrap(), AsId(1));
            b.add_link_auto(hub, leaf).unwrap();
        }
        let t = b.build();
        let r = degree_assortativity(&t).unwrap();
        assert!(r < -0.9, "assortativity {r}");
    }
}
